//! The [`TaskMapping`] type and its constructors.

use std::ops::Mul;
use std::sync::Arc;

use crate::{delinearize, iter::WorkerTaskIter};

/// A task index: one point of the task domain, `task.len()` == task dimension.
pub type Task = Vec<i64>;

/// Structural description of a task mapping.
///
/// Exposed so that downstream crates (the IR lowering in `hidet-ir`) can lower a
/// mapping to loops and index arithmetic by matching on its structure.
#[derive(Clone)]
pub enum TaskMappingKind {
    /// `repeat(d0, ..., dm)`: all `prod(d)` tasks on one worker, row-major order.
    Repeat {
        /// Task shape.
        shape: Vec<i64>,
    },
    /// `spatial(d0, ..., dm)`: `prod(d)` tasks on `prod(d)` workers, one each.
    Spatial {
        /// Task shape (== worker grid shape).
        shape: Vec<i64>,
    },
    /// `outer ∘ inner` composition (paper §5.1.2).
    Compose {
        /// The coarse-grained (macro-task) mapping.
        outer: Arc<TaskMapping>,
        /// The fine-grained mapping refining each macro-task.
        inner: Arc<TaskMapping>,
    },
    /// A user-supplied mapping function (paper §5.1.1 "custom task mappings").
    Custom {
        /// Task shape.
        shape: Vec<i64>,
        /// Number of workers.
        workers: i64,
        /// Maps a worker id to the ordered list of its tasks.
        func: Arc<dyn Fn(i64) -> Vec<Task> + Send + Sync>,
    },
}

impl std::fmt::Debug for TaskMappingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskMappingKind::Repeat { shape } => {
                f.debug_struct("Repeat").field("shape", shape).finish()
            }
            TaskMappingKind::Spatial { shape } => {
                f.debug_struct("Spatial").field("shape", shape).finish()
            }
            TaskMappingKind::Compose { outer, inner } => f
                .debug_struct("Compose")
                .field("outer", outer)
                .field("inner", inner)
                .finish(),
            TaskMappingKind::Custom { shape, workers, .. } => f
                .debug_struct("Custom")
                .field("shape", shape)
                .field("workers", workers)
                .finish_non_exhaustive(),
        }
    }
}

/// A mapping from workers to ordered lists of tasks (paper §5.1.1).
///
/// See the [crate-level documentation](crate) for an overview and examples.
#[derive(Clone, Debug)]
pub struct TaskMapping {
    kind: TaskMappingKind,
    /// Cached task shape (element-wise product along compositions).
    shape: Vec<i64>,
    /// Cached worker count (product along compositions).
    workers: i64,
}

impl TaskMapping {
    /// The `repeat` basic mapping: a single worker executes the whole `shape`
    /// grid of tasks sequentially in row-major order (paper Fig. 11 (a)).
    ///
    /// ```
    /// use hidet_taskmap::TaskMapping;
    /// let tm = TaskMapping::repeat(&[2, 2]);
    /// assert_eq!(tm.num_workers(), 1);
    /// let order: Vec<_> = tm.worker_tasks(0).collect();
    /// assert_eq!(order, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    /// ```
    ///
    /// # Panics
    /// Panics if `shape` is empty or any extent is non-positive.
    pub fn repeat(shape: &[i64]) -> TaskMapping {
        validate_shape(shape);
        TaskMapping {
            shape: shape.to_vec(),
            workers: 1,
            kind: TaskMappingKind::Repeat {
                shape: shape.to_vec(),
            },
        }
    }

    /// The `spatial` basic mapping: `prod(shape)` workers, each executing the
    /// single task whose row-major rank equals its worker id (paper Fig. 11 (b)).
    ///
    /// ```
    /// use hidet_taskmap::TaskMapping;
    /// let tm = TaskMapping::spatial(&[2, 2]);
    /// assert_eq!(tm.num_workers(), 4);
    /// assert_eq!(tm.worker_tasks(3).next(), Some(vec![1, 1]));
    /// ```
    ///
    /// # Panics
    /// Panics if `shape` is empty or any extent is non-positive.
    pub fn spatial(shape: &[i64]) -> TaskMapping {
        validate_shape(shape);
        TaskMapping {
            shape: shape.to_vec(),
            workers: shape.iter().product(),
            kind: TaskMappingKind::Spatial {
                shape: shape.to_vec(),
            },
        }
    }

    /// A custom mapping given a task `shape`, a worker count and an explicit
    /// worker → tasks function.
    ///
    /// The function must return, for every worker id in `0..workers`, the ordered
    /// list of tasks executed by that worker; each task must lie in the task
    /// domain. Use [`TaskMapping::check`] to validate coverage properties.
    ///
    /// ```
    /// use hidet_taskmap::TaskMapping;
    /// // Column-major assignment of 4 tasks to 4 workers.
    /// let tm = TaskMapping::custom(&[2, 2], 4, |w| vec![vec![w % 2, w / 2]]);
    /// assert_eq!(tm.worker_tasks(1).next(), Some(vec![1, 0]));
    /// ```
    ///
    /// # Panics
    /// Panics if `shape` is empty, any extent is non-positive, or `workers <= 0`.
    pub fn custom<F>(shape: &[i64], workers: i64, func: F) -> TaskMapping
    where
        F: Fn(i64) -> Vec<Task> + Send + Sync + 'static,
    {
        validate_shape(shape);
        assert!(workers > 0, "worker count must be positive, got {workers}");
        TaskMapping {
            shape: shape.to_vec(),
            workers,
            kind: TaskMappingKind::Custom {
                shape: shape.to_vec(),
                workers,
                func: Arc::new(func),
            },
        }
    }

    /// Composes two mappings: `self` distributes macro-tasks, `inner` refines
    /// each macro-task (paper §5.1.2).
    ///
    /// The result has task shape `self.shape ⊙ inner.shape` (element-wise
    /// product) and `self.workers × inner.workers` workers. Composition is
    /// associative; `a * b` is sugar for `a.compose(&b)`.
    ///
    /// # Panics
    /// Panics if the two mappings have different task dimensions.
    pub fn compose(&self, inner: &TaskMapping) -> TaskMapping {
        assert_eq!(
            self.task_dim(),
            inner.task_dim(),
            "cannot compose mappings of different task dimension ({} vs {})",
            self.task_dim(),
            inner.task_dim()
        );
        let shape: Vec<i64> = self
            .shape
            .iter()
            .zip(&inner.shape)
            .map(|(a, b)| a * b)
            .collect();
        TaskMapping {
            shape,
            workers: self.workers * inner.workers,
            kind: TaskMappingKind::Compose {
                outer: Arc::new(self.clone()),
                inner: Arc::new(inner.clone()),
            },
        }
    }

    /// The task shape `d = (d0, ..., dm-1)` of the task domain.
    pub fn task_shape(&self) -> &[i64] {
        &self.shape
    }

    /// The task dimension `m`.
    pub fn task_dim(&self) -> usize {
        self.shape.len()
    }

    /// The number of workers `n`.
    pub fn num_workers(&self) -> i64 {
        self.workers
    }

    /// The total number of tasks `prod(task_shape)`.
    pub fn num_tasks(&self) -> i64 {
        self.shape.iter().product()
    }

    /// The number of tasks each worker executes, **if uniform**.
    ///
    /// `repeat`/`spatial` and their compositions are always uniform; custom
    /// mappings may not be, in which case this is `num_tasks / num_workers`
    /// rounded down (use [`TaskMapping::check`] for exact accounting).
    pub fn tasks_per_worker(&self) -> i64 {
        self.num_tasks() / self.workers
    }

    /// Structural view of this mapping, for lowering.
    pub fn kind(&self) -> &TaskMappingKind {
        &self.kind
    }

    /// The ordered tasks of `worker`, as an iterator (paper's `f(w)`).
    ///
    /// ```
    /// use hidet_taskmap::TaskMapping;
    /// let tm = TaskMapping::spatial(&[2]) * TaskMapping::repeat(&[2]) * TaskMapping::spatial(&[2]);
    /// // Paper Fig. 12(c): worker 1 of 4 executes tasks 1 and 3 of an 8-task row.
    /// assert_eq!(tm.worker_tasks(1).collect::<Vec<_>>(), vec![vec![1], vec![3]]);
    /// ```
    ///
    /// # Panics
    /// Panics if `worker` is outside `0..num_workers()`.
    pub fn worker_tasks(&self, worker: i64) -> WorkerTaskIter {
        assert!(
            (0..self.workers).contains(&worker),
            "worker {worker} out of range 0..{}",
            self.workers
        );
        WorkerTaskIter::new(self.mapped_tasks(worker))
    }

    /// The ordered tasks of `worker`, as an owned `Vec` (paper's `f(w)`).
    pub(crate) fn mapped_tasks(&self, worker: i64) -> Vec<Task> {
        match &self.kind {
            TaskMappingKind::Repeat { shape } => {
                let n: i64 = shape.iter().product();
                (0..n).map(|flat| delinearize(flat, shape)).collect()
            }
            TaskMappingKind::Spatial { shape } => vec![delinearize(worker, shape)],
            TaskMappingKind::Compose { outer, inner } => {
                let n2 = inner.num_workers();
                let outer_tasks = outer.mapped_tasks(worker / n2);
                let inner_tasks = inner.mapped_tasks(worker % n2);
                let d2 = inner.task_shape();
                let mut out = Vec::with_capacity(outer_tasks.len() * inner_tasks.len());
                for t1 in &outer_tasks {
                    for t2 in &inner_tasks {
                        out.push(
                            t1.iter()
                                .zip(d2)
                                .zip(t2)
                                .map(|((a, d), b)| a * d + b)
                                .collect(),
                        );
                    }
                }
                out
            }
            TaskMappingKind::Custom { func, .. } => func(worker),
        }
    }

    /// Iterates over all `(worker, order, task)` assignments, workers ascending.
    pub fn assignments(&self) -> crate::iter::AssignmentIter<'_> {
        crate::iter::AssignmentIter::new(self)
    }

    /// True if this mapping (transitively) contains a custom mapping, which
    /// cannot be lowered to closed-form index arithmetic.
    pub fn contains_custom(&self) -> bool {
        match &self.kind {
            TaskMappingKind::Custom { .. } => true,
            TaskMappingKind::Compose { outer, inner } => {
                outer.contains_custom() || inner.contains_custom()
            }
            _ => false,
        }
    }

    /// Flattens a right-leaning composition chain into its atoms, outermost first.
    ///
    /// `(a * b) * c` and `a * (b * c)` both flatten to `[a, b, c]`.
    pub fn atoms(&self) -> Vec<&TaskMapping> {
        let mut out = Vec::new();
        fn walk<'a>(tm: &'a TaskMapping, out: &mut Vec<&'a TaskMapping>) {
            match &tm.kind {
                TaskMappingKind::Compose { outer, inner } => {
                    walk(outer, out);
                    walk(inner, out);
                }
                _ => out.push(tm),
            }
        }
        walk(self, &mut out);
        out
    }
}

impl Mul for TaskMapping {
    type Output = TaskMapping;

    /// `a * b` is [`TaskMapping::compose`]`(a, b)` (paper's `×` operator).
    fn mul(self, rhs: TaskMapping) -> TaskMapping {
        self.compose(&rhs)
    }
}

impl Mul<&TaskMapping> for &TaskMapping {
    type Output = TaskMapping;

    fn mul(self, rhs: &TaskMapping) -> TaskMapping {
        self.compose(rhs)
    }
}

impl PartialEq for TaskMapping {
    /// Extensional equality: same task shape, same worker count, and the same
    /// ordered task list for every worker. Paper Fig. 12 relies on this notion
    /// (e.g. associativity holds extensionally, commutativity does not).
    fn eq(&self, other: &Self) -> bool {
        if self.shape != other.shape || self.workers != other.workers {
            return false;
        }
        (0..self.workers).all(|w| self.mapped_tasks(w) == other.mapped_tasks(w))
    }
}

fn validate_shape(shape: &[i64]) {
    assert!(
        !shape.is_empty(),
        "task shape must have at least one dimension"
    );
    for &d in shape {
        assert!(d > 0, "task shape extents must be positive, got {shape:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{repeat, spatial};

    #[test]
    fn repeat_assigns_all_tasks_to_single_worker() {
        let tm = repeat(&[2, 2]);
        assert_eq!(tm.num_workers(), 1);
        assert_eq!(tm.num_tasks(), 4);
        let tasks: Vec<_> = tm.worker_tasks(0).collect();
        assert_eq!(tasks, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn spatial_assigns_one_task_per_worker() {
        let tm = spatial(&[2, 2]);
        assert_eq!(tm.num_workers(), 4);
        for w in 0..4 {
            let tasks: Vec<_> = tm.worker_tasks(w).collect();
            assert_eq!(tasks, vec![vec![w / 2, w % 2]]);
        }
    }

    #[test]
    fn fig8_cooperative_load_mapping() {
        // repeat(4, 1) x spatial(16, 8): shape (64, 8), 128 workers,
        // f(w) = [(w/8, w%8), (w/8+16, w%8), (w/8+32, w%8), (w/8+48, w%8)].
        let tm = repeat(&[4, 1]) * spatial(&[16, 8]);
        assert_eq!(tm.task_shape(), &[64, 8]);
        assert_eq!(tm.num_workers(), 128);
        for w in 0..128 {
            let tasks: Vec<_> = tm.worker_tasks(w).collect();
            let expect: Vec<Task> = (0..4).map(|r| vec![w / 8 + 16 * r, w % 8]).collect();
            assert_eq!(tasks, expect, "worker {w}");
        }
    }

    #[test]
    fn fig12a_repeat_then_spatial() {
        // repeat(1, 3) x spatial(2, 2): 2x6 grid over 4 workers,
        // worker 0 handles (0,0),(0,2),(0,4) in order.
        let tm = repeat(&[1, 3]) * spatial(&[2, 2]);
        assert_eq!(tm.task_shape(), &[2, 6]);
        let tasks: Vec<_> = tm.worker_tasks(0).collect();
        assert_eq!(tasks, vec![vec![0, 0], vec![0, 2], vec![0, 4]]);
    }

    #[test]
    fn fig12b_spatial_then_repeat() {
        // spatial(2, 2) x repeat(1, 3): worker 0 handles (0,0),(0,1),(0,2).
        let tm = spatial(&[2, 2]) * repeat(&[1, 3]);
        assert_eq!(tm.task_shape(), &[2, 6]);
        let tasks: Vec<_> = tm.worker_tasks(0).collect();
        assert_eq!(tasks, vec![vec![0, 0], vec![0, 1], vec![0, 2]]);
        // Not commutative: differs from fig12a's mapping.
        let other = repeat(&[1, 3]) * spatial(&[2, 2]);
        assert_ne!(tm, other);
    }

    #[test]
    fn fig12c_three_way_composition_associative() {
        let a = spatial(&[2]);
        let b = repeat(&[2]);
        let c = spatial(&[2]);
        let left = (a.clone() * b.clone()) * c.clone();
        let right = a * (b * c);
        assert_eq!(left, right);
        // Worker w of 4 executes tasks [2*(w/2)*2? ...] — check the paper's figure:
        // workers 0..4 execute [(0),(2)], [(1),(3)], [(4),(6)], [(5),(7)].
        let expect: [[i64; 2]; 4] = [[0, 2], [1, 3], [4, 6], [5, 7]];
        for (w, exp) in expect.iter().enumerate() {
            let tasks: Vec<_> = left.worker_tasks(w as i64).collect();
            assert_eq!(tasks, exp.iter().map(|&t| vec![t]).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fig12d_column_major() {
        // repeat(1, 2) x repeat(2, 1): single worker, column-major order
        // (0,0),(1,0),(0,1),(1,1).
        let tm = repeat(&[1, 2]) * repeat(&[2, 1]);
        let tasks: Vec<_> = tm.worker_tasks(0).collect();
        assert_eq!(tasks, vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn matmul_cuda_core_mapping_counts() {
        // Paper §5.1.2: spatial(4,2) * repeat(2,2) * spatial(4,8) * repeat(4,4).
        let tm = spatial(&[4, 2]) * repeat(&[2, 2]) * spatial(&[4, 8]) * repeat(&[4, 4]);
        assert_eq!(tm.task_shape(), &[128, 128]);
        assert_eq!(tm.num_workers(), 256);
        assert_eq!(tm.tasks_per_worker(), 64);
    }

    #[test]
    fn custom_mapping_round_trip() {
        let tm = TaskMapping::custom(&[2, 2], 4, |w| vec![vec![w % 2, w / 2]]);
        assert_eq!(tm.worker_tasks(2).collect::<Vec<_>>(), vec![vec![0, 1]]);
        assert!(tm.contains_custom());
    }

    #[test]
    fn atoms_flatten_compositions() {
        let tm = spatial(&[2]) * repeat(&[3]) * spatial(&[5]);
        let atoms = tm.atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[0].task_shape(), &[2]);
        assert_eq!(atoms[1].task_shape(), &[3]);
        assert_eq!(atoms[2].task_shape(), &[5]);
    }

    #[test]
    #[should_panic(expected = "different task dimension")]
    fn compose_dimension_mismatch_panics() {
        let _ = repeat(&[2]) * repeat(&[2, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = repeat(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worker_out_of_range_panics() {
        let tm = spatial(&[2]);
        let _ = tm.worker_tasks(2);
    }
}
