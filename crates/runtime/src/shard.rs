//! The device pool: one [`Shard`] per configured [`GpuSpec`], plus the
//! placement scheduler that routes formed batches across shards.
//!
//! Placement is **least-estimated-queue-delay**: each shard tracks the
//! analytic latency estimates ([`hidet_sim::cost`]) of every batch placed on
//! it but not yet completed, and a new batch goes to the shard whose next
//! free worker lane is soonest ([`hidet_sim::estimated_queue_delay`]). That
//! balances *estimated seconds of work*, not batch counts, so a cut-down
//! device in a mixed pool naturally receives less traffic than a full
//! RTX 3090.
//!
//! Latency estimates come from the compiled graphs themselves
//! (`CompiledGraph::estimate`, the paper's cost model) and are memoized per
//! (shard, model, batch size) in [`LatencyModel`]. The first batch of a
//! never-seen shape is placed with a scaled or default estimate; every
//! completion refines the model. The compiled-graph cache stays shared
//! across shards — its key already includes the device fingerprint
//! ([`crate::CacheKey`]), so homogeneous shards share one compile while a
//! mixed pool compiles once per distinct device.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use hidet_sim::{estimated_queue_delay, Gpu, GpuSpec};

/// Fallback estimate for a batch whose (model, batch size) has never been
/// compiled or executed anywhere in the pool: roughly a small fused kernel.
const DEFAULT_BATCH_SECONDS: f64 = 100e-6;

/// One device of the pool and its in-flight accounting.
#[derive(Debug)]
pub(crate) struct Shard {
    /// Index in `EngineConfig::devices`.
    pub id: usize,
    /// The simulated device this shard executes on.
    pub gpu: Gpu,
    /// Worker lanes feeding this device (`EngineConfig::workers`).
    pub lanes: usize,
    /// Estimated seconds of every placed-but-unfinished batch, by token.
    /// Tokens increase monotonically with placement, so iterating the map
    /// yields batches in FIFO placement order — the order
    /// [`estimated_queue_delay`]'s greedy lane assignment assumes.
    pending: Mutex<BTreeMap<u64, f64>>,
    /// Batches dispatched to this shard.
    dispatches: AtomicUsize,
    /// Requests served by this shard.
    requests: AtomicUsize,
    /// Simulated busy seconds accumulated by completed batches (nanos).
    busy_nanos: AtomicU64,
    /// Requests the admission controller shed while this shard was the
    /// least-loaded candidate (i.e. the shard that would have served them).
    shed: AtomicUsize,
}

impl Shard {
    pub fn new(id: usize, spec: GpuSpec, lanes: usize) -> Shard {
        Shard {
            id,
            gpu: Gpu::new(spec),
            lanes: lanes.max(1),
            pending: Mutex::new(BTreeMap::new()),
            dispatches: AtomicUsize::new(0),
            requests: AtomicUsize::new(0),
            busy_nanos: AtomicU64::new(0),
            shed: AtomicUsize::new(0),
        }
    }

    /// Estimated delay before a new batch placed now would start executing.
    pub fn queue_delay(&self) -> f64 {
        let pending: Vec<f64> = self
            .pending
            .lock()
            .expect("shard poisoned")
            .values()
            .copied()
            .collect();
        estimated_queue_delay(&pending, self.lanes)
    }

    /// Records a placed batch; `token` must be released via
    /// [`Shard::release`] when the batch finishes (or fails). Tokens must
    /// be assigned in placement order (the dispatcher's counter guarantees
    /// this) so that [`Shard::queue_delay`] sees a FIFO queue.
    pub fn place(&self, token: u64, estimated_seconds: f64) {
        self.pending
            .lock()
            .expect("shard poisoned")
            .insert(token, estimated_seconds);
        self.dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts an executed batch's served requests and device time. Called
    /// *before* the batch's responses are sent, so a snapshot taken after
    /// the last response always sees consistent per-shard counters.
    pub fn account(&self, served_requests: usize, busy_seconds: f64) {
        self.requests.fetch_add(served_requests, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add((busy_seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Releases a placed batch's queue-delay contribution once the worker is
    /// done with it (successfully or not).
    pub fn release(&self, token: u64) {
        self.pending.lock().expect("shard poisoned").remove(&token);
    }

    /// Counts a request shed at admission while this shard was the best
    /// placement candidate.
    pub fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            id: self.id,
            device: self.gpu.spec().name.clone(),
            dispatched_batches: self.dispatches.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            busy_seconds: self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            shed_requests: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one shard, surfaced in
/// [`crate::StatsSnapshot::shards`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Index in `EngineConfig::devices`.
    pub id: usize,
    /// Device name (`GpuSpec::name`).
    pub device: String,
    /// Batches dispatched to this shard.
    pub dispatched_batches: usize,
    /// Requests served by this shard.
    pub requests: usize,
    /// Simulated device-seconds this shard spent executing batches.
    pub busy_seconds: f64,
    /// Requests shed at admission while this shard was the least-loaded
    /// candidate.
    pub shed_requests: usize,
}

/// Memoized analytic latency estimates, keyed by (shard, model, batch size).
///
/// Values are `CompiledGraph::estimate` outputs — the paper's cost model on
/// the shard's device — recorded at warmup and after every executed batch.
#[derive(Debug, Default)]
pub(crate) struct LatencyModel {
    map: Mutex<HashMap<(usize, String, i64), f64>>,
}

impl LatencyModel {
    /// Stores the analytic estimate for `model` at `batch` on shard `shard`.
    pub fn record(&self, shard: usize, model: &str, batch: i64, seconds: f64) {
        self.map
            .lock()
            .expect("latency model poisoned")
            .insert((shard, model.to_string(), batch), seconds);
    }

    /// Drops every estimate recorded for `model` (all shards, all batch
    /// sizes) — called when the engine unloads a model so a later
    /// registration under the same name starts from fresh evidence.
    pub fn forget_model(&self, model: &str) {
        self.map
            .lock()
            .expect("latency model poisoned")
            .retain(|(_, m, _), _| m != model);
    }

    /// Best available estimate for `model` at `batch` on shard `shard`:
    /// the exact entry, else the same shape on any shard, else another batch
    /// size of the model on this shard scaled linearly, else a small default.
    pub fn estimate(&self, shard: usize, model: &str, batch: i64) -> f64 {
        let map = self.map.lock().expect("latency model poisoned");
        if let Some(&s) = map.get(&(shard, model.to_string(), batch)) {
            return s;
        }
        if let Some(s) = map
            .iter()
            .find(|((_, m, b), _)| m == model && *b == batch)
            .map(|(_, &s)| s)
        {
            return s;
        }
        if let Some(((_, _, b), &s)) = map
            .iter()
            .filter(|((sh, m, _), _)| *sh == shard && m == model)
            .max_by_key(|((_, _, b), _)| *b)
        {
            return s * batch as f64 / (*b).max(1) as f64;
        }
        DEFAULT_BATCH_SECONDS
    }
}

/// Picks the shard with the least estimated queue delay for a batch of
/// `model` at `batch`, returning `(shard index, that shard's queue delay,
/// estimated batch seconds on it)`.
pub(crate) fn pick_shard(
    shards: &[Shard],
    latency_model: &LatencyModel,
    model: &str,
    batch: i64,
) -> (usize, f64, f64) {
    let (idx, delay) = shards
        .iter()
        .map(|s| (s.id, s.queue_delay()))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("engine has at least one shard");
    let est = latency_model.estimate(idx, model, batch);
    (idx, delay, est)
}

/// Least-loaded queue delay across the pool — the admission controller's
/// view of how congested the devices are.
pub(crate) fn least_queue_delay(shards: &[Shard]) -> (usize, f64) {
    shards
        .iter()
        .map(|s| (s.id, s.queue_delay()))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("engine has at least one shard")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: usize, lanes: usize) -> Shard {
        Shard::new(id, GpuSpec::tiny(), lanes)
    }

    #[test]
    fn queue_delay_tracks_pending_batches() {
        let s = shard(0, 1);
        assert_eq!(s.queue_delay(), 0.0);
        s.place(1, 0.010);
        s.place(2, 0.020);
        assert!((s.queue_delay() - 0.030).abs() < 1e-12);
        s.account(4, 0.010);
        s.release(1);
        assert!((s.queue_delay() - 0.020).abs() < 1e-12);
        s.account(4, 0.020);
        s.release(2);
        assert_eq!(s.queue_delay(), 0.0);
        let snap = s.snapshot();
        assert_eq!(snap.dispatched_batches, 2);
        assert_eq!(snap.requests, 8);
        assert!((snap.busy_seconds - 0.030).abs() < 1e-9);
    }

    #[test]
    fn queue_delay_respects_fifo_placement_order() {
        // Greedy lane assignment is order-sensitive: FIFO [4, 1, 1] on two
        // lanes puts both short batches behind each other (delay 2), not
        // behind the long one (which would misreport 1). The pending map is
        // ordered by token, so placement order is what the estimator sees.
        let s = shard(0, 2);
        s.place(1, 4.0);
        s.place(2, 1.0);
        s.place(3, 1.0);
        assert!((s.queue_delay() - 2.0).abs() < 1e-12, "{}", s.queue_delay());
    }

    #[test]
    fn multi_lane_shard_hides_shorter_queue() {
        let s = shard(0, 2);
        s.place(1, 0.010);
        // Second lane is free: no delay for the next batch.
        assert_eq!(s.queue_delay(), 0.0);
        s.place(2, 0.010);
        assert!((s.queue_delay() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn placement_prefers_least_loaded_shard() {
        let shards = vec![shard(0, 1), shard(1, 1)];
        let lm = LatencyModel::default();
        let (first, d0, _) = pick_shard(&shards, &lm, "m", 1);
        assert_eq!((first, d0), (0, 0.0));
        shards[0].place(1, 0.050);
        let (second, _, _) = pick_shard(&shards, &lm, "m", 1);
        assert_eq!(second, 1, "loaded shard 0 must be avoided");
        shards[1].place(2, 0.100);
        let (third, delay, _) = pick_shard(&shards, &lm, "m", 1);
        assert_eq!(third, 0, "shard 0 now frees sooner");
        assert!((delay - 0.050).abs() < 1e-12);
    }

    #[test]
    fn latency_model_falls_back_sensibly() {
        let lm = LatencyModel::default();
        // Never seen anywhere: the default.
        assert!((lm.estimate(0, "m", 4) - DEFAULT_BATCH_SECONDS).abs() < 1e-12);
        // Exact entry wins.
        lm.record(0, "m", 4, 0.002);
        assert!((lm.estimate(0, "m", 4) - 0.002).abs() < 1e-12);
        // Same shape on another shard is next best.
        assert!((lm.estimate(1, "m", 4) - 0.002).abs() < 1e-12);
        // Another batch size on the same shard scales linearly.
        assert!((lm.estimate(0, "m", 8) - 0.004).abs() < 1e-12);
    }

    #[test]
    fn forgetting_a_model_resets_its_estimates() {
        let lm = LatencyModel::default();
        lm.record(0, "m", 4, 0.002);
        lm.record(1, "m", 8, 0.004);
        lm.record(0, "other", 4, 0.001);
        lm.forget_model("m");
        assert!((lm.estimate(0, "m", 4) - DEFAULT_BATCH_SECONDS).abs() < 1e-12);
        assert!((lm.estimate(0, "other", 4) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn shed_attribution_lands_on_candidate_shard() {
        let shards = vec![shard(0, 1), shard(1, 1)];
        shards[0].place(1, 1.0);
        let (idx, _) = least_queue_delay(&shards);
        shards[idx].count_shed();
        assert_eq!(shards[1].snapshot().shed_requests, 1);
        assert_eq!(shards[0].snapshot().shed_requests, 0);
    }
}
