//! The serving engine: a multi-session inference front-end over the Hidet
//! compiler and the simulated GPU.
//!
//! ```text
//!   clients ── submit ──▶ queue ──▶ dispatcher ──▶ batch jobs ──▶ workers
//!                                   (coalesces same-model requests)   │
//!                                                                     ▼
//!                                             compiled-graph cache ──▶ hidet-sim
//! ```
//!
//! * Requests for the same model are **coalesced along the batch dimension**
//!   (up to [`EngineConfig::max_batch`], waiting at most
//!   [`EngineConfig::batch_window`]) before dispatch, amortizing both kernel
//!   dispatch overhead and device under-utilization at batch 1.
//! * Compilation happens at most once per (structure, device, options) — see
//!   [`crate::CompiledCache`] — so steady-state requests never compile.
//! * Tuning results persist via [`hidet_sched::TuningCache`] when
//!   [`EngineConfig::tuning_records_path`] is set: a restarted process
//!   schedules previously seen matmuls with zero trials.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hidet::{CompileError, CompilerOptions};
use hidet_graph::Graph;
use hidet_sched::TuningCache;
use hidet_sim::{Gpu, GpuSpec};

use crate::cache::CompiledCache;
use crate::stats::{ServerStats, StatsSnapshot};

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Device every worker executes on.
    pub gpu: GpuSpec,
    /// Compiler options for every model (a tuning cache attached here is
    /// kept; otherwise the engine attaches its own).
    pub options: CompilerOptions,
    /// Worker threads executing batch jobs.
    pub workers: usize,
    /// Maximum requests coalesced into one batch (1 disables batching).
    pub max_batch: usize,
    /// How long the dispatcher holds an under-full batch open for stragglers.
    pub batch_window: Duration,
    /// Tuning-record persistence: loaded at startup, saved on shutdown and
    /// on [`Engine::flush_tuning_records`]. `None` keeps records in memory.
    pub tuning_records_path: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            gpu: GpuSpec::rtx3090(),
            options: CompilerOptions::tuned(),
            workers: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            tuning_records_path: None,
        }
    }
}

impl EngineConfig {
    /// A config with untuned compiles — fast startup for tests and examples.
    pub fn quick() -> EngineConfig {
        EngineConfig {
            options: CompilerOptions::quick(),
            ..EngineConfig::default()
        }
    }
}

/// Errors surfaced to clients.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request named a model that was never loaded.
    UnknownModel(String),
    /// Input tensors were missing or missized.
    BadInput(String),
    /// Compilation failed.
    Compile(CompileError),
    /// Executing the compiled graph failed.
    Execution(String),
    /// The engine is shutting down.
    Closed,
    /// Tuning-record persistence failed.
    Records(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownModel(name) => write!(f, "unknown model \"{name}\""),
            EngineError::BadInput(msg) => write!(f, "bad input: {msg}"),
            EngineError::Compile(e) => write!(f, "compile failed: {e}"),
            EngineError::Execution(msg) => write!(f, "execution failed: {msg}"),
            EngineError::Closed => write!(f, "engine is shut down"),
            EngineError::Records(msg) => write!(f, "tuning records: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Compile(e)
    }
}

/// One completed inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// This request's slice of every graph output, in `Graph::outputs` order.
    pub outputs: Vec<Vec<f32>>,
    /// How many requests shared the executed batch.
    pub batch_size: usize,
    /// Simulated device latency of the executed batch, seconds.
    pub simulated_latency_seconds: f64,
    /// Whether the compiled graph came from the cache.
    pub compile_cache_hit: bool,
}

/// Handle to an in-flight request.
pub struct Ticket {
    rx: mpsc::Receiver<Result<InferenceResult, EngineError>>,
}

impl Ticket {
    /// Blocks until the result is available.
    pub fn wait(self) -> Result<InferenceResult, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::Closed))
    }
}

/// A model family: `builder(b)` must yield the model at batch size `b`, with
/// the leading dimension of every graph input scaling linearly in `b`.
type ModelBuilder = Box<dyn Fn(i64) -> Graph + Send + Sync>;

struct Variant {
    graph: Arc<Graph>,
    /// Memoized `Graph::structural_hash` — O(model weights) to compute, so
    /// it is taken once here instead of on every request batch.
    hash: u64,
}

struct ModelEntry {
    builder: ModelBuilder,
    /// Whether requests may be coalesced along dim 0 (see [`Engine::load`]).
    batchable: bool,
    variants: Mutex<HashMap<i64, Arc<Variant>>>,
}

impl ModelEntry {
    /// The cached graph at batch size `batch` (built on first use).
    fn variant(&self, batch: i64) -> Arc<Variant> {
        let mut variants = self.variants.lock().expect("registry poisoned");
        Arc::clone(variants.entry(batch).or_insert_with(|| {
            let graph = (self.builder)(batch);
            let hash = graph.structural_hash();
            Arc::new(Variant {
                graph: Arc::new(graph),
                hash,
            })
        }))
    }
}

struct PendingRequest {
    model: String,
    inputs: Vec<Vec<f32>>,
    responder: mpsc::Sender<Result<InferenceResult, EngineError>>,
}

impl PendingRequest {
    fn respond(self, result: Result<InferenceResult, EngineError>) {
        // A client that dropped its ticket is not an engine error.
        let _ = self.responder.send(result);
    }
}

struct BatchJob {
    model: String,
    requests: Vec<PendingRequest>,
}

struct Shared {
    gpu: Gpu,
    options: CompilerOptions,
    registry: Mutex<HashMap<String, Arc<ModelEntry>>>,
    queue: Mutex<VecDeque<PendingRequest>>,
    queue_cv: Condvar,
    closed: AtomicBool,
    compiled: CompiledCache,
    stats: ServerStats,
    max_batch: usize,
    batch_window: Duration,
}

/// The serving engine. See the [module docs](crate::engine) for the
/// architecture and `examples/serving.rs` for a tour.
pub struct Engine {
    shared: Arc<Shared>,
    tuning_cache: Arc<Mutex<TuningCache>>,
    tuning_records_path: Option<PathBuf>,
    dispatcher: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine: loads tuning records (if configured), spawns the
    /// dispatcher and the worker pool.
    ///
    /// # Errors
    /// [`EngineError::Records`] if a configured record file exists but cannot
    /// be read or parsed (a *missing* file is a normal cold start).
    pub fn new(config: EngineConfig) -> Result<Engine, EngineError> {
        assert!(config.workers >= 1, "engine needs at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");

        // Attach (or adopt) the tuning-record store. An adopted store still
        // absorbs the configured record file — otherwise shutdown's save
        // would silently overwrite previously persisted records with only
        // this session's.
        let tuning_cache = match &config.options.tuning_cache {
            Some(cache) => {
                if let Some(path) = &config.tuning_records_path {
                    let from_disk =
                        TuningCache::load(path).map_err(|e| EngineError::Records(e.to_string()))?;
                    cache
                        .lock()
                        .expect("tuning cache poisoned")
                        .merge(from_disk);
                }
                Arc::clone(cache)
            }
            None => {
                let cache = match &config.tuning_records_path {
                    Some(path) => {
                        TuningCache::load(path).map_err(|e| EngineError::Records(e.to_string()))?
                    }
                    None => TuningCache::new(),
                };
                Arc::new(Mutex::new(cache))
            }
        };
        let options = config
            .options
            .clone()
            .with_tuning_cache(Arc::clone(&tuning_cache));

        let shared = Arc::new(Shared {
            gpu: Gpu::new(config.gpu),
            options,
            registry: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            closed: AtomicBool::new(false),
            compiled: CompiledCache::new(),
            stats: ServerStats::default(),
            max_batch: config.max_batch,
            batch_window: config.batch_window,
        });

        let (job_tx, job_rx) = mpsc::channel::<BatchJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("hidet-dispatcher".into())
                .spawn(move || dispatch_loop(&shared, job_tx))
                .expect("spawn dispatcher")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let job_rx = Arc::clone(&job_rx);
                thread::Builder::new()
                    .name(format!("hidet-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &job_rx))
                    .expect("spawn worker")
            })
            .collect();

        Ok(Engine {
            shared,
            tuning_cache,
            tuning_records_path: config.tuning_records_path,
            dispatcher: Some(dispatcher),
            workers,
        })
    }

    /// Registers a model family under `name`, eligible for dynamic batching.
    ///
    /// `builder(b)` must return the model at batch size `b`, and the model
    /// must treat dim 0 as **independent samples**: every graph input's
    /// leading dimension scales with `b`, and each output row depends only on
    /// the corresponding input row. CNN-style zoo models satisfy this (e.g.
    /// `engine.load("resnet50", models::resnet50)`); the transformer
    /// builders do **not** — `bert_base`/`gpt2` fold batch into the sequence
    /// axis, so coalesced requests would attend to each other's tokens.
    /// Register those with [`Engine::load_unbatched`] instead.
    ///
    /// Re-loading a name replaces the previous family; compiled graphs are
    /// keyed structurally, so identical structures stay cached.
    pub fn load(&self, name: &str, builder: impl Fn(i64) -> Graph + Send + Sync + 'static) {
        self.register(name, Box::new(builder), true);
    }

    /// Registers a model family whose requests must never be coalesced —
    /// for models where dim 0 is not an independent-sample axis (the zoo's
    /// transformers) or builders that ignore their batch argument. Requests
    /// are always dispatched one at a time, regardless of
    /// [`EngineConfig::max_batch`].
    pub fn load_unbatched(
        &self,
        name: &str,
        builder: impl Fn(i64) -> Graph + Send + Sync + 'static,
    ) {
        self.register(name, Box::new(builder), false);
    }

    fn register(&self, name: &str, builder: ModelBuilder, batchable: bool) {
        let entry = Arc::new(ModelEntry {
            builder,
            batchable,
            variants: Mutex::new(HashMap::new()),
        });
        self.shared
            .registry
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), entry);
    }

    /// Pre-compiles `model` at `batch`, off the request path. Returns whether
    /// the compiled graph was already cached.
    pub fn warmup(&self, model: &str, batch: i64) -> Result<bool, EngineError> {
        let entry = self.entry(model)?;
        let variant = entry.variant(batch);
        let (compiled, hit) = self.shared.compiled.get_or_compile_hashed(
            &variant.graph,
            variant.hash,
            &self.shared.gpu,
            &self.shared.options,
        )?;
        record_compile(&self.shared, &compiled, hit);
        Ok(hit)
    }

    /// Enqueues one inference: `inputs` holds one tensor per graph input, in
    /// `Graph::inputs` order, each shaped for **batch size 1** (the engine
    /// batches requests itself). Returns immediately with a [`Ticket`].
    pub fn submit(&self, model: &str, inputs: Vec<Vec<f32>>) -> Ticket {
        let (tx, rx) = mpsc::channel();
        if self.shared.closed.load(Ordering::SeqCst) {
            let _ = tx.send(Err(EngineError::Closed));
            return Ticket { rx };
        }
        let request = PendingRequest {
            model: model.to_string(),
            inputs,
            responder: tx,
        };
        self.shared
            .queue
            .lock()
            .expect("queue poisoned")
            .push_back(request);
        self.shared.queue_cv.notify_all();
        Ticket { rx }
    }

    /// Blocking single inference: [`Engine::submit`] + [`Ticket::wait`].
    pub fn infer(
        &self,
        model: &str,
        inputs: Vec<Vec<f32>>,
    ) -> Result<InferenceResult, EngineError> {
        self.submit(model, inputs).wait()
    }

    /// Submits a burst of requests and waits for all of them — the pattern
    /// that gives the dispatcher something to coalesce.
    pub fn infer_many(
        &self,
        model: &str,
        requests: Vec<Vec<Vec<f32>>>,
    ) -> Vec<Result<InferenceResult, EngineError>> {
        let tickets: Vec<Ticket> = requests
            .into_iter()
            .map(|inputs| self.submit(model, inputs))
            .collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Current server statistics.
    pub fn stats(&self) -> StatsSnapshot {
        let (hits, misses) = self.shared.compiled.counters();
        self.shared.stats.snapshot(hits, misses)
    }

    /// Number of distinct compiled graphs held by the cache.
    pub fn compiled_graphs(&self) -> usize {
        self.shared.compiled.len()
    }

    /// The shared tuning-record store (also reachable from
    /// `CompilerOptions::tuning_cache`).
    pub fn tuning_cache(&self) -> Arc<Mutex<TuningCache>> {
        Arc::clone(&self.tuning_cache)
    }

    /// Persists tuning records to the configured path now. Returns the number
    /// of records written; no-op (`Ok(0)`) without a configured path.
    pub fn flush_tuning_records(&self) -> Result<usize, EngineError> {
        let Some(path) = &self.tuning_records_path else {
            return Ok(0);
        };
        let mut cache = self.tuning_cache.lock().expect("tuning cache poisoned");
        cache
            .save(path)
            .map_err(|e| EngineError::Records(e.to_string()))?;
        Ok(cache.len())
    }

    /// Stops accepting requests, drains the queue, joins all threads and
    /// flushes tuning records. Called automatically on drop; call explicitly
    /// to observe persistence errors.
    pub fn shutdown(mut self) -> Result<(), EngineError> {
        self.shutdown_inner()
    }

    fn entry(&self, model: &str) -> Result<Arc<ModelEntry>, EngineError> {
        self.shared
            .registry
            .lock()
            .expect("registry poisoned")
            .get(model)
            .cloned()
            .ok_or_else(|| EngineError::UnknownModel(model.to_string()))
    }

    fn shutdown_inner(&mut self) -> Result<(), EngineError> {
        if self.dispatcher.is_none() {
            return Ok(()); // already shut down
        }
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        // The dispatcher owned the only job sender; workers drain and exit.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.flush_tuning_records().map(|_| ())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Dispatcher: groups queued requests by model into batch jobs.
fn dispatch_loop(shared: &Shared, job_tx: mpsc::Sender<BatchJob>) {
    let mut queue = shared.queue.lock().expect("queue poisoned");
    loop {
        // Wait for work (or shutdown).
        while queue.is_empty() {
            if shared.closed.load(Ordering::SeqCst) {
                return;
            }
            queue = shared.queue_cv.wait(queue).expect("queue poisoned");
        }
        let model = queue.front().expect("non-empty").model.clone();
        let same_model =
            |q: &VecDeque<PendingRequest>| q.iter().filter(|r| r.model == model).count();

        // Coalescing ceiling for this model: non-batchable registrations
        // (see `Engine::load_unbatched`) always dispatch one at a time.
        let batchable = {
            let registry = shared.registry.lock().expect("registry poisoned");
            registry.get(&model).is_none_or(|entry| entry.batchable)
        };
        let cap = if batchable { shared.max_batch } else { 1 };

        // Whether some model already has a full batch waiting — if so, the
        // straggler wait below must not hold it (and every worker) hostage
        // behind the front model's half-empty batch.
        let any_full = |q: &VecDeque<PendingRequest>| -> bool {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for r in q.iter() {
                let n = counts.entry(r.model.as_str()).or_insert(0);
                *n += 1;
                if *n >= shared.max_batch {
                    return true;
                }
            }
            false
        };

        // Hold the batch open briefly for stragglers (skipped when batching
        // is off or the batch is already full, abandoned as soon as any
        // model's batch fills — the front model's partial batch dispatches
        // immediately and the full one follows without waiting).
        if cap > 1 {
            let deadline = Instant::now() + shared.batch_window;
            while same_model(&queue) < cap
                && !shared.closed.load(Ordering::SeqCst)
                && !any_full(&queue)
            {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (q, _timeout) = shared
                    .queue_cv
                    .wait_timeout(queue, deadline - now)
                    .expect("queue poisoned");
                queue = q;
            }
        }

        // Extract up to `cap` same-model requests, preserving the order of
        // everything else.
        let mut requests = Vec::new();
        let mut rest = VecDeque::with_capacity(queue.len());
        for request in queue.drain(..) {
            if request.model == model && requests.len() < cap {
                requests.push(request);
            } else {
                rest.push_back(request);
            }
        }
        *queue = rest;

        drop(queue); // don't hold the queue over the channel send
        if job_tx.send(BatchJob { model, requests }).is_err() {
            return; // all workers gone
        }
        queue = shared.queue.lock().expect("queue poisoned");
    }
}

/// Worker: executes batch jobs until the dispatcher hangs up.
fn worker_loop(shared: &Shared, jobs: &Mutex<mpsc::Receiver<BatchJob>>) {
    loop {
        let job = {
            let rx = jobs.lock().expect("job channel poisoned");
            rx.recv()
        };
        match job {
            Ok(job) => process_batch(shared, job),
            Err(_) => return,
        }
    }
}

fn fail_all(shared: &Shared, requests: Vec<PendingRequest>, err: EngineError) {
    shared
        .stats
        .failures
        .fetch_add(requests.len(), Ordering::Relaxed);
    for request in requests {
        request.respond(Err(err.clone()));
    }
}

/// Tuning-side stats for a fresh compile (cache hit/miss counts live in the
/// compiled cache itself — see `CompiledCache::counters`).
fn record_compile(shared: &Shared, compiled: &hidet::CompiledGraph, hit: bool) {
    if !hit {
        shared
            .stats
            .add_tuning_run(compiled.tuning_trials(), compiled.tuning_seconds());
        shared.stats.add_tuning_saved(
            compiled.record_trials_saved(),
            compiled.record_seconds_saved(),
        );
    }
}

fn process_batch(shared: &Shared, job: BatchJob) {
    let entry = {
        let registry = shared.registry.lock().expect("registry poisoned");
        registry.get(&job.model).cloned()
    };
    let Some(entry) = entry else {
        fail_all(shared, job.requests, EngineError::UnknownModel(job.model));
        return;
    };

    // Validate each request against the batch-1 shapes; reject misfits
    // individually so one bad client cannot poison a batch.
    let base = entry.variant(1);
    let expected: Vec<usize> = base
        .graph
        .inputs()
        .iter()
        .map(|&t| base.graph.tensor(t).numel() as usize)
        .collect();
    let mut valid = Vec::with_capacity(job.requests.len());
    for request in job.requests {
        if request.inputs.len() != expected.len() {
            let err = EngineError::BadInput(format!(
                "expected {} input tensors, got {}",
                expected.len(),
                request.inputs.len()
            ));
            shared.stats.failures.fetch_add(1, Ordering::Relaxed);
            request.respond(Err(err));
            continue;
        }
        if let Some(pos) = (0..expected.len()).find(|&i| request.inputs[i].len() != expected[i]) {
            let err = EngineError::BadInput(format!(
                "input {} has {} elements, expected {}",
                pos,
                request.inputs[pos].len(),
                expected[pos]
            ));
            shared.stats.failures.fetch_add(1, Ordering::Relaxed);
            request.respond(Err(err));
            continue;
        }
        valid.push(request);
    }
    if valid.is_empty() {
        return;
    }

    let batch = valid.len() as i64;
    let variant = entry.variant(batch);
    // The builder contract: inputs scale linearly with the batch size.
    let scales = variant
        .graph
        .inputs()
        .iter()
        .zip(&expected)
        .all(|(&t, &per)| variant.graph.tensor(t).numel() as usize == per * batch as usize);
    if !scales {
        fail_all(
            shared,
            valid,
            EngineError::BadInput(format!(
                "model builder does not scale inputs with the batch dimension at batch {batch}"
            )),
        );
        return;
    }

    let compiled = shared.compiled.get_or_compile_hashed(
        &variant.graph,
        variant.hash,
        &shared.gpu,
        &shared.options,
    );
    let (compiled, cache_hit) = match compiled {
        Ok(result) => result,
        Err(e) => {
            fail_all(shared, valid, EngineError::Compile(e));
            return;
        }
    };
    record_compile(shared, &compiled, cache_hit);

    // Coalesce: requests are laid out contiguously along dim 0.
    let mut input_map = HashMap::new();
    for (pos, &tid) in variant.graph.inputs().iter().enumerate() {
        let mut buffer = Vec::with_capacity(expected[pos] * valid.len());
        for request in &valid {
            buffer.extend_from_slice(&request.inputs[pos]);
        }
        input_map.insert(tid, buffer);
    }

    let outputs = match compiled.run(&input_map, &shared.gpu) {
        Ok(outputs) => outputs,
        Err(e) => {
            fail_all(shared, valid, EngineError::Execution(e.to_string()));
            return;
        }
    };
    let latency = compiled.estimate(&shared.gpu);
    shared.stats.record_batch(valid.len(), latency);

    // Scatter each output back to its request.
    let out_ids: Vec<_> = variant.graph.outputs().to_vec();
    let per_request: Vec<usize> = out_ids
        .iter()
        .map(|&t| variant.graph.tensor(t).numel() as usize / valid.len())
        .collect();
    for (i, request) in valid.into_iter().enumerate() {
        let slices: Vec<Vec<f32>> = out_ids
            .iter()
            .zip(&per_request)
            .map(|(&t, &len)| outputs[&t][i * len..(i + 1) * len].to_vec())
            .collect();
        request.respond(Ok(InferenceResult {
            outputs: slices,
            batch_size: batch as usize,
            simulated_latency_seconds: latency,
            compile_cache_hit: cache_hit,
        }));
    }
}
