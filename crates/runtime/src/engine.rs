//! The serving engine: a multi-session inference front-end over the Hidet
//! compiler and a pool of simulated GPUs.
//!
//! The model lifecycle is explicit: [`Engine::register`] takes a
//! [`ModelSpec`] (name, graph-builder family, batching mode, optional
//! artifact store) and returns a [`ModelHandle`] that owns every per-model
//! operation — [`ModelHandle::infer`], [`ModelHandle::submit`],
//! [`ModelHandle::warmup`], [`ModelHandle::unload`]. Requests are built with
//! the [`Request`] builder (inputs + priority + deadline + per-request
//! timeout). The deprecated free-function entry points of the v1 API
//! (`Engine::load`, `Engine::submit_with`, ...) are gone — every per-model
//! operation lives on the handle.
//!
//! ```text
//!   clients ── handle.submit ──▶ admission ──▶ priority queues ──▶ dispatcher
//!              (Request:         (sheds when    High / Normal /       │
//!               priority,         overloaded)   BestEffort            ▼
//!               deadline,                         batch former (model x class)
//!               timeout)                                              │ least-estimated-
//!                                                                    ▼ queue-delay
//!                                        shard 0 workers ◀── placement ──▶ shard N workers
//!                                              │                                │
//!                                              ▼                                ▼
//!                               shared compiled-graph cache ──▶ hidet-sim device per shard
//!                                     │  ▲
//!                                     ▼  │ (zero-tuning rebuild)
//!                               disk artifact store (persists across processes)
//! ```
//!
//! * Requests carry a [`Priority`] class and an optional deadline
//!   ([`Request::with_deadline`] / [`Request::with_timeout`]). The
//!   dispatcher always serves the highest non-empty class; requests whose
//!   deadline passes while queued are rejected with
//!   [`EngineError::DeadlineExceeded`] and never reach a worker.
//! * Same-model, same-class requests are **coalesced along the batch
//!   dimension** (up to [`EngineConfig::max_batch`], waiting at most
//!   [`EngineConfig::batch_window`]) before dispatch. The straggler wait is
//!   abandoned as soon as a higher class has traffic, so priority inversion
//!   is bounded by one partial batch.
//! * Formed batches are **placed across the device pool**
//!   ([`EngineConfig::devices`]) on the shard with the least estimated queue
//!   delay, computed by [`hidet_sim::estimated_queue_delay`] over the
//!   analytic latency estimates of every in-flight batch (see the `shard`
//!   module and [`crate::ShardSnapshot`]).
//! * An **admission controller** sheds load with
//!   [`EngineError::QueueFull`] when the engine holds too many in-flight
//!   requests or the estimated queue delay exceeds
//!   [`EngineConfig::admission_delay_bound`]. Shedding thresholds scale with
//!   priority, so best-effort traffic is always shed before high-priority
//!   traffic.
//! * Compilation happens at most once per (structure, device, options) — see
//!   [`crate::CompiledCache`] — so steady-state requests never compile, and
//!   homogeneous shards share one compiled graph. With an **artifact store**
//!   ([`EngineConfig::artifact_store`] or [`ModelSpec::with_artifact_store`])
//!   that holds across *process restarts*: compiles serialize their
//!   [`hidet::CompiledArtifact`] to disk, and a warm restart rebuilds plans
//!   from those files with zero fresh compiles and zero tuning trials.
//!   Capacity/TTL bounds ([`EngineConfig::compiled_capacity`],
//!   [`EngineConfig::compiled_ttl`]) and [`ModelHandle::unload`] evict
//!   entries — an evicted key recompiles (or re-loads its artifact)
//!   transparently on next use, with eviction counters in
//!   [`crate::StatsSnapshot`].
//! * Tuning results persist via [`hidet_sched::TuningCache`] when
//!   [`EngineConfig::tuning_records_path`] is set: a restarted process
//!   schedules previously seen matmuls with zero trials. Records are flushed
//!   on [`Engine::shutdown`] *and* from `Drop`, so a panicking caller does
//!   not lose tuned schedules.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hidet::{CompileError, CompilerOptions};
use hidet_graph::Graph;
use hidet_sched::TuningCache;
use hidet_sim::GpuSpec;

use crate::cache::{CacheOutcome, CompiledCache, EvictionPolicy};
use crate::shard::{self, LatencyModel, Shard};
use crate::stats::{ServerStats, StatsSnapshot};
use crate::store::ArtifactStore;

/// Request priority class, highest first.
///
/// The dispatcher always forms batches from the highest non-empty class, and
/// the admission controller sheds lower classes earlier: each class has a
/// larger share of the in-flight budget and more slack against the queue
/// delay bound than the class below it, so high-priority traffic is never
/// shed while best-effort traffic is admitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-critical traffic: served first, shed last.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Background traffic: served last, shed first.
    BestEffort,
}

impl Priority {
    /// Number of priority classes.
    pub const COUNT: usize = 3;
    /// All classes, highest first — index with [`Priority::index`].
    pub const ALL: [Priority; Priority::COUNT] =
        [Priority::High, Priority::Normal, Priority::BestEffort];

    /// Position in [`Priority::ALL`] (0 = highest).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::BestEffort => "best-effort",
        }
    }

    /// Fraction of [`EngineConfig::max_inflight`] this class may fill before
    /// the admission controller sheds it. Monotone in priority: as load
    /// climbs, best-effort is rejected first, then normal, then high.
    fn queue_share(self) -> f64 {
        match self {
            Priority::High => 1.0,
            Priority::Normal => 0.75,
            Priority::BestEffort => 0.5,
        }
    }

    /// Multiplier on [`EngineConfig::admission_delay_bound`] this class
    /// tolerates before being shed. Monotone in priority. A network
    /// front-end applies the same slack to its socket-level shed bound so
    /// both admission layers degrade in the same order.
    pub fn delay_slack(self) -> f64 {
        match self {
            Priority::High => 4.0,
            Priority::Normal => 2.0,
            Priority::BestEffort => 1.0,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One inference request, builder-style: inputs plus scheduling knobs.
///
/// `inputs` holds one tensor per graph input, in `Graph::inputs` order, each
/// shaped for **batch size 1** — the engine coalesces requests itself.
///
/// ```
/// use hidet_runtime::{Priority, Request};
/// use std::time::Duration;
///
/// let request = Request::new(vec![vec![0.5; 16]])
///     .with_priority(Priority::High)
///     .with_timeout(Duration::from_millis(100));
/// assert_eq!(request.priority(), Priority::High);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Request {
    inputs: Vec<Vec<f32>>,
    priority: Priority,
    deadline: Option<Instant>,
    timeout: Option<Duration>,
    trace_id: u64,
}

impl Request {
    /// A request at [`Priority::Normal`] with no deadline.
    pub fn new(inputs: Vec<Vec<f32>>) -> Request {
        Request {
            inputs,
            ..Request::default()
        }
    }

    /// Sets the priority class.
    pub fn with_priority(mut self, priority: Priority) -> Request {
        self.priority = priority;
        self
    }

    /// Shorthand for [`Priority::High`].
    pub fn high(self) -> Request {
        self.with_priority(Priority::High)
    }

    /// Shorthand for [`Priority::BestEffort`].
    pub fn best_effort(self) -> Request {
        self.with_priority(Priority::BestEffort)
    }

    /// Sets an absolute deadline: once passed, the request is answered with
    /// [`EngineError::DeadlineExceeded`] instead of executed.
    pub fn with_deadline(mut self, deadline: Instant) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a per-request timeout, counted from **submission**. Combines
    /// with [`Request::with_deadline`]: the earlier of the two wins.
    pub fn with_timeout(mut self, timeout: Duration) -> Request {
        self.timeout = Some(timeout);
        self
    }

    /// Attributes this request to a trace: every engine span it touches
    /// (submit, batch formation, execution) carries `trace_id`, so the
    /// request's path is reconstructable from the exported trace. Id 0
    /// (the default) means unattributed.
    pub fn with_trace(mut self, trace_id: u64) -> Request {
        self.trace_id = trace_id;
        self
    }

    /// The trace id spans are attributed to (0 = unattributed).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The priority class this request will be scheduled at.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The effective absolute deadline as of submission time `now`.
    fn effective_deadline(&self, now: Instant) -> Option<Instant> {
        match (self.deadline, self.timeout.map(|t| now + t)) {
            (Some(d), Some(t)) => Some(d.min(t)),
            (d, t) => d.or(t),
        }
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The device pool: one shard per spec, homogeneous or mixed. Batches
    /// are placed on the shard with the least estimated queue delay.
    pub devices: Vec<GpuSpec>,
    /// Compiler options for every model (a tuning cache attached here is
    /// kept; otherwise the engine attaches its own).
    pub options: CompilerOptions,
    /// Worker threads **per device** executing batch jobs.
    pub workers: usize,
    /// Maximum requests coalesced into one batch (1 disables batching).
    pub max_batch: usize,
    /// How long the dispatcher holds an under-full batch open for stragglers.
    pub batch_window: Duration,
    /// Admission hard cap: maximum requests admitted but not yet answered.
    /// Classes below [`Priority::High`] are shed at a fraction of this (see
    /// [`Priority`]); requests beyond it get [`EngineError::QueueFull`].
    pub max_inflight: usize,
    /// Admission delay bound: when the estimated queue delay (simulated
    /// seconds; least-loaded shard plus dispatcher backlog) exceeds this,
    /// new requests are shed — best-effort at 1x the bound, normal at 2x,
    /// high at 4x. `None` disables delay-based shedding.
    pub admission_delay_bound: Option<Duration>,
    /// Tuning-record persistence: loaded at startup, saved on shutdown and
    /// on [`Engine::flush_tuning_records`]. `None` keeps records in memory.
    pub tuning_records_path: Option<PathBuf>,
    /// Default disk-backed artifact store for every registered model
    /// (overridable per model via [`ModelSpec::with_artifact_store`]).
    /// Compiles write their [`hidet::CompiledArtifact`] here; a warm restart
    /// pointed at the same directory rebuilds plans with **zero** fresh
    /// compiles and zero tuning trials. `None` keeps compiles process-local.
    pub artifact_store: Option<PathBuf>,
    /// Compiled-graph cache capacity: beyond this many entries the
    /// least-recently-used completed entry is evicted (recompiling — or
    /// re-loading its artifact — transparently on next use). `None` is
    /// unbounded.
    pub compiled_capacity: Option<usize>,
    /// Compiled-graph TTL: entries idle longer than this are expired (at
    /// lookup and at every [`Engine::stats`] snapshot). `None` disables.
    pub compiled_ttl: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            devices: vec![GpuSpec::rtx3090()],
            options: CompilerOptions::tuned(),
            workers: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            max_inflight: 4096,
            admission_delay_bound: None,
            tuning_records_path: None,
            artifact_store: None,
            compiled_capacity: None,
            compiled_ttl: None,
        }
    }
}

impl EngineConfig {
    /// A config with untuned compiles — fast startup for tests and examples.
    pub fn quick() -> EngineConfig {
        EngineConfig {
            options: CompilerOptions::quick(),
            ..EngineConfig::default()
        }
    }

    /// A pool of `n` identical RTX 3090 shards (tuned compiles).
    pub fn sharded(n: usize) -> EngineConfig {
        EngineConfig {
            devices: vec![GpuSpec::rtx3090(); n.max(1)],
            ..EngineConfig::default()
        }
    }
}

/// Errors surfaced to clients.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request named a model that was never loaded.
    UnknownModel(String),
    /// Input tensors were missing or missized.
    BadInput(String),
    /// Compilation failed.
    Compile(CompileError),
    /// Executing the compiled graph failed.
    Execution(String),
    /// The admission controller shed this request (engine overloaded).
    QueueFull(String),
    /// The request's deadline passed before it could be executed.
    DeadlineExceeded,
    /// The engine is shutting down.
    Closed,
    /// Tuning-record persistence failed.
    Records(String),
    /// The model's artifact store could not be prepared.
    Artifact(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownModel(name) => write!(f, "unknown model \"{name}\""),
            EngineError::BadInput(msg) => write!(f, "bad input: {msg}"),
            EngineError::Compile(e) => write!(f, "compile failed: {e}"),
            EngineError::Execution(msg) => write!(f, "execution failed: {msg}"),
            EngineError::QueueFull(msg) => write!(f, "request shed: {msg}"),
            EngineError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            EngineError::Closed => write!(f, "engine is shut down"),
            EngineError::Records(msg) => write!(f, "tuning records: {msg}"),
            EngineError::Artifact(msg) => write!(f, "artifact store: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Compile(e)
    }
}

/// One completed inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// This request's slice of every graph output, in `Graph::outputs` order.
    pub outputs: Vec<Vec<f32>>,
    /// How many requests shared the executed batch.
    pub batch_size: usize,
    /// Simulated device latency of the executed batch, seconds.
    pub simulated_latency_seconds: f64,
    /// Estimated simulated queue delay the batch saw at placement, seconds
    /// (the request's sojourn is this plus the device latency).
    pub queue_delay_seconds: f64,
    /// Priority class the request executed at.
    pub priority: Priority,
    /// Whether the compiled graph came from the cache.
    pub compile_cache_hit: bool,
}

/// Handle to an in-flight request.
pub struct Ticket {
    rx: mpsc::Receiver<Result<InferenceResult, EngineError>>,
}

impl Ticket {
    /// Blocks until the result is available.
    pub fn wait(self) -> Result<InferenceResult, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::Closed))
    }
}

/// A model family: `builder(b)` must yield the model at batch size `b`, with
/// the leading dimension of every graph input scaling linearly in `b`.
type ModelBuilder = Box<dyn Fn(i64) -> Graph + Send + Sync>;

/// Everything [`Engine::register`] needs to know about a model: its name,
/// graph-builder family, batching mode and (optionally) where its compiled
/// artifacts persist.
///
/// `builder(b)` must return the model at batch size `b`. By default the
/// model is **batchable**: dim 0 must be an independent-sample axis (every
/// graph input's leading dimension scales with `b`, and each output row
/// depends only on the corresponding input row — true for the CNN zoo
/// models). Models where that does not hold (the zoo's transformers fold
/// batch into the sequence axis) must be registered [`ModelSpec::unbatched`],
/// so their requests are never coalesced.
pub struct ModelSpec {
    name: String,
    builder: ModelBuilder,
    batchable: bool,
    artifact_store: Option<PathBuf>,
}

impl ModelSpec {
    /// A batchable model family named `name`.
    pub fn new(
        name: impl Into<String>,
        builder: impl Fn(i64) -> Graph + Send + Sync + 'static,
    ) -> ModelSpec {
        ModelSpec {
            name: name.into(),
            builder: Box::new(builder),
            batchable: true,
            artifact_store: None,
        }
    }

    /// Marks the model's requests as never coalescible — for models where
    /// dim 0 is not an independent-sample axis or builders that ignore their
    /// batch argument. Requests always dispatch one at a time, regardless of
    /// [`EngineConfig::max_batch`].
    pub fn unbatched(mut self) -> ModelSpec {
        self.batchable = false;
        self
    }

    /// Persists this model's compiled artifacts under `dir`, overriding
    /// [`EngineConfig::artifact_store`]. The directory is created at
    /// registration.
    pub fn with_artifact_store(mut self, dir: impl Into<PathBuf>) -> ModelSpec {
        self.artifact_store = Some(dir.into());
        self
    }

    /// The model's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelSpec")
            .field("name", &self.name)
            .field("batchable", &self.batchable)
            .field("artifact_store", &self.artifact_store)
            .finish_non_exhaustive()
    }
}

struct Variant {
    graph: Arc<Graph>,
    /// Memoized `Graph::structural_hash` — O(model weights) to compute, so
    /// it is taken once here instead of on every request batch.
    hash: u64,
}

struct ModelEntry {
    builder: ModelBuilder,
    /// Whether requests may be coalesced along dim 0 (see [`ModelSpec`]).
    batchable: bool,
    /// Resolved artifact store (per-model override, else the engine default).
    artifact_store: Option<PathBuf>,
    variants: Mutex<HashMap<i64, Arc<Variant>>>,
}

impl ModelEntry {
    /// The cached graph at batch size `batch` (built on first use).
    fn variant(&self, batch: i64) -> Arc<Variant> {
        let mut variants = self.variants.lock().expect("registry poisoned");
        Arc::clone(variants.entry(batch).or_insert_with(|| {
            let graph = (self.builder)(batch);
            let hash = graph.structural_hash();
            Arc::new(Variant {
                graph: Arc::new(graph),
                hash,
            })
        }))
    }
}

struct PendingRequest {
    model: String,
    inputs: Vec<Vec<f32>>,
    priority: Priority,
    deadline: Option<Instant>,
    trace_id: u64,
    responder: mpsc::Sender<Result<InferenceResult, EngineError>>,
}

impl PendingRequest {
    /// Answers the request and releases its in-flight admission slot.
    /// A client that dropped its ticket is not an engine error.
    fn respond(self, shared: &Shared, result: Result<InferenceResult, EngineError>) {
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        let _ = self.responder.send(result);
    }

    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// A formed batch bound for one shard's worker pool.
struct BatchJob {
    model: String,
    priority: Priority,
    requests: Vec<PendingRequest>,
    /// Pending-entry token in the target shard (released on completion).
    token: u64,
    /// The target shard's estimated queue delay at placement, seconds.
    queue_delay: f64,
}

/// The priority queues feeding the dispatcher: one FIFO per class.
#[derive(Default)]
struct ClassQueues {
    classes: [VecDeque<PendingRequest>; Priority::COUNT],
}

impl ClassQueues {
    fn total(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    fn push(&mut self, request: PendingRequest) {
        self.classes[request.priority.index()].push_back(request);
    }

    fn highest_nonempty(&self) -> Option<usize> {
        self.classes.iter().position(|q| !q.is_empty())
    }

    fn higher_nonempty(&self, class: usize) -> bool {
        self.classes[..class].iter().any(|q| !q.is_empty())
    }

    /// Earliest deadline among all queued requests, if any carries one.
    fn earliest_deadline(&self) -> Option<Instant> {
        self.classes
            .iter()
            .flat_map(|q| q.iter().filter_map(|r| r.deadline))
            .min()
    }

    /// Whether some (class, model) group already has a full batch waiting.
    fn any_full(&self, cap: usize) -> bool {
        let mut counts: HashMap<(usize, &str), usize> = HashMap::new();
        for (c, q) in self.classes.iter().enumerate() {
            for r in q.iter() {
                let n = counts.entry((c, r.model.as_str())).or_insert(0);
                *n += 1;
                if *n >= cap {
                    return true;
                }
            }
        }
        false
    }
}

struct Shared {
    options: CompilerOptions,
    /// [`EngineConfig::artifact_store`] — the store models fall back to when
    /// their spec names none.
    default_artifact_store: Option<PathBuf>,
    registry: Mutex<HashMap<String, Arc<ModelEntry>>>,
    queue: Mutex<ClassQueues>,
    queue_cv: Condvar,
    closed: AtomicBool,
    compiled: CompiledCache,
    stats: ServerStats,
    shards: Vec<Shard>,
    latency_model: LatencyModel,
    /// Requests admitted but not yet answered (queued or placed).
    inflight: AtomicUsize,
    max_batch: usize,
    batch_window: Duration,
    max_inflight: usize,
    /// [`EngineConfig::admission_delay_bound`] in seconds.
    delay_bound: Option<f64>,
    /// Attached decode-subsystem stats source ([`Engine::attach_decode_stats`]).
    #[allow(clippy::type_complexity)]
    decode_stats: Mutex<Option<Arc<dyn Fn() -> crate::stats::DecodeStatsSnapshot + Send + Sync>>>,
    /// Attached network-ingress stats source ([`Engine::attach_ingress_stats`]).
    #[allow(clippy::type_complexity)]
    ingress_stats: Mutex<Option<Arc<dyn Fn() -> crate::stats::IngressStatsSnapshot + Send + Sync>>>,
}

impl Shared {
    /// Total worker lanes across the pool.
    fn total_lanes(&self) -> usize {
        self.shards.iter().map(|s| s.lanes).sum()
    }

    /// Admission verdict for a request of `class` while `queued` requests
    /// wait in the dispatcher queue. `None` admits.
    ///
    /// Two monotone-in-priority checks:
    /// 1. the in-flight count against `max_inflight x queue_share(class)`;
    /// 2. the estimated queue delay — least-loaded shard delay plus the
    ///    dispatcher backlog (queued requests x observed device seconds per
    ///    request, spread over every worker lane) — against
    ///    `delay_bound x delay_slack(class)`.
    ///
    /// Cost note: check 1 is a pair of atomic loads; it touches the shard
    /// pending locks only when it actually sheds (for attribution). Check 2
    /// re-derives every shard's queue delay per submission —
    /// O(shards x in-flight batches) — which is why the delay bound is
    /// opt-in (`None` by default keeps the submit path lock-free past the
    /// queue mutex).
    fn admission_verdict(&self, class: Priority, queued: usize) -> Option<EngineError> {
        let inflight = self.inflight.load(Ordering::Relaxed);
        let cap = (self.max_inflight as f64 * class.queue_share()).ceil() as usize;
        if inflight >= cap {
            let (idx, _) = shard::least_queue_delay(&self.shards);
            self.shards[idx].count_shed();
            self.stats.count_shed(class);
            return Some(EngineError::QueueFull(format!(
                "{inflight} requests in flight >= {cap} ({} share of max_inflight {})",
                class.label(),
                self.max_inflight
            )));
        }
        if let Some(bound) = self.delay_bound {
            let (idx, shard_delay) = shard::least_queue_delay(&self.shards);
            let snapshot_requests = self.stats.requests.load(Ordering::Relaxed);
            let per_request = if snapshot_requests > 0 {
                let device_nanos = self.stats.simulated_nanos.load(Ordering::Relaxed) as f64;
                device_nanos / 1e9 / snapshot_requests as f64
            } else {
                0.0 // cold engine: no evidence of backlog cost yet
            };
            let backlog = queued as f64 * per_request / self.total_lanes() as f64;
            let estimated = shard_delay + backlog;
            let slack = bound * class.delay_slack();
            if estimated > slack {
                self.shards[idx].count_shed();
                self.stats.count_shed(class);
                return Some(EngineError::QueueFull(format!(
                    "estimated queue delay {:.1} us exceeds the {} bound {:.1} us",
                    estimated * 1e6,
                    class.label(),
                    slack * 1e6
                )));
            }
        }
        None
    }
}

/// The serving engine. See the [module docs](crate::engine) for the
/// architecture and `examples/serving.rs` for a tour.
pub struct Engine {
    shared: Arc<Shared>,
    tuning_cache: Arc<Mutex<TuningCache>>,
    tuning_records_path: Option<PathBuf>,
    dispatcher: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine: loads tuning records (if configured), builds one
    /// shard per configured device, spawns the dispatcher and the per-shard
    /// worker pools.
    ///
    /// # Errors
    /// [`EngineError::Records`] if a configured record file exists but cannot
    /// be read or parsed (a *missing* file is a normal cold start).
    pub fn new(config: EngineConfig) -> Result<Engine, EngineError> {
        assert!(
            !config.devices.is_empty(),
            "engine needs at least one device"
        );
        assert!(config.workers >= 1, "engine needs at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.max_inflight >= 1, "max_inflight must be at least 1");

        // Attach (or adopt) the tuning-record store. An adopted store still
        // absorbs the configured record file — otherwise shutdown's save
        // would silently overwrite previously persisted records with only
        // this session's.
        let tuning_cache = match &config.options.tuning_cache {
            Some(cache) => {
                if let Some(path) = &config.tuning_records_path {
                    let from_disk =
                        TuningCache::load(path).map_err(|e| EngineError::Records(e.to_string()))?;
                    cache
                        .lock()
                        .expect("tuning cache poisoned")
                        .merge(from_disk);
                }
                Arc::clone(cache)
            }
            None => {
                let cache = match &config.tuning_records_path {
                    Some(path) => {
                        TuningCache::load(path).map_err(|e| EngineError::Records(e.to_string()))?
                    }
                    None => TuningCache::new(),
                };
                Arc::new(Mutex::new(cache))
            }
        };
        let options = config
            .options
            .clone()
            .with_tuning_cache(Arc::clone(&tuning_cache));

        let shards: Vec<Shard> = config
            .devices
            .iter()
            .enumerate()
            .map(|(i, spec)| Shard::new(i, spec.clone(), config.workers))
            .collect();

        let shared = Arc::new(Shared {
            options,
            default_artifact_store: config.artifact_store.clone(),
            registry: Mutex::new(HashMap::new()),
            queue: Mutex::new(ClassQueues::default()),
            queue_cv: Condvar::new(),
            closed: AtomicBool::new(false),
            compiled: CompiledCache::with_policy(EvictionPolicy {
                capacity: config.compiled_capacity,
                ttl: config.compiled_ttl,
            }),
            stats: ServerStats::default(),
            shards,
            latency_model: LatencyModel::default(),
            inflight: AtomicUsize::new(0),
            max_batch: config.max_batch,
            batch_window: config.batch_window,
            max_inflight: config.max_inflight,
            delay_bound: config.admission_delay_bound.map(|d| d.as_secs_f64()),
            decode_stats: Mutex::new(None),
            ingress_stats: Mutex::new(None),
        });

        // One job channel per shard; the dispatcher owns every sender, so
        // worker pools drain and exit once the dispatcher hangs up.
        let mut senders = Vec::with_capacity(config.devices.len());
        let mut workers = Vec::new();
        for shard_idx in 0..config.devices.len() {
            let (job_tx, job_rx) = mpsc::channel::<BatchJob>();
            senders.push(job_tx);
            let job_rx = Arc::new(Mutex::new(job_rx));
            for lane in 0..config.workers {
                let shared = Arc::clone(&shared);
                let job_rx = Arc::clone(&job_rx);
                workers.push(
                    thread::Builder::new()
                        .name(format!("hidet-shard{shard_idx}-worker{lane}"))
                        .spawn(move || worker_loop(&shared, shard_idx, &job_rx))
                        .expect("spawn worker"),
                );
            }
        }
        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("hidet-dispatcher".into())
                .spawn(move || dispatch_loop(&shared, senders))
                .expect("spawn dispatcher")
        };

        Ok(Engine {
            shared,
            tuning_cache,
            tuning_records_path: config.tuning_records_path,
            dispatcher: Some(dispatcher),
            workers,
        })
    }

    /// Registers a model and returns its [`ModelHandle`] — the v2 entry
    /// point owning `infer`/`submit`/`warmup`/`unload` for that model.
    ///
    /// Re-registering a name replaces the previous family (outstanding
    /// handles to the old registration keep working against the new one —
    /// handles address models by name); compiled graphs are keyed
    /// structurally, so identical structures stay cached. If the spec (or
    /// [`EngineConfig::artifact_store`]) names an artifact store, the
    /// directory is created here.
    ///
    /// # Errors
    /// [`EngineError::Closed`] after shutdown began, [`EngineError::BadInput`]
    /// for an empty name, [`EngineError::Artifact`] when the artifact-store
    /// directory cannot be created.
    pub fn register(&self, spec: ModelSpec) -> Result<ModelHandle, EngineError> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(EngineError::Closed);
        }
        if spec.name.is_empty() {
            return Err(EngineError::BadInput(
                "model name must not be empty".to_string(),
            ));
        }
        let artifact_store = spec
            .artifact_store
            .or_else(|| self.shared.default_artifact_store.clone());
        if let Some(dir) = &artifact_store {
            std::fs::create_dir_all(dir).map_err(|e| {
                EngineError::Artifact(format!(
                    "cannot create artifact store {}: {e}",
                    dir.display()
                ))
            })?;
        }
        let entry = Arc::new(ModelEntry {
            builder: spec.builder,
            batchable: spec.batchable,
            artifact_store,
            variants: Mutex::new(HashMap::new()),
        });
        self.shared
            .registry
            .lock()
            .expect("registry poisoned")
            .insert(spec.name.clone(), entry);
        Ok(ModelHandle {
            name: Arc::from(spec.name),
            shared: Arc::clone(&self.shared),
        })
    }

    /// Unregisters the handle's model and evicts its compiled graphs and
    /// placement estimates — see [`ModelHandle::unload`].
    pub fn unload(&self, handle: &ModelHandle) -> bool {
        handle.unload()
    }

    /// Current server statistics, including per-shard, artifact-store and
    /// eviction counters — plus the attached decode subsystem's snapshot
    /// when one is registered ([`Engine::attach_decode_stats`]).
    /// Snapshotting also sweeps TTL-expired cache entries so idle-eviction
    /// counters stay current without traffic.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.compiled.evict_expired();
        let shards = self.shared.shards.iter().map(Shard::snapshot).collect();
        let mut snapshot = self
            .shared
            .stats
            .snapshot(self.shared.compiled.counters(), shards);
        let source = self
            .shared
            .decode_stats
            .lock()
            .expect("decode stats poisoned")
            .clone();
        snapshot.decode = source.map(|f| f());
        let ingress = self
            .shared
            .ingress_stats
            .lock()
            .expect("ingress stats poisoned")
            .clone();
        snapshot.ingress = ingress.map(|f| f());
        snapshot
    }

    /// Registers a decode-subsystem stats source (e.g.
    /// `hidet_decode::DecodeEngine::stats_source`), surfacing token-level
    /// serving metrics — TTFT, inter-token latency, tokens/sec, KV blocks in
    /// use — in [`StatsSnapshot::decode`]. Replaces any previous source.
    pub fn attach_decode_stats(
        &self,
        source: Arc<dyn Fn() -> crate::stats::DecodeStatsSnapshot + Send + Sync>,
    ) {
        *self
            .shared
            .decode_stats
            .lock()
            .expect("decode stats poisoned") = Some(source);
    }

    /// Registers a network-ingress stats source (e.g.
    /// `hidet_server::HidetServer::stats_source`), surfacing wire-level
    /// metrics — accepted/shed connections, ring occupancy,
    /// wire-to-first-byte latency — in [`StatsSnapshot::ingress`]. Replaces
    /// any previous source.
    pub fn attach_ingress_stats(
        &self,
        source: Arc<dyn Fn() -> crate::stats::IngressStatsSnapshot + Send + Sync>,
    ) {
        *self
            .shared
            .ingress_stats
            .lock()
            .expect("ingress stats poisoned") = Some(source);
    }

    /// The estimated queue delay of the least-loaded shard, in **simulated**
    /// seconds — the signal a network front-end polls to shed overload at
    /// the socket before any parsing or scheduler work (see
    /// [`AdmissionSignal`]).
    ///
    /// Takes the shard pending locks; callers on an accept hot path should
    /// sample it from a background thread into an atomic rather than call it
    /// per connection.
    pub fn estimated_queue_delay_seconds(&self) -> f64 {
        shard::least_queue_delay(&self.shared.shards).1
    }

    /// Number of shards (devices) in the pool.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Number of distinct compiled graphs held by the cache.
    pub fn compiled_graphs(&self) -> usize {
        self.shared.compiled.len()
    }

    /// The shared tuning-record store (also reachable from
    /// `CompilerOptions::tuning_cache`).
    pub fn tuning_cache(&self) -> Arc<Mutex<TuningCache>> {
        Arc::clone(&self.tuning_cache)
    }

    /// Persists tuning records to the configured path now. Returns the number
    /// of records written; no-op (`Ok(0)`) without a configured path.
    pub fn flush_tuning_records(&self) -> Result<usize, EngineError> {
        let Some(path) = &self.tuning_records_path else {
            return Ok(0);
        };
        let mut cache = self.tuning_cache.lock().expect("tuning cache poisoned");
        cache
            .save(path)
            .map_err(|e| EngineError::Records(e.to_string()))?;
        Ok(cache.len())
    }

    /// Stops accepting requests, drains the queue, joins all threads and
    /// flushes tuning records. Called automatically on drop; call explicitly
    /// to observe persistence errors.
    pub fn shutdown(mut self) -> Result<(), EngineError> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<(), EngineError> {
        if self.dispatcher.is_none() {
            return Ok(()); // already shut down
        }
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        // The dispatcher owned every job sender; workers drain and exit.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.flush_tuning_records().map(|_| ())
    }
}

/// The load signal a network front-end polls to shed overload at the socket.
///
/// Implemented by [`Engine`] (via
/// [`Engine::estimated_queue_delay_seconds`]); a front-end takes the signal
/// as a trait object so tests can substitute a synthetic load curve without
/// standing up an engine. The value is in **simulated** seconds, like
/// [`EngineConfig::admission_delay_bound`] — a front-end's shed bound is
/// expressed in the same unit, and per-class slack should stay monotone in
/// priority (see [`Priority::delay_slack`]).
pub trait AdmissionSignal: Send + Sync {
    /// Estimated queue delay of the least-loaded shard, simulated seconds.
    fn estimated_queue_delay_seconds(&self) -> f64;
}

impl AdmissionSignal for Engine {
    fn estimated_queue_delay_seconds(&self) -> f64 {
        Engine::estimated_queue_delay_seconds(self)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // A panicking caller must not lose tuned schedules: flush records
        // *before* joining threads, which could hang or double-panic if the
        // engine is being torn down mid-flight. The normal path below
        // flushes again after the join, capturing records from batches that
        // were still executing.
        if thread::panicking() {
            let _ = self.flush_tuning_records();
        }
        let _ = self.shutdown_inner();
    }
}

/// A registered model's session: the v2 surface for everything scoped to one
/// model. Cheap to clone; handles address the model **by name**, so they
/// survive (and follow) re-registration under the same name, and resolve to
/// [`EngineError::UnknownModel`] after [`ModelHandle::unload`].
///
/// A handle holds the engine's shared state alive but not its threads: after
/// the [`Engine`] shuts down, submissions answer [`EngineError::Closed`].
#[derive(Clone)]
pub struct ModelHandle {
    name: Arc<str>,
    shared: Arc<Shared>,
}

impl fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelHandle")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl ModelHandle {
    /// The model's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enqueues one inference, returning immediately with a [`Ticket`]. The
    /// ticket resolves to [`EngineError::QueueFull`] if the admission
    /// controller sheds the request, and to
    /// [`EngineError::DeadlineExceeded`] if the request's deadline/timeout
    /// passes before a worker executes it.
    pub fn submit(&self, request: Request) -> Ticket {
        submit_request(&self.shared, &self.name, request)
    }

    /// Blocking single inference: [`ModelHandle::submit`] + [`Ticket::wait`].
    pub fn infer(&self, request: Request) -> Result<InferenceResult, EngineError> {
        self.submit(request).wait()
    }

    /// Submits a burst of requests and waits for all of them — the pattern
    /// that gives the dispatcher something to coalesce. Failures are
    /// **per-request**: one shed or expired request reports its own error
    /// without masking its siblings' results.
    pub fn infer_many(&self, requests: Vec<Request>) -> Vec<Result<InferenceResult, EngineError>> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Pre-compiles the model at `batch` for **every** shard, off the
    /// request path, and primes the placement scheduler's latency model with
    /// the analytic estimate per device. Returns whether every per-device
    /// compile was already cached in memory (homogeneous shards share one
    /// entry; an artifact-store rebuild counts as *not* cached).
    pub fn warmup(&self, batch: i64) -> Result<bool, EngineError> {
        warmup_model(&self.shared, &self.name, batch)
    }

    /// Unregisters the model, evicts its compiled graphs (counted under
    /// [`StatsSnapshot::compiled_evicted_unload`]) and placement estimates,
    /// and garbage-collects its on-disk artifacts (counted under
    /// [`StatsSnapshot::artifact_gc_removed`]) — an unloaded model's files
    /// can never be looked up again, so keeping them would only accrete
    /// orphans. Files whose structure is still reachable through another
    /// live registration (artifacts are keyed structurally) are spared;
    /// tuning records always survive, so a re-registration re-schedules
    /// with zero trials. A store directory shared with *other processes*
    /// is outside this engine's view — point concurrent engines at
    /// separate stores if their model sets differ. Requests already queued
    /// are answered [`EngineError::UnknownModel`]; so are later submissions
    /// through this (or any) handle. Idempotent: returns whether the model
    /// was loaded.
    pub fn unload(&self) -> bool {
        unload_model(&self.shared, &self.name)
    }
}

fn lookup_entry(shared: &Shared, model: &str) -> Result<Arc<ModelEntry>, EngineError> {
    shared
        .registry
        .lock()
        .expect("registry poisoned")
        .get(model)
        .cloned()
        .ok_or_else(|| EngineError::UnknownModel(model.to_string()))
}

/// [`ModelHandle::warmup`]'s engine-side implementation.
fn warmup_model(shared: &Shared, model: &str, batch: i64) -> Result<bool, EngineError> {
    let entry = lookup_entry(shared, model)?;
    let variant = entry.variant(batch);
    let mut all_hit = true;
    for shard in &shared.shards {
        let (compiled, outcome) = shared.compiled.get_or_compile_hashed(
            &variant.graph,
            variant.hash,
            &shard.gpu,
            &shared.options,
            entry.artifact_store.as_deref(),
        )?;
        record_compile(shared, &compiled, outcome);
        shared
            .latency_model
            .record(shard.id, model, batch, compiled.estimate(&shard.gpu));
        all_hit &= outcome.is_hit();
    }
    Ok(all_hit)
}

/// [`ModelHandle::unload`]'s engine-side implementation.
fn unload_model(shared: &Shared, model: &str) -> bool {
    let entry = shared
        .registry
        .lock()
        .expect("registry poisoned")
        .remove(model);
    let Some(entry) = entry else {
        return false;
    };
    let hashes: Vec<u64> = entry
        .variants
        .lock()
        .expect("registry poisoned")
        .values()
        .map(|v| v.hash)
        .collect();
    shared.compiled.evict_model(&hashes);
    shared.latency_model.forget_model(model);
    // Garbage-collect the unloaded model's on-disk artifacts: with the
    // registration gone they can never be looked up again (a later
    // re-registration recompiles, persisting fresh files), so keeping them
    // would only accrete orphans in a long-lived store. Artifacts are keyed
    // *structurally*, though, and handles address models by name — another
    // live registration can share the structure (same builder, different
    // name) and still warm-start from these files, so hashes reachable
    // through any surviving registration are spared.
    if let Some(dir) = &entry.artifact_store {
        let still_live: std::collections::HashSet<u64> = shared
            .registry
            .lock()
            .expect("registry poisoned")
            .values()
            .flat_map(|e| {
                e.variants
                    .lock()
                    .expect("registry poisoned")
                    .values()
                    .map(|v| v.hash)
                    .collect::<Vec<u64>>()
            })
            .collect();
        let doomed: Vec<u64> = hashes
            .into_iter()
            .filter(|h| !still_live.contains(h))
            .collect();
        let removed = ArtifactStore::new(dir).remove_model(&doomed);
        shared.stats.count_artifact_gc(removed);
    }
    true
}

/// Admission + enqueue: the one path every submission funnels through.
fn submit_request(shared: &Shared, model: &str, request: Request) -> Ticket {
    let _span = hidet_trace::global().span(hidet_trace::SpanKind::EngineSubmit, request.trace_id);
    let (tx, rx) = mpsc::channel();
    let ticket = Ticket { rx };
    if shared.closed.load(Ordering::SeqCst) {
        let _ = tx.send(Err(EngineError::Closed));
        return ticket;
    }
    let now = Instant::now();
    let deadline = request.effective_deadline(now);
    if deadline.is_some_and(|d| now >= d) {
        shared.stats.count_deadline_expired();
        let _ = tx.send(Err(EngineError::DeadlineExceeded));
        return ticket;
    }
    let pending = PendingRequest {
        model: model.to_string(),
        inputs: request.inputs,
        priority: request.priority,
        deadline,
        trace_id: request.trace_id,
        responder: tx,
    };
    {
        // Admission and enqueue under one lock so verdicts are ordered.
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if let Some(err) = shared.admission_verdict(request.priority, queue.total()) {
            drop(queue);
            let _ = pending.responder.send(Err(err));
            return ticket;
        }
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        queue.push(pending);
    }
    shared.queue_cv.notify_all();
    ticket
}

/// Responds `DeadlineExceeded` to every queued request whose deadline has
/// passed — expired requests never reach a worker.
fn purge_expired(shared: &Shared, queue: &mut ClassQueues) {
    let now = Instant::now();
    for q in queue.classes.iter_mut() {
        if !q.iter().any(|r| r.expired(now)) {
            continue;
        }
        let mut keep = VecDeque::with_capacity(q.len());
        for request in q.drain(..) {
            if request.expired(now) {
                shared.stats.count_deadline_expired();
                request.respond(shared, Err(EngineError::DeadlineExceeded));
            } else {
                keep.push_back(request);
            }
        }
        *q = keep;
    }
}

/// Dispatcher: forms (model x priority class) batches from the priority
/// queues and places each on the shard with the least estimated queue delay.
fn dispatch_loop(shared: &Shared, senders: Vec<mpsc::Sender<BatchJob>>) {
    let mut token = 0u64;
    let mut queue = shared.queue.lock().expect("queue poisoned");
    loop {
        purge_expired(shared, &mut queue);
        // Wait for work (or shutdown).
        while queue.total() == 0 {
            if shared.closed.load(Ordering::SeqCst) {
                return;
            }
            queue = shared.queue_cv.wait(queue).expect("queue poisoned");
            purge_expired(shared, &mut queue);
        }
        let class_idx = queue.highest_nonempty().expect("non-empty");
        let class = Priority::ALL[class_idx];
        let model = queue.classes[class_idx]
            .front()
            .expect("non-empty")
            .model
            .clone();
        let same_group = |q: &ClassQueues| {
            q.classes[class_idx]
                .iter()
                .filter(|r| r.model == model)
                .count()
        };

        // Coalescing ceiling for this model: non-batchable registrations
        // (see `ModelSpec::unbatched`) always dispatch one at a time.
        let batchable = {
            let registry = shared.registry.lock().expect("registry poisoned");
            registry.get(&model).is_none_or(|entry| entry.batchable)
        };
        let cap = if batchable { shared.max_batch } else { 1 };

        // Hold the batch open briefly for stragglers (skipped when batching
        // is off or the batch is already full). The wait is abandoned as
        // soon as (a) some group's batch fills — the front group's partial
        // batch dispatches immediately and the full one follows — or (b) a
        // *higher* class gets traffic, bounding priority inversion to one
        // partial batch.
        if cap > 1 {
            let window_end = Instant::now() + shared.batch_window;
            while same_group(&queue) < cap
                && same_group(&queue) > 0
                && !shared.closed.load(Ordering::SeqCst)
                && !queue.any_full(shared.max_batch)
                && !queue.higher_nonempty(class_idx)
            {
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                // Wake at the earliest queued request deadline if it lands
                // inside the window, so expired requests are answered
                // promptly instead of after the full straggler wait.
                let wake = queue
                    .earliest_deadline()
                    .map_or(window_end, |d| d.min(window_end));
                let (q, _timeout) = shared
                    .queue_cv
                    .wait_timeout(queue, wake.saturating_duration_since(now))
                    .expect("queue poisoned");
                queue = q;
                purge_expired(shared, &mut queue);
            }
        }

        // Extract up to `cap` same-group requests, preserving the order of
        // everything else. Requests that expired while queued are answered
        // here instead of executed.
        let now = Instant::now();
        let mut requests = Vec::new();
        let source = &mut queue.classes[class_idx];
        let mut rest = VecDeque::with_capacity(source.len());
        for request in source.drain(..) {
            if request.model == model && requests.len() < cap {
                if request.expired(now) {
                    shared.stats.count_deadline_expired();
                    request.respond(shared, Err(EngineError::DeadlineExceeded));
                } else {
                    requests.push(request);
                }
            } else {
                rest.push_back(request);
            }
        }
        *source = rest;
        if requests.is_empty() {
            continue; // the whole group expired during the window
        }

        drop(queue); // don't hold the queue over placement or the send
        let batch_trace = requests.first().map_or(0, |r| r.trace_id);
        let _form = hidet_trace::global().span(hidet_trace::SpanKind::BatchForm, batch_trace);
        let batch = requests.len() as i64;
        let (shard_idx, queue_delay, estimate) = {
            let _place = hidet_trace::global().span(hidet_trace::SpanKind::ShardPlace, batch_trace);
            shard::pick_shard(&shared.shards, &shared.latency_model, &model, batch)
        };
        token += 1;
        shared.shards[shard_idx].place(token, estimate);
        let job = BatchJob {
            model,
            priority: class,
            requests,
            token,
            queue_delay,
        };
        if senders[shard_idx].send(job).is_err() {
            shared.shards[shard_idx].release(token);
            return; // workers gone
        }
        queue = shared.queue.lock().expect("queue poisoned");
    }
}

/// Worker: executes one shard's batch jobs until the dispatcher hangs up.
/// Each lane owns a [`hidet::Workspace`], so steady-state execution of a
/// model reuses one memory-planned arena instead of allocating fresh
/// buffers per request.
fn worker_loop(shared: &Shared, shard_idx: usize, jobs: &Mutex<mpsc::Receiver<BatchJob>>) {
    let mut workspace = hidet::Workspace::new();
    loop {
        let job = {
            let rx = jobs.lock().expect("job channel poisoned");
            rx.recv()
        };
        match job {
            Ok(job) => {
                let token = job.token;
                process_batch(shared, shard_idx, job, &mut workspace);
                shared.shards[shard_idx].release(token);
            }
            Err(_) => return,
        }
    }
}

fn fail_all(shared: &Shared, requests: Vec<PendingRequest>, err: EngineError) {
    shared
        .stats
        .failures
        .fetch_add(requests.len(), Ordering::Relaxed);
    for request in requests {
        request.respond(shared, Err(err.clone()));
    }
}

/// Tuning-side stats for a fresh compile or an artifact rebuild (cache
/// hit/miss/artifact counts live in the compiled cache itself — see
/// `CompiledCache::counters`). An artifact rebuild runs zero trials and
/// reports the artifact's embodied tuning cost as saved.
fn record_compile(shared: &Shared, compiled: &hidet::CompiledGraph, outcome: CacheOutcome) {
    if !outcome.is_hit() {
        shared
            .stats
            .add_tuning_run(compiled.tuning_trials(), compiled.tuning_seconds());
        shared.stats.add_tuning_saved(
            compiled.record_trials_saved(),
            compiled.record_seconds_saved(),
        );
        shared
            .stats
            .record_planned_peak(compiled.planned_peak_bytes());
    }
}

/// Executes one batch job on `shard_idx`'s device, accounting served
/// requests and busy time on the shard before any response is sent. The
/// caller's `workspace` provides the memory-planned arena (reused across
/// batches of the same compiled model).
fn process_batch(
    shared: &Shared,
    shard_idx: usize,
    job: BatchJob,
    workspace: &mut hidet::Workspace,
) {
    let _span = hidet_trace::global().span(
        hidet_trace::SpanKind::BatchExecute,
        job.requests.first().map_or(0, |r| r.trace_id),
    );
    let shard = &shared.shards[shard_idx];
    let entry = {
        let registry = shared.registry.lock().expect("registry poisoned");
        registry.get(&job.model).cloned()
    };
    let Some(entry) = entry else {
        fail_all(shared, job.requests, EngineError::UnknownModel(job.model));
        return;
    };

    // Last-line deadline check: a request whose deadline passed while the
    // job sat in the shard channel is answered, not executed.
    let now = Instant::now();
    let mut live = Vec::with_capacity(job.requests.len());
    for request in job.requests {
        if request.expired(now) {
            shared.stats.count_deadline_expired();
            request.respond(shared, Err(EngineError::DeadlineExceeded));
        } else {
            live.push(request);
        }
    }
    if live.is_empty() {
        return;
    }

    // Validate each request against the batch-1 shapes; reject misfits
    // individually so one bad client cannot poison a batch.
    let base = entry.variant(1);
    let expected: Vec<usize> = base
        .graph
        .inputs()
        .iter()
        .map(|&t| base.graph.tensor(t).numel() as usize)
        .collect();
    let mut valid = Vec::with_capacity(live.len());
    for request in live {
        if request.inputs.len() != expected.len() {
            let err = EngineError::BadInput(format!(
                "expected {} input tensors, got {}",
                expected.len(),
                request.inputs.len()
            ));
            shared.stats.failures.fetch_add(1, Ordering::Relaxed);
            request.respond(shared, Err(err));
            continue;
        }
        if let Some(pos) = (0..expected.len()).find(|&i| request.inputs[i].len() != expected[i]) {
            let err = EngineError::BadInput(format!(
                "input {} has {} elements, expected {}",
                pos,
                request.inputs[pos].len(),
                expected[pos]
            ));
            shared.stats.failures.fetch_add(1, Ordering::Relaxed);
            request.respond(shared, Err(err));
            continue;
        }
        valid.push(request);
    }
    if valid.is_empty() {
        return;
    }

    let batch = valid.len() as i64;
    let variant = entry.variant(batch);
    // The builder contract: inputs scale linearly with the batch size.
    let scales = variant
        .graph
        .inputs()
        .iter()
        .zip(&expected)
        .all(|(&t, &per)| variant.graph.tensor(t).numel() as usize == per * batch as usize);
    if !scales {
        fail_all(
            shared,
            valid,
            EngineError::BadInput(format!(
                "model builder does not scale inputs with the batch dimension at batch {batch}"
            )),
        );
        return;
    }

    let compiled = shared.compiled.get_or_compile_hashed(
        &variant.graph,
        variant.hash,
        &shard.gpu,
        &shared.options,
        entry.artifact_store.as_deref(),
    );
    let (compiled, outcome) = match compiled {
        Ok(result) => result,
        Err(e) => {
            fail_all(shared, valid, EngineError::Compile(e));
            return;
        }
    };
    record_compile(shared, &compiled, outcome);

    // Coalesce: requests are laid out contiguously along dim 0.
    let mut input_map = HashMap::new();
    for (pos, &tid) in variant.graph.inputs().iter().enumerate() {
        let mut buffer = Vec::with_capacity(expected[pos] * valid.len());
        for request in &valid {
            buffer.extend_from_slice(&request.inputs[pos]);
        }
        input_map.insert(tid, buffer);
    }

    let outputs = match compiled.run_with(&input_map, &shard.gpu, workspace) {
        Ok(outputs) => outputs,
        Err(e) => {
            fail_all(shared, valid, EngineError::Execution(e.to_string()));
            return;
        }
    };
    let latency = compiled.estimate(&shard.gpu);
    // Refine the placement scheduler's estimate for this shape on this shard.
    shared
        .latency_model
        .record(shard_idx, &job.model, batch, latency);
    shared.stats.record_batch(
        job.priority,
        valid.len(),
        latency,
        job.queue_delay + latency,
    );
    shard.account(valid.len(), latency);

    // Scatter each output back to its request.
    let out_ids: Vec<_> = variant.graph.outputs().to_vec();
    let per_request: Vec<usize> = out_ids
        .iter()
        .map(|&t| variant.graph.tensor(t).numel() as usize / valid.len())
        .collect();
    for (i, request) in valid.into_iter().enumerate() {
        let slices: Vec<Vec<f32>> = out_ids
            .iter()
            .zip(&per_request)
            .map(|(&t, &len)| outputs[&t][i * len..(i + 1) * len].to_vec())
            .collect();
        request.respond(
            shared,
            Ok(InferenceResult {
                outputs: slices,
                batch_size: batch as usize,
                simulated_latency_seconds: latency,
                queue_delay_seconds: job.queue_delay,
                priority: job.priority,
                compile_cache_hit: outcome.is_hit(),
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sheds must be monotone in priority: for any load state, a shed
    /// high-priority request implies normal and best-effort would be shed
    /// too — "high is never shed before best-effort".
    #[test]
    fn admission_thresholds_are_monotone_in_priority() {
        for pair in Priority::ALL.windows(2) {
            let (higher, lower) = (pair[0], pair[1]);
            assert!(
                higher.queue_share() >= lower.queue_share(),
                "{higher} vs {lower}"
            );
            assert!(
                higher.delay_slack() >= lower.delay_slack(),
                "{higher} vs {lower}"
            );
        }
    }

    #[test]
    fn priority_order_and_labels() {
        assert_eq!(Priority::High.index(), 0);
        assert_eq!(Priority::Normal.index(), 1);
        assert_eq!(Priority::BestEffort.index(), 2);
        assert_eq!(Priority::default(), Priority::Normal);
        assert!(Priority::High < Priority::BestEffort);
        assert_eq!(Priority::BestEffort.label(), "best-effort");
    }

    #[test]
    fn request_builder_defaults_and_shorthands() {
        let r = Request::new(vec![vec![1.0]]);
        assert_eq!(r.priority(), Priority::Normal);
        assert!(r.effective_deadline(Instant::now()).is_none());
        assert_eq!(Request::default().high().priority(), Priority::High);
        assert_eq!(
            Request::default().best_effort().priority(),
            Priority::BestEffort
        );
    }

    #[test]
    fn request_effective_deadline_takes_the_earlier_bound() {
        let now = Instant::now();
        let absolute = now + Duration::from_millis(50);

        // Deadline only.
        let r = Request::default().with_deadline(absolute);
        assert_eq!(r.effective_deadline(now), Some(absolute));

        // Timeout only: counted from submission.
        let r = Request::default().with_timeout(Duration::from_millis(20));
        assert_eq!(
            r.effective_deadline(now),
            Some(now + Duration::from_millis(20))
        );

        // Both: the earlier wins, whichever it is.
        let r = Request::default()
            .with_deadline(absolute)
            .with_timeout(Duration::from_millis(20));
        assert_eq!(
            r.effective_deadline(now),
            Some(now + Duration::from_millis(20))
        );
        let r = Request::default()
            .with_deadline(absolute)
            .with_timeout(Duration::from_millis(200));
        assert_eq!(r.effective_deadline(now), Some(absolute));
    }

    #[test]
    fn class_queues_priority_accounting() {
        let (tx, _rx) = mpsc::channel();
        let req = |priority: Priority, model: &str| PendingRequest {
            model: model.to_string(),
            inputs: Vec::new(),
            priority,
            deadline: None,
            trace_id: 0,
            responder: tx.clone(),
        };
        let mut q = ClassQueues::default();
        assert_eq!(q.total(), 0);
        assert_eq!(q.highest_nonempty(), None);
        q.push(req(Priority::BestEffort, "a"));
        q.push(req(Priority::BestEffort, "a"));
        assert_eq!(q.highest_nonempty(), Some(Priority::BestEffort.index()));
        q.push(req(Priority::High, "b"));
        assert_eq!(q.highest_nonempty(), Some(Priority::High.index()));
        assert!(q.higher_nonempty(Priority::BestEffort.index()));
        assert!(!q.higher_nonempty(Priority::High.index()));
        assert_eq!(q.total(), 3);
        assert!(q.any_full(2), "two best-effort 'a' requests fill a 2-batch");
        assert!(!q.any_full(3));
    }
}
