//! The compiled-graph cache: repeat requests skip compilation entirely.
//!
//! Keys combine [`Graph::structural_hash`] (the computation itself, invariant
//! under tensor-id renumbering and model names), the device fingerprint
//! ([`hidet_sim::GpuSpec::fingerprint`] — compiled kernels embed
//! device-specific schedules), and the compilation-relevant option bits
//! ([`CompilerOptions::cache_key_bits`]). Two sessions loading the same model
//! at the same batch therefore share one compile, even across registrations
//! under different names.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hidet::{compile, CompileError, CompiledGraph, CompilerOptions};
use hidet_graph::Graph;
use hidet_sim::Gpu;

/// Cache key: computation × device × options.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Graph::structural_hash`] of the model (at its concrete batch size).
    pub graph_hash: u64,
    /// [`hidet_sim::GpuSpec::fingerprint`] of the target device.
    pub device: String,
    /// [`CompilerOptions::cache_key_bits`] of the options.
    pub options: u64,
}

impl CacheKey {
    /// The key under which `graph` compiled for `gpu` with `options` lives.
    ///
    /// Computes `graph.structural_hash()` — O(model weights). Callers that
    /// serve repeat requests should hash once and use
    /// [`CacheKey::from_graph_hash`] (the engine caches the hash per model
    /// variant).
    pub fn new(graph: &Graph, gpu: &Gpu, options: &CompilerOptions) -> CacheKey {
        CacheKey::from_graph_hash(graph.structural_hash(), gpu, options)
    }

    /// The key for a graph whose structural hash is already known.
    pub fn from_graph_hash(graph_hash: u64, gpu: &Gpu, options: &CompilerOptions) -> CacheKey {
        CacheKey {
            graph_hash,
            device: gpu.spec().fingerprint(),
            options: options.cache_key_bits(),
        }
    }
}

type Slot = Arc<OnceLock<Result<Arc<CompiledGraph>, CompileError>>>;

/// Thread-safe compiled-graph cache with in-flight coalescing.
#[derive(Debug, Default)]
pub struct CompiledCache {
    entries: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CompiledCache {
    /// An empty cache.
    pub fn new() -> CompiledCache {
        CompiledCache::default()
    }

    /// The compiled form of `graph`, compiling at most once per key.
    ///
    /// Returns the shared compiled graph and whether this call was a cache
    /// hit. Each key owns a `OnceLock` slot, so concurrent requests for the
    /// same key run **one** compile (the others block on the slot — a tuned
    /// compile is expensive enough that waiting beats duplicating it), while
    /// different keys compile fully in parallel. A compile error is sticky
    /// for its key: compilation is deterministic, so retrying cannot succeed.
    ///
    /// Hashes the graph on every call; hot paths with a memoized hash should
    /// use [`CompiledCache::get_or_compile_hashed`].
    pub fn get_or_compile(
        &self,
        graph: &Graph,
        gpu: &Gpu,
        options: &CompilerOptions,
    ) -> Result<(Arc<CompiledGraph>, bool), CompileError> {
        self.get_or_compile_hashed(graph, graph.structural_hash(), gpu, options)
    }

    /// [`CompiledCache::get_or_compile`] with a precomputed
    /// [`Graph::structural_hash`], skipping the O(model-weights) rehash on
    /// the request path.
    pub fn get_or_compile_hashed(
        &self,
        graph: &Graph,
        graph_hash: u64,
        gpu: &Gpu,
        options: &CompilerOptions,
    ) -> Result<(Arc<CompiledGraph>, bool), CompileError> {
        let key = CacheKey::from_graph_hash(graph_hash, gpu, options);
        let slot: Slot = {
            let mut entries = self.entries.lock().expect("cache poisoned");
            Arc::clone(entries.entry(key).or_default())
        };
        let mut compiled_here = false;
        let outcome = slot.get_or_init(|| {
            compiled_here = true;
            compile(graph, gpu, options).map(Arc::new)
        });
        if compiled_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        match outcome {
            Ok(compiled) => Ok((Arc::clone(compiled), !compiled_here)),
            Err(e) => Err(e.clone()),
        }
    }

    /// Number of successfully compiled graphs held (in-flight and failed
    /// slots excluded).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("cache poisoned")
            .values()
            .filter(|slot| matches!(slot.get(), Some(Ok(_))))
            .count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every cached graph (e.g. after a device spec change in tests).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidet_graph::{GraphBuilder, Tensor};

    fn model(hidden: i64, name: &str) -> Graph {
        let mut g = GraphBuilder::new(name);
        let x = g.input("x", &[4, 8]);
        let w = g.constant(Tensor::randn(&[8, hidden], 1));
        let y = g.matmul(x, w);
        let y = g.relu(y);
        g.output(y).build()
    }

    #[test]
    fn second_compile_is_a_hit() {
        let cache = CompiledCache::new();
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        let (a, hit_a) = cache.get_or_compile(&model(16, "m"), &gpu, &opts).unwrap();
        let (b, hit_b) = cache.get_or_compile(&model(16, "m"), &gpu, &opts).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.counters(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn same_structure_different_name_shares_entry() {
        let cache = CompiledCache::new();
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        cache
            .get_or_compile(&model(16, "alpha"), &gpu, &opts)
            .unwrap();
        let (_, hit) = cache
            .get_or_compile(&model(16, "beta"), &gpu, &opts)
            .unwrap();
        assert!(hit, "names are not structure");
    }

    #[test]
    fn different_structure_or_options_miss() {
        let cache = CompiledCache::new();
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        cache.get_or_compile(&model(16, "m"), &gpu, &opts).unwrap();
        let (_, hit) = cache.get_or_compile(&model(32, "m"), &gpu, &opts).unwrap();
        assert!(!hit, "different hidden width must recompile");
        let ablated = CompilerOptions {
            disable_double_buffering: true,
            ..CompilerOptions::quick()
        };
        let (_, hit) = cache
            .get_or_compile(&model(16, "m"), &gpu, &ablated)
            .unwrap();
        assert!(!hit, "different options must recompile");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn different_device_misses() {
        let cache = CompiledCache::new();
        let opts = CompilerOptions::quick();
        cache
            .get_or_compile(&model(16, "m"), &Gpu::default(), &opts)
            .unwrap();
        let tiny = Gpu::new(hidet_sim::GpuSpec::tiny());
        let (_, hit) = cache.get_or_compile(&model(16, "m"), &tiny, &opts).unwrap();
        assert!(!hit, "kernels are device-specific");
    }
}
