//! The compiled-graph cache: repeat requests skip compilation entirely, a
//! warm artifact store makes that hold **across process restarts**, and an
//! eviction policy keeps a long-lived server's memory bounded.
//!
//! Keys combine [`Graph::structural_hash`] (the computation itself, invariant
//! under tensor-id renumbering and model names), the device fingerprint
//! ([`hidet_sim::GpuSpec::fingerprint`] — compiled kernels embed
//! device-specific schedules), and the compilation-relevant option bits
//! ([`CompilerOptions::cache_key_bits`]). Two sessions loading the same model
//! at the same batch therefore share one compile, even across registrations
//! under different names.
//!
//! Three layers answer a lookup, cheapest first:
//!
//! 1. **memory** — a completed entry under the key ([`CacheOutcome::Hit`]);
//! 2. **disk** — a [`hidet::CompiledArtifact`] in the caller's artifact
//!    store, rebuilt into a plan with zero tuning trials
//!    ([`CacheOutcome::ArtifactLoad`]); corrupted, truncated or mismatched
//!    files are rejected (counted, never panicking) and fall through;
//! 3. **fresh compile** ([`CacheOutcome::Compiled`]), whose artifact is then
//!    written back to the store for the next process.
//!
//! Eviction ([`EvictionPolicy`]): a capacity bound evicts the
//! least-recently-used completed entry, a TTL expires entries idle longer
//! than the configured duration, and `evict_model` (the engine's `unload`)
//! drops a model's entries outright. An evicted key transparently recompiles
//! (or re-loads its artifact) on next use. In-flight compiles are never
//! evicted.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use hidet::{
    compile_from_artifact_hashed, compile_hashed, ArtifactError, CompileError, CompiledArtifact,
    CompiledGraph, CompilerOptions,
};
use hidet_graph::Graph;
use hidet_sim::Gpu;

/// Cache key: computation × device × options.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Graph::structural_hash`] of the model (at its concrete batch size).
    pub graph_hash: u64,
    /// [`hidet_sim::GpuSpec::fingerprint`] of the target device.
    pub device: String,
    /// [`CompilerOptions::cache_key_bits`] of the options.
    pub options: u64,
}

impl CacheKey {
    /// The key under which `graph` compiled for `gpu` with `options` lives.
    ///
    /// Computes `graph.structural_hash()` — O(model weights). Callers that
    /// serve repeat requests should hash once and use
    /// [`CacheKey::from_graph_hash`] (the engine caches the hash per model
    /// variant).
    pub fn new(graph: &Graph, gpu: &Gpu, options: &CompilerOptions) -> CacheKey {
        CacheKey::from_graph_hash(graph.structural_hash(), gpu, options)
    }

    /// The key for a graph whose structural hash is already known.
    pub fn from_graph_hash(graph_hash: u64, gpu: &Gpu, options: &CompilerOptions) -> CacheKey {
        CacheKey {
            graph_hash,
            device: gpu.spec().fingerprint(),
            options: options.cache_key_bits(),
        }
    }

    /// The file this key's artifact lives under inside a store directory.
    /// The device fingerprint is folded through the workspace's stable hash
    /// ([`hidet_graph::StableHasher`] — it contains spaces and separators
    /// unfit for file names).
    pub fn artifact_path(&self, store: &Path) -> PathBuf {
        let mut hasher = hidet_graph::StableHasher::new();
        hasher.write(self.device.as_bytes());
        store.join(format!(
            "artifact-{:016x}-{:x}-{:016x}.json",
            self.graph_hash,
            self.options,
            hasher.finish()
        ))
    }
}

/// How a [`CompiledCache`] lookup was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from memory (or by waiting on another thread's in-flight
    /// compile of the same key).
    Hit,
    /// Rebuilt from a disk artifact — graph passes and codegen ran, tuning
    /// did not.
    ArtifactLoad,
    /// Compiled from scratch.
    Compiled,
}

impl CacheOutcome {
    /// Whether the lookup avoided a fresh compile.
    pub fn is_hit(self) -> bool {
        self == CacheOutcome::Hit
    }
}

/// Bounds on the in-memory cache. `Default` is unbounded (no eviction).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvictionPolicy {
    /// Maximum completed entries held; beyond it the least-recently-used
    /// completed entry is evicted. `None` disables the bound.
    pub capacity: Option<usize>,
    /// Entries idle (not looked up) longer than this are expired. `None`
    /// disables TTL eviction.
    pub ttl: Option<Duration>,
}

/// Counter snapshot of a [`CompiledCache`] — the single source of truth for
/// the engine's compile/eviction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from memory.
    pub hits: usize,
    /// Lookups that compiled from scratch.
    pub misses: usize,
    /// Lookups rebuilt from a disk artifact (zero tuning trials).
    pub artifact_loads: usize,
    /// Artifact files rejected: corrupted, truncated, version- or
    /// key-mismatched, or ill-fitting schedules. Each fell back to a fresh
    /// compile.
    pub artifact_rejects: usize,
    /// Entries evicted because they idled past the TTL.
    pub evicted_ttl: usize,
    /// Entries evicted by capacity pressure (LRU order).
    pub evicted_capacity: usize,
    /// Entries evicted by an explicit model unload.
    pub evicted_unload: usize,
}

impl CacheCounters {
    /// Total evictions across all causes.
    pub fn evictions(&self) -> usize {
        self.evicted_ttl + self.evicted_capacity + self.evicted_unload
    }
}

type Slot = Arc<OnceLock<Result<Arc<CompiledGraph>, CompileError>>>;

#[derive(Debug)]
struct Entry {
    slot: Slot,
    /// Monotone last-use tick (LRU order).
    tick: u64,
    /// Wall-clock last use (TTL).
    touched: Instant,
}

/// Thread-safe compiled-graph cache with in-flight coalescing, an optional
/// disk-backed artifact store and capacity/TTL eviction. See the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct CompiledCache {
    entries: Mutex<HashMap<CacheKey, Entry>>,
    policy: EvictionPolicy,
    tick: AtomicU64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    artifact_loads: AtomicUsize,
    artifact_rejects: AtomicUsize,
    evicted_ttl: AtomicUsize,
    evicted_capacity: AtomicUsize,
    evicted_unload: AtomicUsize,
}

impl CompiledCache {
    /// An unbounded cache with no artifact store.
    pub fn new() -> CompiledCache {
        CompiledCache::default()
    }

    /// A cache with capacity/TTL bounds.
    pub fn with_policy(policy: EvictionPolicy) -> CompiledCache {
        CompiledCache {
            policy,
            ..CompiledCache::default()
        }
    }

    /// The compiled form of `graph`, compiling at most once per key.
    ///
    /// Returns the shared compiled graph and how the lookup was answered.
    /// Each key owns a `OnceLock` slot, so concurrent requests for the same
    /// key run **one** compile (the others block on the slot — a tuned
    /// compile is expensive enough that waiting beats duplicating it), while
    /// different keys compile fully in parallel. A compile error is sticky
    /// for its key: compilation is deterministic, so retrying cannot succeed.
    ///
    /// Hashes the graph on every call; hot paths with a memoized hash should
    /// use [`CompiledCache::get_or_compile_hashed`].
    pub fn get_or_compile(
        &self,
        graph: &Graph,
        gpu: &Gpu,
        options: &CompilerOptions,
    ) -> Result<(Arc<CompiledGraph>, CacheOutcome), CompileError> {
        self.get_or_compile_hashed(graph, graph.structural_hash(), gpu, options, None)
    }

    /// [`CompiledCache::get_or_compile`] with a precomputed
    /// [`Graph::structural_hash`] (skipping the O(model-weights) rehash on
    /// the request path) and an optional artifact store directory consulted
    /// on a memory miss and written back to after a fresh compile.
    pub fn get_or_compile_hashed(
        &self,
        graph: &Graph,
        graph_hash: u64,
        gpu: &Gpu,
        options: &CompilerOptions,
        store: Option<&Path>,
    ) -> Result<(Arc<CompiledGraph>, CacheOutcome), CompileError> {
        let key = CacheKey::from_graph_hash(graph_hash, gpu, options);
        let slot: Slot = {
            let mut entries = self.entries.lock().expect("cache poisoned");
            // Expire an idle entry before reusing it (in-flight slots are
            // exempt: someone is still waiting on them).
            if let Some(ttl) = self.policy.ttl {
                let expired = entries
                    .get(&key)
                    .is_some_and(|e| e.slot.get().is_some() && e.touched.elapsed() > ttl);
                if expired {
                    entries.remove(&key);
                    self.evicted_ttl.fetch_add(1, Ordering::Relaxed);
                }
            }
            let inserting = !entries.contains_key(&key);
            let tick = self.tick.fetch_add(1, Ordering::Relaxed);
            let entry = entries.entry(key.clone()).or_insert_with(|| Entry {
                slot: Arc::default(),
                tick,
                touched: Instant::now(),
            });
            entry.tick = tick;
            entry.touched = Instant::now();
            let slot = Arc::clone(&entry.slot);
            if inserting {
                // Opportunistic TTL sweep on insert: a caller that never
                // snapshots stats must not accumulate dead entries — the
                // moments the map grows are exactly when staleness matters.
                self.sweep_expired_locked(&mut entries);
            }
            if let Some(capacity) = self.policy.capacity {
                self.evict_lru_locked(&mut entries, capacity, &key);
            }
            slot
        };

        let mut outcome = CacheOutcome::Hit;
        let result = slot.get_or_init(|| {
            // Without a usable artifact, fall through to a fresh compile.
            if let Some(compiled) =
                store.and_then(|dir| self.try_artifact(&key, graph, gpu, options, dir))
            {
                outcome = CacheOutcome::ArtifactLoad;
                return Ok(Arc::new(compiled));
            }
            outcome = CacheOutcome::Compiled;
            let compiled = compile_hashed(graph, graph_hash, gpu, options).map(Arc::new);
            if let (Ok(compiled), Some(dir)) = (&compiled, store) {
                // Best-effort write-back: a full disk must not fail the
                // request the compile just served.
                let _ = std::fs::create_dir_all(dir);
                let _ = compiled.artifact().save(&key.artifact_path(dir));
            }
            compiled
        });
        match outcome {
            CacheOutcome::Hit => self.hits.fetch_add(1, Ordering::Relaxed),
            CacheOutcome::ArtifactLoad => self.artifact_loads.fetch_add(1, Ordering::Relaxed),
            CacheOutcome::Compiled => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        match result {
            Ok(compiled) => Ok((Arc::clone(compiled), outcome)),
            Err(e) => Err(e.clone()),
        }
    }

    /// Attempts to serve `key` from the artifact store. Any failure short of
    /// "file simply absent" counts one artifact reject; none panic.
    fn try_artifact(
        &self,
        key: &CacheKey,
        graph: &Graph,
        gpu: &Gpu,
        options: &CompilerOptions,
        dir: &Path,
    ) -> Option<CompiledGraph> {
        let artifact = match CompiledArtifact::load(&key.artifact_path(dir)) {
            Ok(artifact) => artifact,
            Err(ArtifactError::Io(e)) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.artifact_rejects.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match compile_from_artifact_hashed(graph, key.graph_hash, gpu, options, artifact) {
            Ok(compiled) => Some(compiled),
            Err(_) => {
                self.artifact_rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Evicts least-recently-used *completed* entries until at most
    /// `capacity` entries remain. `keep` (the entry just touched) and
    /// in-flight slots are never evicted, so the map may transiently exceed
    /// the bound while compiles overlap.
    fn evict_lru_locked(
        &self,
        entries: &mut HashMap<CacheKey, Entry>,
        capacity: usize,
        keep: &CacheKey,
    ) {
        while entries.len() > capacity.max(1) {
            let victim = entries
                .iter()
                .filter(|(k, e)| *k != keep && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    entries.remove(&k);
                    self.evicted_capacity.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // everything else is in flight
            }
        }
    }

    /// Expires every completed entry that has idled past the TTL. Called by
    /// the engine when statistics are snapshotted, and opportunistically
    /// whenever an insert grows the map (so a stats-free caller doesn't
    /// accumulate dead entries); a no-op without a TTL policy.
    pub fn evict_expired(&self) -> usize {
        let mut entries = self.entries.lock().expect("cache poisoned");
        self.sweep_expired_locked(&mut entries)
    }

    /// [`CompiledCache::evict_expired`] under an already-held lock. The entry
    /// just touched by the caller is naturally exempt (its `touched` is
    /// fresh); in-flight slots are never expired.
    fn sweep_expired_locked(&self, entries: &mut HashMap<CacheKey, Entry>) -> usize {
        let Some(ttl) = self.policy.ttl else { return 0 };
        let expired: Vec<CacheKey> = entries
            .iter()
            .filter(|(_, e)| e.slot.get().is_some() && e.touched.elapsed() > ttl)
            .map(|(k, _)| k.clone())
            .collect();
        let n = expired.len();
        for k in expired {
            entries.remove(&k);
        }
        self.evicted_ttl.fetch_add(n, Ordering::Relaxed);
        n
    }

    /// Evicts every entry whose structural hash is in `graph_hashes` — the
    /// engine's `unload`. Removes in-flight entries too (waiters on the
    /// orphaned slot still receive their result). Returns how many entries
    /// were dropped.
    pub fn evict_model(&self, graph_hashes: &[u64]) -> usize {
        let mut entries = self.entries.lock().expect("cache poisoned");
        let victims: Vec<CacheKey> = entries
            .keys()
            .filter(|k| graph_hashes.contains(&k.graph_hash))
            .cloned()
            .collect();
        let n = victims.len();
        for k in victims {
            entries.remove(&k);
        }
        self.evicted_unload.fetch_add(n, Ordering::Relaxed);
        n
    }

    /// Number of successfully compiled graphs held (in-flight and failed
    /// slots excluded).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("cache poisoned")
            .values()
            .filter(|e| matches!(e.slot.get(), Some(Ok(_))))
            .count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            artifact_loads: self.artifact_loads.load(Ordering::Relaxed),
            artifact_rejects: self.artifact_rejects.load(Ordering::Relaxed),
            evicted_ttl: self.evicted_ttl.load(Ordering::Relaxed),
            evicted_capacity: self.evicted_capacity.load(Ordering::Relaxed),
            evicted_unload: self.evicted_unload.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached graph (e.g. after a device spec change in tests).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidet_graph::{GraphBuilder, Tensor};

    fn model(hidden: i64, name: &str) -> Graph {
        let mut g = GraphBuilder::new(name);
        let x = g.input("x", &[4, 8]);
        let w = g.constant(Tensor::randn(&[8, hidden], 1));
        let y = g.matmul(x, w);
        let y = g.relu(y);
        g.output(y).build()
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hidet-cache-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_compile_is_a_hit() {
        let cache = CompiledCache::new();
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        let (a, first) = cache.get_or_compile(&model(16, "m"), &gpu, &opts).unwrap();
        let (b, second) = cache.get_or_compile(&model(16, "m"), &gpu, &opts).unwrap();
        assert_eq!(first, CacheOutcome::Compiled);
        assert_eq!(second, CacheOutcome::Hit);
        assert!(second.is_hit());
        assert!(Arc::ptr_eq(&a, &b));
        let counters = cache.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn same_structure_different_name_shares_entry() {
        let cache = CompiledCache::new();
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        cache
            .get_or_compile(&model(16, "alpha"), &gpu, &opts)
            .unwrap();
        let (_, outcome) = cache
            .get_or_compile(&model(16, "beta"), &gpu, &opts)
            .unwrap();
        assert!(outcome.is_hit(), "names are not structure");
    }

    #[test]
    fn different_structure_or_options_miss() {
        let cache = CompiledCache::new();
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        cache.get_or_compile(&model(16, "m"), &gpu, &opts).unwrap();
        let (_, outcome) = cache.get_or_compile(&model(32, "m"), &gpu, &opts).unwrap();
        assert!(!outcome.is_hit(), "different hidden width must recompile");
        let ablated = CompilerOptions {
            disable_double_buffering: true,
            ..CompilerOptions::quick()
        };
        let (_, outcome) = cache
            .get_or_compile(&model(16, "m"), &gpu, &ablated)
            .unwrap();
        assert!(!outcome.is_hit(), "different options must recompile");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn different_device_misses() {
        let cache = CompiledCache::new();
        let opts = CompilerOptions::quick();
        cache
            .get_or_compile(&model(16, "m"), &Gpu::default(), &opts)
            .unwrap();
        let tiny = Gpu::new(hidet_sim::GpuSpec::tiny());
        let (_, outcome) = cache.get_or_compile(&model(16, "m"), &tiny, &opts).unwrap();
        assert!(!outcome.is_hit(), "kernels are device-specific");
    }

    #[test]
    fn artifact_store_round_trips_across_cache_instances() {
        let store = temp_store("roundtrip");
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        let graph = model(16, "m");
        let hash = graph.structural_hash();

        // "Process" 1 compiles fresh and writes the artifact.
        let first = CompiledCache::new();
        let (_, outcome) = first
            .get_or_compile_hashed(&graph, hash, &gpu, &opts, Some(&store))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Compiled);
        assert_eq!(std::fs::read_dir(&store).unwrap().count(), 1);

        // "Process" 2 (a fresh cache) rebuilds from disk: no fresh compile.
        let second = CompiledCache::new();
        let (compiled, outcome) = second
            .get_or_compile_hashed(&graph, hash, &gpu, &opts, Some(&store))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::ArtifactLoad);
        assert!(compiled.from_artifact());
        assert_eq!(compiled.tuning_trials(), 0);
        let counters = second.counters();
        assert_eq!(counters.misses, 0, "warm store must avoid fresh compiles");
        assert_eq!(counters.artifact_loads, 1);
        assert_eq!(counters.artifact_rejects, 0);

        // Third lookup in the same cache is a plain memory hit.
        let (_, outcome) = second
            .get_or_compile_hashed(&graph, hash, &gpu, &opts, Some(&store))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn corrupted_artifact_falls_back_to_fresh_compile() {
        let store = temp_store("corrupt");
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        let graph = model(16, "m");
        let hash = graph.structural_hash();
        let key = CacheKey::from_graph_hash(hash, &gpu, &opts);

        std::fs::create_dir_all(&store).unwrap();
        for garbage in ["", "not json", "{\"version\": 99}"] {
            std::fs::write(key.artifact_path(&store), garbage).unwrap();
            let cache = CompiledCache::new();
            let (_, outcome) = cache
                .get_or_compile_hashed(&graph, hash, &gpu, &opts, Some(&store))
                .unwrap();
            assert_eq!(outcome, CacheOutcome::Compiled, "{garbage:?}");
            assert_eq!(cache.counters().artifact_rejects, 1, "{garbage:?}");
        }
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        let cache = CompiledCache::with_policy(EvictionPolicy {
            capacity: Some(2),
            ttl: None,
        });
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        cache.get_or_compile(&model(16, "a"), &gpu, &opts).unwrap();
        cache.get_or_compile(&model(32, "b"), &gpu, &opts).unwrap();
        // Touch "a" so "b" becomes the LRU victim.
        cache.get_or_compile(&model(16, "a"), &gpu, &opts).unwrap();
        cache.get_or_compile(&model(48, "c"), &gpu, &opts).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evicted_capacity, 1);
        // "a" survived (hit); "b" was evicted (fresh compile again).
        let (_, a) = cache.get_or_compile(&model(16, "a"), &gpu, &opts).unwrap();
        assert!(a.is_hit(), "recently used entry must survive");
        let (_, b) = cache.get_or_compile(&model(32, "b"), &gpu, &opts).unwrap();
        assert_eq!(b, CacheOutcome::Compiled, "LRU entry must recompile");
    }

    #[test]
    fn ttl_expires_idle_entries() {
        let cache = CompiledCache::with_policy(EvictionPolicy {
            capacity: None,
            ttl: Some(Duration::ZERO),
        });
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        cache.get_or_compile(&model(16, "m"), &gpu, &opts).unwrap();
        assert_eq!(cache.len(), 1);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(cache.evict_expired(), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.counters().evicted_ttl, 1);
        // The evicted key recompiles transparently (and expires again at
        // lookup time without an explicit sweep).
        std::thread::sleep(Duration::from_millis(2));
        let (_, outcome) = cache.get_or_compile(&model(16, "m"), &gpu, &opts).unwrap();
        assert_eq!(outcome, CacheOutcome::Compiled);
    }

    #[test]
    fn insert_sweeps_expired_entries_without_a_stats_call() {
        // A caller that never snapshots stats (never calls evict_expired
        // explicitly) must still shed dead entries: the insert of an
        // unrelated key sweeps them.
        let cache = CompiledCache::with_policy(EvictionPolicy {
            capacity: None,
            ttl: Some(Duration::ZERO),
        });
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        cache.get_or_compile(&model(16, "a"), &gpu, &opts).unwrap();
        cache.get_or_compile(&model(32, "b"), &gpu, &opts).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        // Fresh key "c": its insert sweeps the two idle entries.
        cache.get_or_compile(&model(48, "c"), &gpu, &opts).unwrap();
        assert_eq!(cache.len(), 1, "only the fresh entry survives");
        assert_eq!(cache.counters().evicted_ttl, 2);
    }

    #[test]
    fn concurrent_compiles_of_one_graph_coalesce_to_a_single_compile() {
        // Many threads race the same key — including through the compiler's
        // own parallel per-group fan-out — and exactly one fresh compile may
        // run; everyone else must block on the in-flight slot and share the
        // result.
        let cache = Arc::new(CompiledCache::new());
        let gpu = Gpu::default();
        // Tuned options exercise the parallel compile+tune pipeline inside
        // the single coalesced compile.
        let opts = CompilerOptions::tuned();
        let graph = Arc::new(model(16, "m"));
        let hash = graph.structural_hash();
        let compiled: Vec<Arc<CompiledGraph>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let graph = Arc::clone(&graph);
                    let gpu = gpu.clone();
                    let opts = opts.clone();
                    scope.spawn(move || {
                        let (compiled, _) = cache
                            .get_or_compile_hashed(&graph, hash, &gpu, &opts, None)
                            .unwrap();
                        compiled
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let counters = cache.counters();
        assert_eq!(counters.misses, 1, "exactly one thread compiles");
        assert_eq!(counters.hits, 7, "everyone else coalesces");
        for c in &compiled {
            assert!(Arc::ptr_eq(c, &compiled[0]), "all threads share one graph");
        }
    }

    #[test]
    fn unload_evicts_by_graph_hash() {
        let cache = CompiledCache::new();
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        let a = model(16, "a");
        let b = model(32, "b");
        cache.get_or_compile(&a, &gpu, &opts).unwrap();
        cache.get_or_compile(&b, &gpu, &opts).unwrap();
        assert_eq!(cache.evict_model(&[a.structural_hash()]), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters().evicted_unload, 1);
        let (_, outcome) = cache.get_or_compile(&b, &gpu, &opts).unwrap();
        assert!(outcome.is_hit(), "other models must be untouched");
    }
}
