//! Artifact-store housekeeping: garbage collection of compiled-artifact
//! files.
//!
//! A long-lived artifact directory accretes files: models get unloaded,
//! graphs change structure (a new `structural_hash` means a new file while
//! the old one lingers), and a crashed writer can leave `*.json.tmp`
//! residue behind. None of that is ever read again, but it costs disk and
//! makes the store's contents misleading. [`ArtifactStore`] wraps a store
//! directory with two removal policies:
//!
//! * [`ArtifactStore::remove_model`] deletes exactly the files belonging to
//!   a set of graph hashes — what [`crate::ModelHandle::unload`] uses to
//!   drop an unloaded model's artifacts;
//! * [`ArtifactStore::gc`] deletes every artifact file whose graph hash is
//!   **not** in a caller-supplied live set (plus temp-file residue) — the
//!   sweep an operator runs against the full list of models they intend to
//!   keep.
//!
//! Both parse hashes out of the file *names* (the
//! [`crate::CacheKey::artifact_path`] format:
//! `artifact-<graph_hash>-<options>-<device>.json`), never file contents,
//! so a sweep is O(directory) with no JSON parsing; unrecognized file names
//! are always left alone.

use std::path::{Path, PathBuf};

/// A compiled-artifact directory with garbage-collection helpers. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Wraps `dir` (which need not exist yet — sweeps of a missing
    /// directory remove nothing).
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore { dir: dir.into() }
    }

    /// The wrapped directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Removes the artifact files of exactly the given graph hashes (every
    /// device and option variant). Returns how many files were removed.
    pub fn remove_model(&self, graph_hashes: &[u64]) -> usize {
        self.sweep(|hash| graph_hashes.contains(&hash))
    }

    /// Removes every artifact file whose graph hash is **not** in
    /// `live_graph_hashes`, plus any `*.json.tmp` writer residue. Returns
    /// how many files were removed.
    ///
    /// The live set must cover every model (at every batch size) the caller
    /// wants to keep warm-startable — a hash absent from it is treated as
    /// orphaned.
    pub fn gc(&self, live_graph_hashes: &[u64]) -> usize {
        self.sweep(|hash| !live_graph_hashes.contains(&hash))
    }

    /// Removes artifact files whose parsed graph hash satisfies `victim`,
    /// and all temp residue. Unparsable names are kept.
    fn sweep(&self, victim: impl Fn(u64) -> bool) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0; // missing or unreadable directory: nothing to collect
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let stale_tmp = name.starts_with("artifact-") && name.ends_with(".json.tmp");
            let doomed = stale_tmp || artifact_graph_hash(name).is_some_and(&victim);
            if doomed && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

/// Parses the graph hash out of an `artifact-<hash>-<options>-<device>.json`
/// file name; `None` for anything else.
fn artifact_graph_hash(file_name: &str) -> Option<u64> {
    let rest = file_name.strip_prefix("artifact-")?;
    let rest = rest.strip_suffix(".json")?;
    let mut parts = rest.split('-');
    let hash = parts.next()?;
    // The key format has exactly three '-'-separated fields.
    if hash.len() != 16 || parts.count() != 2 {
        return None;
    }
    u64::from_str_radix(hash, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheKey;
    use hidet::CompilerOptions;
    use hidet_sim::Gpu;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hidet-artifact-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn touch(dir: &Path, name: &str) {
        std::fs::write(dir.join(name), "{}").unwrap();
    }

    #[test]
    fn parses_real_cache_key_file_names() {
        let key =
            CacheKey::from_graph_hash(0xdead_beef, &Gpu::default(), &CompilerOptions::quick());
        let path = key.artifact_path(Path::new("store"));
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        assert_eq!(artifact_graph_hash(&name), Some(0xdead_beef));
    }

    #[test]
    fn unrecognized_names_are_never_parsed() {
        for name in [
            "artifact.json",
            "artifact-zzzz.json",
            "artifact-00000000deadbeef.json",       // missing fields
            "artifact-00000000deadbeef-1-2-3.json", // too many fields
            "records.json",
            "artifact-00000000deadbee-1-0000000000000002.json", // 15-digit hash
        ] {
            assert_eq!(artifact_graph_hash(name), None, "{name}");
        }
    }

    #[test]
    fn remove_model_deletes_exactly_the_named_hashes() {
        let dir = temp_dir("remove");
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        let doomed = CacheKey::from_graph_hash(0x1111, &gpu, &opts).artifact_path(&dir);
        let kept = CacheKey::from_graph_hash(0x2222, &gpu, &opts).artifact_path(&dir);
        std::fs::write(&doomed, "{}").unwrap();
        std::fs::write(&kept, "{}").unwrap();
        touch(&dir, "unrelated.txt");

        let store = ArtifactStore::new(&dir);
        assert_eq!(store.remove_model(&[0x1111]), 1);
        assert!(!doomed.exists());
        assert!(kept.exists());
        assert!(dir.join("unrelated.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_live_hashes_and_sweeps_residue() {
        let dir = temp_dir("gc");
        let gpu = Gpu::default();
        let opts = CompilerOptions::quick();
        let live = CacheKey::from_graph_hash(0xaaaa, &gpu, &opts).artifact_path(&dir);
        let orphan = CacheKey::from_graph_hash(0xbbbb, &gpu, &opts).artifact_path(&dir);
        std::fs::write(&live, "{}").unwrap();
        std::fs::write(&orphan, "{}").unwrap();
        // Crashed-writer residue is always swept.
        let tmp = orphan.with_extension("json.tmp");
        std::fs::write(&tmp, "partial").unwrap();
        touch(&dir, "README.md");

        let store = ArtifactStore::new(&dir);
        assert_eq!(store.gc(&[0xaaaa]), 2);
        assert!(live.exists());
        assert!(!orphan.exists());
        assert!(!tmp.exists());
        assert!(dir.join("README.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_collects_nothing() {
        let store = ArtifactStore::new("/nonexistent/hidet/store");
        assert_eq!(store.gc(&[]), 0);
        assert_eq!(store.remove_model(&[1]), 0);
    }
}
