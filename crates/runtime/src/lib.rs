//! # hidet-runtime — a sharded serving engine over the Hidet compiler
//!
//! The paper's headline economics — cheap tuning amortized over many runs —
//! only pay off if compiled artifacts are actually *reused*. This crate turns
//! the one-shot `compile + evaluate` pipeline of `hidet` into a long-lived
//! inference service over a **pool of simulated devices** (DESIGN.md §3–§5):
//!
//! * **explicit model lifecycle** ([`Engine::register`] → [`ModelSpec`] →
//!   [`ModelHandle`]): a handle owns every per-model operation — `infer`,
//!   `submit`, `warmup`, `unload` — and requests are built with the
//!   [`Request`] builder (inputs + priority + deadline + per-request
//!   timeout);
//! * **compiled-graph cache with cross-process persistence**
//!   ([`CompiledCache`]): compiled graphs are keyed by
//!   [`hidet_graph::Graph::structural_hash`] × device fingerprint × compiler
//!   options, so repeat requests — even for the same structure registered
//!   under a different name — skip compilation entirely, and homogeneous
//!   shards share one compiled graph. With an artifact store
//!   ([`EngineConfig::artifact_store`]) each compile persists its
//!   [`hidet::CompiledArtifact`] to disk, and a **warm restart rebuilds
//!   every previously served plan with zero fresh compiles and zero tuning
//!   trials**;
//! * **cache eviction** ([`EngineConfig::compiled_capacity`],
//!   [`EngineConfig::compiled_ttl`], [`ModelHandle::unload`]): capacity
//!   pressure evicts LRU entries, idle entries expire, unloaded models are
//!   dropped — all counted in [`StatsSnapshot`], all recompiling (or
//!   re-loading their artifact) transparently on next use;
//! * **priority/deadline-aware dynamic batching** ([`ModelHandle::submit`]):
//!   same-model, same-class requests are coalesced along the model zoo's
//!   batch dimension; the dispatcher always serves the highest non-empty
//!   [`Priority`] class, and requests whose deadline passes while queued are
//!   rejected with [`EngineError::DeadlineExceeded`] without ever reaching a
//!   worker;
//! * **multi-GPU sharding** ([`EngineConfig::devices`]): formed batches are
//!   placed on the shard with the least estimated queue delay
//!   ([`hidet_sim::estimated_queue_delay`] over analytic latency estimates),
//!   so throughput scales near-linearly with homogeneous devices and a
//!   cut-down device in a mixed pool naturally receives less traffic;
//! * **admission control** ([`EngineConfig::max_inflight`],
//!   [`EngineConfig::admission_delay_bound`]): overload sheds requests with
//!   [`EngineError::QueueFull`], best-effort first — high-priority traffic
//!   is never shed while lower classes are admitted;
//! * **persistent tuning records** ([`hidet_sched::TuningCache`], wired
//!   through `CompilerOptions::tuning_cache`): tuned matmul schedules
//!   round-trip through a JSON file, so a cold process warm-starts with zero
//!   tuning trials — flushed on shutdown *and* from `Drop`, so a panicking
//!   caller doesn't lose them;
//! * **observability** ([`ServerStats`]): cache hit/miss/artifact/eviction
//!   counters, tuning trials run vs. saved, per-priority p50/p95 simulated
//!   sojourn latency, per-shard dispatch counters ([`ShardSnapshot`]) and
//!   cluster throughput, consumed by the `serving_throughput`,
//!   `serving_sharded` and `serving_warm_restart` bench binaries.
//!
//! ## Quickstart
//!
//! ```
//! use hidet_runtime::{Engine, EngineConfig, ModelSpec, Request};
//! use hidet_graph::{GraphBuilder, Tensor};
//!
//! let engine = Engine::new(EngineConfig::quick())?;
//! let mlp = engine.register(ModelSpec::new("mlp", |batch| {
//!     let mut g = GraphBuilder::new("mlp");
//!     let x = g.input("x", &[batch, 16]);
//!     let w = g.constant(Tensor::randn(&[16, 4], 1));
//!     let y = g.matmul(x, w);
//!     let y = g.relu(y);
//!     g.output(y).build()
//! }))?;
//!
//! let result = mlp.infer(Request::new(vec![vec![0.5; 16]]))?;
//! assert_eq!(result.outputs[0].len(), 4);
//!
//! // Same structure, second request: served from the compiled-graph cache.
//! let again = mlp.infer(Request::new(vec![vec![0.25; 16]]))?;
//! assert!(again.compile_cache_hit);
//!
//! // Unload when done: compiled graphs evicted, counters updated.
//! mlp.unload();
//! # Ok::<(), hidet_runtime::EngineError>(())
//! ```
//!
//! ## Sharding, priorities and the artifact store
//!
//! ```
//! use hidet_runtime::{Engine, EngineConfig, ModelSpec, Priority, Request};
//! use hidet_graph::{GraphBuilder, Tensor};
//! use hidet_sim::GpuSpec;
//! use std::time::Duration;
//!
//! # let store_dir = std::env::temp_dir().join(format!("hidet-doc-{}", std::process::id()));
//! let engine = Engine::new(EngineConfig {
//!     devices: vec![GpuSpec::rtx3090(), GpuSpec::rtx3090()], // two shards
//!     admission_delay_bound: Some(Duration::from_millis(50)),
//!     artifact_store: Some(store_dir.clone()), // compiles persist across restarts
//!     ..EngineConfig::quick()
//! })?;
//! let mlp = engine.register(ModelSpec::new("mlp", |batch| {
//!     let mut g = GraphBuilder::new("mlp");
//!     let x = g.input("x", &[batch, 16]);
//!     let w = g.constant(Tensor::randn(&[16, 4], 1));
//!     let y = g.matmul(x, w);
//!     g.output(y).build()
//! }))?;
//!
//! let urgent = mlp.infer(
//!     Request::new(vec![vec![0.5; 16]])
//!         .with_priority(Priority::High)
//!         .with_timeout(Duration::from_secs(5)),
//! )?;
//! assert_eq!(urgent.priority, Priority::High);
//! assert_eq!(engine.stats().shards.len(), 2);
//! # drop(engine);
//! # let _ = std::fs::remove_dir_all(&store_dir);
//! # Ok::<(), hidet_runtime::EngineError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub(crate) mod shard;
pub mod stats;
pub mod store;

pub use cache::{CacheCounters, CacheKey, CacheOutcome, CompiledCache, EvictionPolicy};
pub use engine::{
    AdmissionSignal, Engine, EngineConfig, EngineError, InferenceResult, ModelHandle, ModelSpec,
    Priority, Request, Ticket,
};
pub use shard::ShardSnapshot;
pub use stats::{
    DecodeShardSnapshot, DecodeStatsSnapshot, IngressStatsSnapshot, LatencyReservoir,
    PriorityClassStats, ServerStats, StatsSnapshot,
};
pub use store::ArtifactStore;
