//! # hidet-runtime — a serving engine over the Hidet compiler
//!
//! The paper's headline economics — cheap tuning amortized over many runs —
//! only pay off if compiled artifacts are actually *reused*. This crate turns
//! the one-shot `compile + evaluate` pipeline of `hidet` into a long-lived
//! inference service (DESIGN.md §3):
//!
//! * **model registry + compiled-graph cache** ([`Engine::load`],
//!   [`CompiledCache`]): compiled graphs are keyed by
//!   [`hidet_graph::Graph::structural_hash`] × device fingerprint × compiler
//!   options, so repeat requests — even for the same structure registered
//!   under a different name — skip compilation entirely;
//! * **dynamic batching** ([`Engine::submit`]): same-model requests are
//!   coalesced along the model zoo's batch dimension and dispatched to a
//!   worker pool over the simulated GPU, amortizing per-kernel dispatch
//!   overhead and reclaiming utilization lost at batch 1;
//! * **persistent tuning records** ([`hidet_sched::TuningCache`], wired
//!   through `CompilerOptions::tuning_cache`): tuned matmul schedules
//!   round-trip through a JSON file, so a cold process warm-starts with zero
//!   tuning trials;
//! * **observability** ([`ServerStats`]): cache hit/miss counters, tuning
//!   trials run vs. saved, p50/p95 simulated latency and simulated
//!   throughput, consumed by `crates/bench/src/bin/serving_throughput.rs`.
//!
//! ## Quickstart
//!
//! ```
//! use hidet_runtime::{Engine, EngineConfig};
//! use hidet_graph::{GraphBuilder, Tensor};
//!
//! let engine = Engine::new(EngineConfig::quick())?;
//! engine.load("mlp", |batch| {
//!     let mut g = GraphBuilder::new("mlp");
//!     let x = g.input("x", &[batch, 16]);
//!     let w = g.constant(Tensor::randn(&[16, 4], 1));
//!     let y = g.matmul(x, w);
//!     let y = g.relu(y);
//!     g.output(y).build()
//! });
//!
//! let result = engine.infer("mlp", vec![vec![0.5; 16]])?;
//! assert_eq!(result.outputs[0].len(), 4);
//!
//! // Same structure, second request: served from the compiled-graph cache.
//! let again = engine.infer("mlp", vec![vec![0.25; 16]])?;
//! assert!(again.compile_cache_hit);
//! # Ok::<(), hidet_runtime::EngineError>(())
//! ```

pub mod cache;
pub mod engine;
pub mod stats;

pub use cache::{CacheKey, CompiledCache};
pub use engine::{Engine, EngineConfig, EngineError, InferenceResult, Ticket};
pub use stats::{ServerStats, StatsSnapshot};
