//! Server-side observability: counters for every cache layer plus a latency
//! distribution, cheap enough to update on the hot path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many latency samples the reservoir keeps. Past this, uniform
/// reservoir sampling replaces old samples so memory stays bounded while
/// percentiles remain representative of the whole run.
const LATENCY_RESERVOIR_CAP: usize = 4096;

/// Bounded uniform sample of per-request latencies (Vitter's algorithm R,
/// with a cheap deterministic xorshift in place of a real RNG — percentile
/// estimation needs uniformity, not unpredictability).
#[derive(Debug)]
pub(crate) struct LatencyReservoir {
    samples: Vec<f64>,
    seen: u64,
    rng: u64,
}

impl Default for LatencyReservoir {
    fn default() -> LatencyReservoir {
        LatencyReservoir {
            samples: Vec::new(),
            seen: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl LatencyReservoir {
    fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < LATENCY_RESERVOIR_CAP {
            self.samples.push(value);
            return;
        }
        // Replace a random slot with probability cap/seen.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let j = self.rng % self.seen;
        if (j as usize) < LATENCY_RESERVOIR_CAP {
            self.samples[j as usize] = value;
        }
    }
}

/// Live statistics of one [`crate::Engine`].
///
/// Counters are atomics (hot-path increments never contend); latencies go
/// through a bounded reservoir so a long-lived server neither grows without
/// bound nor pays more than a ~4k-element sort per snapshot. All latencies
/// are *simulated* device seconds — the quantity the paper's evaluation
/// reports — not host wall-clock.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests completed successfully.
    pub(crate) requests: AtomicUsize,
    /// Requests rejected (unknown model, bad input, compile failure).
    pub(crate) failures: AtomicUsize,
    /// Batches dispatched to workers.
    pub(crate) batches: AtomicUsize,
    /// Tuning trials actually executed by compiles this engine ran.
    pub(crate) tuning_trials_run: AtomicUsize,
    /// Tuning trials avoided thanks to persisted tuning records.
    pub(crate) tuning_trials_saved: AtomicUsize,
    /// Simulated tuning seconds spent (scaled by 1e6 for atomic storage).
    pub(crate) tuning_micros_run: AtomicU64,
    /// Simulated tuning seconds saved by records (scaled by 1e6).
    pub(crate) tuning_micros_saved: AtomicU64,
    /// Total simulated device-seconds across all dispatched batches
    /// (scaled by 1e9 for atomic storage).
    pub(crate) simulated_nanos: AtomicU64,
    /// Per-request simulated latency sample.
    pub(crate) latencies: Mutex<LatencyReservoir>,
}

impl ServerStats {
    pub(crate) fn add_tuning_run(&self, trials: usize, seconds: f64) {
        self.tuning_trials_run.fetch_add(trials, Ordering::Relaxed);
        self.tuning_micros_run
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_tuning_saved(&self, trials: usize, seconds: f64) {
        self.tuning_trials_saved
            .fetch_add(trials, Ordering::Relaxed);
        self.tuning_micros_saved
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, batch_size: usize, simulated_seconds: f64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(batch_size, Ordering::Relaxed);
        self.simulated_nanos
            .fetch_add((simulated_seconds * 1e9) as u64, Ordering::Relaxed);
        let mut lat = self.latencies.lock().expect("stats poisoned");
        // Every request in the batch observes the batch's device latency.
        for _ in 0..batch_size {
            lat.push(simulated_seconds);
        }
    }

    /// A consistent copy of the current statistics. The compiled-graph cache
    /// owns its own hit/miss counters (it is the single source of truth —
    /// see [`crate::CompiledCache::counters`]); the engine passes them in.
    pub fn snapshot(
        &self,
        compile_cache_hits: usize,
        compile_cache_misses: usize,
    ) -> StatsSnapshot {
        let mut latencies = self
            .latencies
            .lock()
            .expect("stats poisoned")
            .samples
            .clone();
        latencies.sort_by(f64::total_cmp);
        let percentile = |p: f64| -> f64 {
            if latencies.is_empty() {
                0.0
            } else {
                let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
                latencies[idx]
            }
        };
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let simulated_seconds = self.simulated_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        StatsSnapshot {
            requests,
            failures: self.failures.load(Ordering::Relaxed),
            batches,
            compile_cache_hits,
            compile_cache_misses,
            tuning_trials_run: self.tuning_trials_run.load(Ordering::Relaxed),
            tuning_trials_saved: self.tuning_trials_saved.load(Ordering::Relaxed),
            tuning_seconds_run: self.tuning_micros_run.load(Ordering::Relaxed) as f64 / 1e6,
            tuning_seconds_saved: self.tuning_micros_saved.load(Ordering::Relaxed) as f64 / 1e6,
            total_simulated_seconds: simulated_seconds,
            p50_latency_seconds: percentile(0.50),
            p95_latency_seconds: percentile(0.95),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            simulated_throughput_rps: if simulated_seconds > 0.0 {
                requests as f64 / simulated_seconds
            } else {
                0.0
            },
        }
    }
}

/// Point-in-time view of [`ServerStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests completed successfully.
    pub requests: usize,
    /// Requests rejected with an error.
    pub failures: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Compiled-graph cache hits.
    pub compile_cache_hits: usize,
    /// Compiled-graph cache misses.
    pub compile_cache_misses: usize,
    /// Tuning trials executed.
    pub tuning_trials_run: usize,
    /// Tuning trials saved by persisted records.
    pub tuning_trials_saved: usize,
    /// Simulated tuning seconds spent.
    pub tuning_seconds_run: f64,
    /// Simulated tuning seconds saved by persisted records.
    pub tuning_seconds_saved: f64,
    /// Total simulated device time across batches, seconds.
    pub total_simulated_seconds: f64,
    /// Median per-request simulated latency, seconds.
    pub p50_latency_seconds: f64,
    /// 95th-percentile per-request simulated latency, seconds.
    pub p95_latency_seconds: f64,
    /// Average requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Requests per simulated device-second.
    pub simulated_throughput_rps: f64,
}

impl StatsSnapshot {
    /// Compact one-line rendering for logs and benches.
    pub fn summary(&self) -> String {
        format!(
            "{} req in {} batches (mean {:.2}/batch) | compile cache {}/{} hit | \
             {} trials run, {} saved | p50 {:.1} us, p95 {:.1} us | {:.0} req/s (simulated)",
            self.requests,
            self.batches,
            self.mean_batch_size,
            self.compile_cache_hits,
            self.compile_cache_hits + self.compile_cache_misses,
            self.tuning_trials_run,
            self.tuning_trials_saved,
            self.p50_latency_seconds * 1e6,
            self.p95_latency_seconds * 1e6,
            self.simulated_throughput_rps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_throughput() {
        let stats = ServerStats::default();
        stats.record_batch(4, 0.004); // 4 requests at 4 ms
        stats.record_batch(1, 0.001); // 1 request at 1 ms
        let snap = stats.snapshot(0, 0);
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_size - 2.5).abs() < 1e-9);
        assert!((snap.p50_latency_seconds - 0.004).abs() < 1e-9);
        assert!((snap.p95_latency_seconds - 0.004).abs() < 1e-9);
        assert!((snap.total_simulated_seconds - 0.005).abs() < 1e-6);
        assert!((snap.simulated_throughput_rps - 1000.0).abs() < 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let snap = ServerStats::default().snapshot(0, 0);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p50_latency_seconds, 0.0);
        assert_eq!(snap.simulated_throughput_rps, 0.0);
        assert_eq!(snap.mean_batch_size, 0.0);
    }

    #[test]
    fn latency_reservoir_stays_bounded() {
        let stats = ServerStats::default();
        for i in 0..20_000 {
            stats.record_batch(1, 0.001 * (1.0 + (i % 10) as f64));
        }
        let held = stats.latencies.lock().unwrap().samples.len();
        assert!(held <= super::LATENCY_RESERVOIR_CAP, "{held}");
        let snap = stats.snapshot(0, 0);
        assert_eq!(snap.requests, 20_000);
        // Percentiles still estimate the underlying uniform 1..=10 ms mix.
        assert!(snap.p50_latency_seconds >= 0.003 && snap.p50_latency_seconds <= 0.008);
        assert!(snap.p95_latency_seconds >= 0.008);
    }

    #[test]
    fn tuning_accounting() {
        let stats = ServerStats::default();
        stats.add_tuning_run(100, 20.0);
        stats.add_tuning_saved(250, 50.0);
        let snap = stats.snapshot(0, 0);
        assert_eq!(snap.tuning_trials_run, 100);
        assert_eq!(snap.tuning_trials_saved, 250);
        assert!((snap.tuning_seconds_run - 20.0).abs() < 1e-6);
        assert!((snap.tuning_seconds_saved - 50.0).abs() < 1e-6);
    }
}
