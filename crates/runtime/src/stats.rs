//! Server-side observability: counters for every cache layer, per-priority
//! latency distributions and per-shard dispatch accounting, cheap enough to
//! update on the hot path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cache::CacheCounters;
use crate::engine::Priority;
use crate::shard::ShardSnapshot;

/// How many latency samples each reservoir keeps. Past this, uniform
/// reservoir sampling replaces old samples so memory stays bounded while
/// percentiles remain representative of the whole run.
const LATENCY_RESERVOIR_CAP: usize = 4096;

/// Bounded uniform sample of per-request latencies (Vitter's algorithm R,
/// with a cheap deterministic xorshift in place of a real RNG — percentile
/// estimation needs uniformity, not unpredictability). Shared by the
/// serving engine's sojourn distributions and the decode subsystem's
/// TTFT/inter-token distributions.
#[derive(Debug)]
pub struct LatencyReservoir {
    pub(crate) samples: Vec<f64>,
    seen: u64,
    rng: u64,
}

impl Default for LatencyReservoir {
    fn default() -> LatencyReservoir {
        LatencyReservoir {
            samples: Vec::new(),
            seen: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl LatencyReservoir {
    /// An empty reservoir.
    pub fn new() -> LatencyReservoir {
        LatencyReservoir::default()
    }

    /// Records one sample, replacing a uniformly random held sample once
    /// the cap is reached.
    pub fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < LATENCY_RESERVOIR_CAP {
            self.samples.push(value);
            return;
        }
        // Replace a random slot with probability cap/seen.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let j = self.rng % self.seen;
        if (j as usize) < LATENCY_RESERVOIR_CAP {
            self.samples[j as usize] = value;
        }
    }

    /// Samples currently held (bounded by the reservoir cap).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (`0.0..=1.0`) of the held samples; `0.0` when
    /// empty. Sorts a copy — snapshot-path cost, not hot-path.
    pub fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        percentile(&sorted, p)
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }
}

/// Live statistics of one [`crate::Engine`].
///
/// Counters are atomics (hot-path increments never contend); latencies go
/// through bounded per-priority reservoirs so a long-lived server neither
/// grows without bound nor pays more than a ~4k-element sort per snapshot.
/// All latencies are *simulated* seconds — per-request **sojourn** time,
/// i.e. the estimated shard queue delay at placement plus the executed
/// batch's device latency — the quantity priority scheduling actually
/// improves, not host wall-clock.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests completed successfully.
    pub(crate) requests: AtomicUsize,
    /// Requests rejected with any error (bad input, compile failure, shed,
    /// expired deadline, ...).
    pub(crate) failures: AtomicUsize,
    /// Requests shed by the admission controller ([`crate::EngineError::QueueFull`]).
    pub(crate) shed_requests: AtomicUsize,
    /// Requests rejected because their deadline expired before execution
    /// ([`crate::EngineError::DeadlineExceeded`]).
    pub(crate) deadline_expired: AtomicUsize,
    /// Batches dispatched to workers.
    pub(crate) batches: AtomicUsize,
    /// Tuning trials actually executed by compiles this engine ran.
    pub(crate) tuning_trials_run: AtomicUsize,
    /// Tuning trials avoided thanks to persisted tuning records.
    pub(crate) tuning_trials_saved: AtomicUsize,
    /// Simulated tuning seconds spent (scaled by 1e6 for atomic storage).
    pub(crate) tuning_micros_run: AtomicU64,
    /// Simulated tuning seconds saved by records (scaled by 1e6).
    pub(crate) tuning_micros_saved: AtomicU64,
    /// Artifact files removed by store GC (unload sweeps).
    pub(crate) artifact_gc_removed: AtomicUsize,
    /// Largest planned per-inference intermediate arena across compiled
    /// models, bytes (the memory planner's peak).
    pub(crate) planned_peak_bytes: AtomicUsize,
    /// Total simulated device-seconds across all dispatched batches
    /// (scaled by 1e9 for atomic storage).
    pub(crate) simulated_nanos: AtomicU64,
    /// Per-priority completed-request counters.
    pub(crate) class_requests: [AtomicUsize; Priority::COUNT],
    /// Per-priority shed counters (admission-control rejections).
    pub(crate) class_shed: [AtomicUsize; Priority::COUNT],
    /// Per-priority sojourn-latency samples.
    pub(crate) latencies: Mutex<[LatencyReservoir; Priority::COUNT]>,
}

impl ServerStats {
    pub(crate) fn add_tuning_run(&self, trials: usize, seconds: f64) {
        self.tuning_trials_run.fetch_add(trials, Ordering::Relaxed);
        self.tuning_micros_run
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_tuning_saved(&self, trials: usize, seconds: f64) {
        self.tuning_trials_saved
            .fetch_add(trials, Ordering::Relaxed);
        self.tuning_micros_saved
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
    }

    /// Accounts one executed batch: `device_seconds` is the batch's device
    /// latency (charged once), `sojourn_seconds` the per-request simulated
    /// latency including the shard queue delay at placement.
    pub(crate) fn record_batch(
        &self,
        class: Priority,
        batch_size: usize,
        device_seconds: f64,
        sojourn_seconds: f64,
    ) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(batch_size, Ordering::Relaxed);
        self.class_requests[class.index()].fetch_add(batch_size, Ordering::Relaxed);
        self.simulated_nanos
            .fetch_add((device_seconds * 1e9) as u64, Ordering::Relaxed);
        let mut reservoirs = self.latencies.lock().expect("stats poisoned");
        // Every request in the batch observes the batch's sojourn latency.
        for _ in 0..batch_size {
            reservoirs[class.index()].push(sojourn_seconds);
        }
    }

    pub(crate) fn count_artifact_gc(&self, removed: usize) {
        self.artifact_gc_removed
            .fetch_add(removed, Ordering::Relaxed);
    }

    /// Records one compiled model's planned arena size; the snapshot reports
    /// the maximum seen (the footprint one worker lane needs for the
    /// heaviest model).
    pub(crate) fn record_planned_peak(&self, bytes: usize) {
        self.planned_peak_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_shed(&self, class: Priority) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.shed_requests.fetch_add(1, Ordering::Relaxed);
        self.class_shed[class.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_deadline_expired(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent copy of the current statistics. The compiled-graph cache
    /// owns its own hit/miss/artifact/eviction counters (it is the single
    /// source of truth — see [`crate::CompiledCache::counters`]) and each
    /// shard owns its dispatch accounting; the engine passes both in.
    pub fn snapshot(&self, cache: CacheCounters, shards: Vec<ShardSnapshot>) -> StatsSnapshot {
        let (mut merged, by_class) = {
            let reservoirs = self.latencies.lock().expect("stats poisoned");
            let mut merged = Vec::new();
            let by_class: Vec<Vec<f64>> = reservoirs
                .iter()
                .map(|r| {
                    merged.extend_from_slice(&r.samples);
                    let mut s = r.samples.clone();
                    s.sort_by(f64::total_cmp);
                    s
                })
                .collect();
            (merged, by_class)
        };
        merged.sort_by(f64::total_cmp);
        let priorities = std::array::from_fn(|i| PriorityClassStats {
            priority: Priority::ALL[i],
            requests: self.class_requests[i].load(Ordering::Relaxed),
            shed_requests: self.class_shed[i].load(Ordering::Relaxed),
            p50_latency_seconds: percentile(&by_class[i], 0.50),
            p95_latency_seconds: percentile(&by_class[i], 0.95),
        });
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let simulated_seconds = self.simulated_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        // The pool finishes when its busiest shard does: cluster throughput
        // divides requests by that makespan, so it scales with device count
        // while single-device throughput (requests / total device seconds)
        // stays comparable across configurations.
        let makespan = shards.iter().map(|s| s.busy_seconds).fold(0.0f64, f64::max);
        StatsSnapshot {
            requests,
            failures: self.failures.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            batches,
            compile_cache_hits: cache.hits,
            compile_cache_misses: cache.misses,
            compiled_artifact_loads: cache.artifact_loads,
            compiled_artifact_rejects: cache.artifact_rejects,
            compiled_evicted_ttl: cache.evicted_ttl,
            compiled_evicted_capacity: cache.evicted_capacity,
            compiled_evicted_unload: cache.evicted_unload,
            artifact_gc_removed: self.artifact_gc_removed.load(Ordering::Relaxed),
            planned_peak_bytes: self.planned_peak_bytes.load(Ordering::Relaxed),
            tuning_trials_run: self.tuning_trials_run.load(Ordering::Relaxed),
            tuning_trials_saved: self.tuning_trials_saved.load(Ordering::Relaxed),
            tuning_seconds_run: self.tuning_micros_run.load(Ordering::Relaxed) as f64 / 1e6,
            tuning_seconds_saved: self.tuning_micros_saved.load(Ordering::Relaxed) as f64 / 1e6,
            total_simulated_seconds: simulated_seconds,
            makespan_seconds: makespan,
            p50_latency_seconds: percentile(&merged, 0.50),
            p95_latency_seconds: percentile(&merged, 0.95),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            simulated_throughput_rps: if simulated_seconds > 0.0 {
                requests as f64 / simulated_seconds
            } else {
                0.0
            },
            cluster_throughput_rps: if makespan > 0.0 {
                requests as f64 / makespan
            } else {
                0.0
            },
            priorities,
            shards,
            decode: None,
            ingress: None,
        }
    }
}

/// Token-level serving metrics of an attached autoregressive decode
/// subsystem (`hidet-decode`), surfaced through [`StatsSnapshot::decode`]
/// when a source is registered with `Engine::attach_decode_stats`.
///
/// All latencies are **simulated** seconds, like the rest of the snapshot:
/// time-to-first-token is measured from submission to the step that emitted
/// a sequence's first token, inter-token latency between consecutive emitted
/// tokens of one sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecodeStatsSnapshot {
    /// Generations completed (max-tokens reached, EOS, or client gone).
    pub sequences_completed: usize,
    /// Generations failed (bad prompt, expired deadline, KV exhaustion, ...).
    pub sequences_failed: usize,
    /// Tokens emitted to clients (prompt tokens excluded).
    pub tokens_generated: usize,
    /// Prompt tokens absorbed into KV caches (including recompute replays).
    pub prompt_tokens: usize,
    /// Engine steps executed (one batched forward pass each).
    pub steps: usize,
    /// Mean fraction of decode slots occupied per step, `0.0..=1.0` — the
    /// iteration-level batching win shows up here.
    pub mean_step_occupancy: f64,
    /// Median simulated time-to-first-token, seconds.
    pub ttft_p50_seconds: f64,
    /// 95th-percentile simulated time-to-first-token, seconds.
    pub ttft_p95_seconds: f64,
    /// Median simulated inter-token latency, seconds.
    pub itl_p50_seconds: f64,
    /// 95th-percentile simulated inter-token latency, seconds.
    pub itl_p95_seconds: f64,
    /// Median time-to-first-token measured from batch admission (queueing
    /// excluded — the compute-only TTFT).
    pub ttft_from_admission_p50_seconds: f64,
    /// 95th-percentile time-to-first-token from admission.
    pub ttft_from_admission_p95_seconds: f64,
    /// Median queue segment of TTFT: submission → first admission.
    pub ttft_queue_p50_seconds: f64,
    /// 95th-percentile queue segment of TTFT.
    pub ttft_queue_p95_seconds: f64,
    /// Median prefill segment of TTFT: admission → all but the final prompt
    /// token absorbed. This is the segment chunked prefill collapses.
    pub ttft_prefill_p50_seconds: f64,
    /// 95th-percentile prefill segment of TTFT.
    pub ttft_prefill_p95_seconds: f64,
    /// Median first-decode segment of TTFT: the pass feeding the final
    /// prompt token and emitting the first output (zero when a prefill chunk
    /// finishes the prompt — the emission rides the chunk's pass).
    pub ttft_first_decode_p50_seconds: f64,
    /// 95th-percentile first-decode segment of TTFT.
    pub ttft_first_decode_p95_seconds: f64,
    /// Generated tokens per simulated decode second.
    pub tokens_per_second: f64,
    /// Total simulated seconds spent in decode steps.
    pub simulated_decode_seconds: f64,
    /// Total simulated seconds spent in chunked prefill passes (booked
    /// separately so `tokens_per_second` stays a decode metric).
    pub simulated_prefill_seconds: f64,
    /// Prompt tokens absorbed through chunked prefill passes (also counted
    /// in `prompt_tokens`).
    pub prefill_tokens: usize,
    /// Chunked prefill forward passes executed.
    pub prefill_passes: usize,
    /// Prefill tokens per simulated prefill second — the multi-token
    /// absorption bandwidth.
    pub prefill_tokens_per_second: f64,
    /// Fraction of prefill-running scheduler iterations that also ran a
    /// decode step, `0.0..=1.0` — 1.0 means every prefill chunk rode along
    /// with in-flight decodes instead of having the engine to itself.
    pub prefill_interleave_occupancy: f64,
    /// KV blocks currently allocated across live sequences.
    pub kv_blocks_in_use: usize,
    /// High-water mark of allocated KV blocks.
    pub kv_blocks_peak: usize,
    /// Total KV blocks the arena holds.
    pub kv_blocks_capacity: usize,
    /// Sequences preempted by KV memory pressure (their caches freed).
    pub kv_evictions: usize,
    /// Tokens re-fed to rebuild evicted caches (recompute cost).
    pub recomputed_tokens: usize,
    /// Live sessions migrated between decode shards (each migration is an
    /// eviction whose replay chain re-admits on another shard).
    pub sessions_migrated: usize,
    /// Generated tokens over the busiest shard's simulated busy time (the
    /// makespan). Shards model parallel devices, so this — not
    /// `tokens_per_second`, which divides by summed per-shard work — is the
    /// number that scales with the device pool. Equal to tokens over total
    /// busy time on a single-shard engine.
    pub cluster_tokens_per_second: f64,
    /// Per-shard decode rows, one per device in the engine's pool. Counters
    /// telescope: shard tokens/steps/placements sum to the aggregates, and
    /// total migrations-in equals total migrations-out.
    pub shards: Vec<DecodeShardSnapshot>,
}

/// One decode shard's slice of a [`DecodeStatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecodeShardSnapshot {
    /// The shard's device name.
    pub device: String,
    /// Sessions the placement policy landed here at submission.
    pub sessions_placed: usize,
    /// Live sessions migrated onto this shard.
    pub migrations_in: usize,
    /// Live sessions migrated off this shard.
    pub migrations_out: usize,
    /// Tokens this shard's decode steps emitted.
    pub tokens_generated: usize,
    /// Decode steps this shard executed.
    pub steps: usize,
    /// KV blocks currently allocated in this shard's arenas.
    pub kv_blocks_in_use: usize,
    /// High-water mark of this shard's allocated KV blocks.
    pub kv_blocks_peak: usize,
    /// Total KV blocks this shard's arenas hold.
    pub kv_blocks_capacity: usize,
    /// Current decode lane share — the autoscaler's admission ceiling.
    pub lane_share: usize,
    /// Smoothed queue delay driving the lane autoscaler, simulated seconds.
    pub queue_delay_ewma_seconds: f64,
    /// Simulated seconds this shard spent in decode steps.
    pub simulated_decode_seconds: f64,
    /// This shard's simulated clock: decode + prefill busy time.
    pub simulated_busy_seconds: f64,
    /// This shard's tokens per simulated decode second.
    pub tokens_per_second: f64,
}

impl DecodeStatsSnapshot {
    /// Compact one-line rendering for logs and benches.
    pub fn summary(&self) -> String {
        let cluster = if self.shards.len() > 1 {
            format!(
                " | {} shards, {:.0} tok/s cluster, {} migrations",
                self.shards.len(),
                self.cluster_tokens_per_second,
                self.sessions_migrated,
            )
        } else {
            String::new()
        };
        format!(
            "{} tokens from {} sequences in {} steps (occupancy {:.0}%) | \
             {:.0} tok/s (sim) | ttft p50 {:.1} us, itl p50/p95 {:.1}/{:.1} us | \
             prefill {} tokens in {} passes ({:.0} tok/s, interleave {:.0}%) | \
             kv {}/{} blocks (peak {}), {} evictions, {} recomputed{cluster}",
            self.tokens_generated,
            self.sequences_completed,
            self.steps,
            self.mean_step_occupancy * 100.0,
            self.tokens_per_second,
            self.ttft_p50_seconds * 1e6,
            self.itl_p50_seconds * 1e6,
            self.itl_p95_seconds * 1e6,
            self.prefill_tokens,
            self.prefill_passes,
            self.prefill_tokens_per_second,
            self.prefill_interleave_occupancy * 100.0,
            self.kv_blocks_in_use,
            self.kv_blocks_capacity,
            self.kv_blocks_peak,
            self.kv_evictions,
            self.recomputed_tokens,
        )
    }
}

/// Wire-level metrics of an attached network front-end (`hidet-server`),
/// surfaced through [`StatsSnapshot::ingress`] when a source is registered
/// with `Engine::attach_ingress_stats`.
///
/// Unlike the rest of the snapshot, the latencies here are **host
/// wall-clock** seconds: wire-to-first-byte is measured from the kernel
/// handing us the accepted connection to the first response byte written
/// back — the quantity a remote client actually observes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngressStatsSnapshot {
    /// Connections accepted and enqueued onto an ingress lane.
    pub accepted: usize,
    /// Connections shed at the acceptor by the admission signal, before any
    /// parsing (HTTP `429`).
    pub shed_at_socket: usize,
    /// Connections shed because every ingress ring was full (HTTP `429`).
    pub shed_ring_full: usize,
    /// Requests answered (any status, shed responses excluded).
    pub served: usize,
    /// Streaming generations cancelled because the client socket died.
    pub streams_cancelled: usize,
    /// Jobs currently queued across all ingress rings.
    pub ring_depth: usize,
    /// Total ring capacity across all lanes.
    pub ring_capacity: usize,
    /// CAS retries producers paid while enqueueing (contention gauge; the
    /// enqueue path has no mutex to block on).
    pub enqueue_cas_retries: usize,
    /// Median wire-to-first-byte latency, host seconds.
    pub wire_ttfb_p50_seconds: f64,
    /// 95th-percentile wire-to-first-byte latency, host seconds.
    pub wire_ttfb_p95_seconds: f64,
}

impl IngressStatsSnapshot {
    /// Compact one-line rendering for logs and benches.
    pub fn summary(&self) -> String {
        format!(
            "{} accepted, {} served, {} cancelled streams | shed {} at socket, {} ring-full | \
             ring {}/{} queued, {} CAS retries | wire ttfb p50 {:.1} us, p95 {:.1} us",
            self.accepted,
            self.served,
            self.streams_cancelled,
            self.shed_at_socket,
            self.shed_ring_full,
            self.ring_depth,
            self.ring_capacity,
            self.enqueue_cas_retries,
            self.wire_ttfb_p50_seconds * 1e6,
            self.wire_ttfb_p95_seconds * 1e6,
        )
    }
}

/// Per-priority-class slice of a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityClassStats {
    /// The class these numbers describe.
    pub priority: Priority,
    /// Requests of this class completed successfully.
    pub requests: usize,
    /// Requests of this class shed by the admission controller.
    pub shed_requests: usize,
    /// Median simulated sojourn latency (queue delay + device), seconds.
    pub p50_latency_seconds: f64,
    /// 95th-percentile simulated sojourn latency, seconds.
    pub p95_latency_seconds: f64,
}

/// Point-in-time view of [`ServerStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests completed successfully.
    pub requests: usize,
    /// Requests rejected with an error (any kind).
    pub failures: usize,
    /// Requests shed by the admission controller.
    pub shed_requests: usize,
    /// Requests whose deadline expired before execution.
    pub deadline_expired: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Compiled-graph cache hits (served from memory).
    pub compile_cache_hits: usize,
    /// Compiled-graph cache misses (fresh compiles — lookups rebuilt from a
    /// disk artifact count under [`StatsSnapshot::compiled_artifact_loads`]
    /// instead).
    pub compile_cache_misses: usize,
    /// Compiles avoided by rebuilding from the disk artifact store (zero
    /// tuning trials each).
    pub compiled_artifact_loads: usize,
    /// Artifact files rejected (corrupted/truncated/mismatched) — each fell
    /// back to a fresh compile.
    pub compiled_artifact_rejects: usize,
    /// Compiled graphs evicted after idling past the cache TTL.
    pub compiled_evicted_ttl: usize,
    /// Compiled graphs evicted by capacity pressure (LRU order).
    pub compiled_evicted_capacity: usize,
    /// Compiled graphs evicted by explicit model unloads.
    pub compiled_evicted_unload: usize,
    /// Artifact files removed from disk stores by GC (model unloads sweep
    /// the unloaded model's artifacts; see `hidet_runtime::ArtifactStore`).
    pub artifact_gc_removed: usize,
    /// Largest planned per-inference intermediate footprint across compiled
    /// models, in bytes — what the memory planner sized the execution arena
    /// to (`hidet::MemoryPlan::peak_bytes`).
    pub planned_peak_bytes: usize,
    /// Tuning trials executed.
    pub tuning_trials_run: usize,
    /// Tuning trials saved by persisted records.
    pub tuning_trials_saved: usize,
    /// Simulated tuning seconds spent.
    pub tuning_seconds_run: f64,
    /// Simulated tuning seconds saved by persisted records.
    pub tuning_seconds_saved: f64,
    /// Total simulated device time across batches and shards, seconds.
    pub total_simulated_seconds: f64,
    /// Busy time of the busiest shard, seconds — the simulated makespan of
    /// the work the pool executed.
    pub makespan_seconds: f64,
    /// Median per-request simulated sojourn latency, seconds.
    pub p50_latency_seconds: f64,
    /// 95th-percentile per-request simulated sojourn latency, seconds.
    pub p95_latency_seconds: f64,
    /// Average requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Requests per simulated device-second (device-count-agnostic).
    pub simulated_throughput_rps: f64,
    /// Requests per simulated makespan-second: throughput of the pool as a
    /// whole, which scales near-linearly with balanced shards.
    pub cluster_throughput_rps: f64,
    /// Per-priority-class breakdown, indexed like [`Priority::ALL`].
    pub priorities: [PriorityClassStats; Priority::COUNT],
    /// Per-shard dispatch accounting, indexed by device position in
    /// `EngineConfig::devices`.
    pub shards: Vec<ShardSnapshot>,
    /// Token-level decode metrics, when a decode subsystem is attached
    /// (`Engine::attach_decode_stats`).
    pub decode: Option<DecodeStatsSnapshot>,
    /// Wire-level ingress metrics, when a network front-end is attached
    /// (`Engine::attach_ingress_stats`).
    pub ingress: Option<IngressStatsSnapshot>,
}

impl StatsSnapshot {
    /// Total compiled-graph evictions across TTL, capacity and unload.
    pub fn compiled_evictions(&self) -> usize {
        self.compiled_evicted_ttl + self.compiled_evicted_capacity + self.compiled_evicted_unload
    }

    /// Compact one-line rendering for logs and benches.
    pub fn summary(&self) -> String {
        format!(
            "{} req in {} batches (mean {:.2}/batch) over {} shard(s) | compile cache {}/{} hit, \
             {} artifact loads, {} evicted | {} trials run, {} saved | p50 {:.1} us, p95 {:.1} us | \
             {:.0} req/s (cluster, simulated) | {} shed, {} expired",
            self.requests,
            self.batches,
            self.mean_batch_size,
            self.shards.len(),
            self.compile_cache_hits,
            self.compile_cache_hits + self.compile_cache_misses + self.compiled_artifact_loads,
            self.compiled_artifact_loads,
            self.compiled_evictions(),
            self.tuning_trials_run,
            self.tuning_trials_saved,
            self.p50_latency_seconds * 1e6,
            self.p95_latency_seconds * 1e6,
            self.cluster_throughput_rps,
            self.shed_requests,
            self.deadline_expired,
        )
    }

    /// One formatted line per shard (dispatches, busy time, shed), for the
    /// bench binaries' tables.
    pub fn shard_lines(&self) -> Vec<String> {
        self.shards
            .iter()
            .map(|s| {
                format!(
                    "shard {}: {} batches, {} req, {:.1} ms busy, {} shed [{}]",
                    s.id,
                    s.dispatched_batches,
                    s.requests,
                    s.busy_seconds * 1e3,
                    s.shed_requests,
                    s.device,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(stats: &ServerStats) -> StatsSnapshot {
        stats.snapshot(CacheCounters::default(), Vec::new())
    }

    #[test]
    fn percentiles_and_throughput() {
        let stats = ServerStats::default();
        stats.record_batch(Priority::Normal, 4, 0.004, 0.004); // 4 requests at 4 ms
        stats.record_batch(Priority::Normal, 1, 0.001, 0.001); // 1 request at 1 ms
        let snap = snap(&stats);
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_size - 2.5).abs() < 1e-9);
        assert!((snap.p50_latency_seconds - 0.004).abs() < 1e-9);
        assert!((snap.p95_latency_seconds - 0.004).abs() < 1e-9);
        assert!((snap.total_simulated_seconds - 0.005).abs() < 1e-6);
        assert!((snap.simulated_throughput_rps - 1000.0).abs() < 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let snap = snap(&ServerStats::default());
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p50_latency_seconds, 0.0);
        assert_eq!(snap.simulated_throughput_rps, 0.0);
        assert_eq!(snap.cluster_throughput_rps, 0.0);
        assert_eq!(snap.mean_batch_size, 0.0);
    }

    #[test]
    fn latency_reservoir_stays_bounded() {
        let stats = ServerStats::default();
        for i in 0..20_000 {
            let lat = 0.001 * (1.0 + (i % 10) as f64);
            stats.record_batch(Priority::Normal, 1, lat, lat);
        }
        let held = stats.latencies.lock().unwrap()[Priority::Normal.index()]
            .samples
            .len();
        assert!(held <= super::LATENCY_RESERVOIR_CAP, "{held}");
        let snap = snap(&stats);
        assert_eq!(snap.requests, 20_000);
        // Percentiles still estimate the underlying uniform 1..=10 ms mix.
        assert!(snap.p50_latency_seconds >= 0.003 && snap.p50_latency_seconds <= 0.008);
        assert!(snap.p95_latency_seconds >= 0.008);
    }

    #[test]
    fn tuning_accounting() {
        let stats = ServerStats::default();
        stats.add_tuning_run(100, 20.0);
        stats.add_tuning_saved(250, 50.0);
        let snap = snap(&stats);
        assert_eq!(snap.tuning_trials_run, 100);
        assert_eq!(snap.tuning_trials_saved, 250);
        assert!((snap.tuning_seconds_run - 20.0).abs() < 1e-6);
        assert!((snap.tuning_seconds_saved - 50.0).abs() < 1e-6);
    }

    #[test]
    fn per_priority_latencies_are_separate() {
        let stats = ServerStats::default();
        stats.record_batch(Priority::High, 2, 0.001, 0.001);
        stats.record_batch(Priority::BestEffort, 2, 0.001, 0.010);
        let snap = snap(&stats);
        let high = &snap.priorities[Priority::High.index()];
        let be = &snap.priorities[Priority::BestEffort.index()];
        assert_eq!(high.requests, 2);
        assert_eq!(be.requests, 2);
        assert!(high.p95_latency_seconds < be.p95_latency_seconds);
        // The merged distribution spans both classes.
        assert!(snap.p50_latency_seconds >= 0.001 && snap.p50_latency_seconds <= 0.010);
        assert!((snap.p95_latency_seconds - 0.010).abs() < 1e-9);
    }

    #[test]
    fn shed_and_deadline_counters() {
        let stats = ServerStats::default();
        stats.count_shed(Priority::BestEffort);
        stats.count_shed(Priority::BestEffort);
        stats.count_deadline_expired();
        let snap = snap(&stats);
        assert_eq!(snap.shed_requests, 2);
        assert_eq!(snap.deadline_expired, 1);
        assert_eq!(snap.failures, 3);
        assert_eq!(
            snap.priorities[Priority::BestEffort.index()].shed_requests,
            2
        );
        assert_eq!(snap.priorities[Priority::High.index()].shed_requests, 0);
    }

    #[test]
    fn cluster_throughput_uses_busiest_shard() {
        let stats = ServerStats::default();
        stats.record_batch(Priority::Normal, 8, 0.004, 0.004);
        let shards = vec![
            ShardSnapshot {
                id: 0,
                device: "a".into(),
                dispatched_batches: 1,
                requests: 4,
                busy_seconds: 0.002,
                shed_requests: 0,
            },
            ShardSnapshot {
                id: 1,
                device: "b".into(),
                dispatched_batches: 1,
                requests: 4,
                busy_seconds: 0.001,
                shed_requests: 0,
            },
        ];
        let snap = stats.snapshot(CacheCounters::default(), shards);
        assert!((snap.makespan_seconds - 0.002).abs() < 1e-12);
        assert!((snap.cluster_throughput_rps - 8.0 / 0.002).abs() < 1.0);
        // Device-seconds throughput is unchanged by sharding.
        assert!((snap.simulated_throughput_rps - 8.0 / 0.004).abs() < 1.0);
        assert_eq!(snap.shard_lines().len(), 2);
    }
}
