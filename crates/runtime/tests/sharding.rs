//! Integration tests of the sharded serving path: multi-device placement,
//! priority/deadline-aware batching and admission control.

use std::time::{Duration, Instant};

use hidet_graph::{Graph, GraphBuilder, Tensor};
use hidet_runtime::{Engine, EngineConfig, EngineError, ModelSpec, Priority, Request};
use hidet_sim::GpuSpec;

/// A mid-size MLP: big enough that a batch takes real wall time to interpret
/// (so queues actually build up under bursts), small enough for CI.
fn mlp(batch: i64) -> Graph {
    let mut g = GraphBuilder::new("mlp");
    let x = g.input("x", &[batch, 32]);
    let w1 = g.constant(Tensor::randn(&[32, 48], 1));
    let w2 = g.constant(Tensor::randn(&[48, 8], 2));
    let h = g.matmul(x, w1);
    let h = g.relu(h);
    let y = g.matmul(h, w2);
    g.output(y).build()
}

fn sample(seed: u64) -> Request {
    Request::new(vec![Tensor::randn(&[1, 32], seed).data().unwrap().to_vec()])
}

#[test]
fn sharded_engine_uses_every_device() {
    let engine = Engine::new(EngineConfig {
        devices: vec![GpuSpec::rtx3090(), GpuSpec::rtx3090()],
        workers: 1,
        max_batch: 1, // every request is its own batch -> placement decides
        ..EngineConfig::quick()
    })
    .expect("engine starts");
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.warmup(1).unwrap();
    for r in model.infer_many((0..12).map(sample).collect()) {
        r.expect("request served");
    }
    let stats = engine.stats();
    assert_eq!(stats.requests, 12);
    assert_eq!(stats.shards.len(), 2);
    for shard in &stats.shards {
        assert!(
            shard.dispatched_batches > 0,
            "shard {} never used: {stats:?}",
            shard.id
        );
        assert!(shard.busy_seconds > 0.0);
    }
    assert_eq!(
        stats.shards.iter().map(|s| s.requests).sum::<usize>(),
        stats.requests
    );
    // The pool finishes before a single device would have.
    assert!(stats.makespan_seconds < stats.total_simulated_seconds);
    assert!(stats.cluster_throughput_rps > stats.simulated_throughput_rps);
}

#[test]
fn homogeneous_shards_share_compiled_graphs() {
    let engine = Engine::new(EngineConfig {
        devices: vec![GpuSpec::rtx3090(); 3],
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    // One compile serves all three shards: warmup touches each device but
    // the cache key (structure x fingerprint x options) is identical.
    assert!(!model.warmup(1).unwrap());
    assert_eq!(engine.compiled_graphs(), 1);
    assert_eq!(engine.stats().compile_cache_misses, 1);
    assert!(model.warmup(1).unwrap());
    assert_eq!(engine.shard_count(), 3);
}

#[test]
fn mixed_pool_compiles_per_device_and_prefers_the_faster_one() {
    let engine = Engine::new(EngineConfig {
        devices: vec![GpuSpec::tiny(), GpuSpec::rtx3090()],
        workers: 1,
        max_batch: 1,
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    // Distinct fingerprints -> one compile per device.
    assert!(!model.warmup(1).unwrap());
    assert_eq!(engine.compiled_graphs(), 2);

    for r in model.infer_many((0..16).map(sample).collect()) {
        r.expect("request served");
    }
    let stats = engine.stats();
    let tiny = &stats.shards[0];
    let fast = &stats.shards[1];
    assert!(
        fast.requests > tiny.requests,
        "least-queue-delay placement must favor the faster device: {} vs {}",
        fast.requests,
        tiny.requests
    );
}

#[test]
fn high_priority_sojourn_beats_best_effort_under_backlog() {
    let engine = Engine::new(EngineConfig {
        devices: vec![GpuSpec::rtx3090()],
        workers: 1,
        max_batch: 4,
        batch_window: Duration::from_millis(40),
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.warmup(1).unwrap();
    model.warmup(4).unwrap();

    // A plug request opens a straggler window; the burst below lands inside
    // it, so the dispatcher sees both classes queued at once and must serve
    // every high batch before any best-effort batch.
    let plug = model.submit(sample(0));
    let mut best_effort = Vec::new();
    let mut high = Vec::new();
    for i in 0..16 {
        best_effort.push(model.submit(sample(100 + i).best_effort()));
        high.push(model.submit(sample(200 + i).high()));
    }
    plug.wait().expect("plug served");
    for t in high {
        let r = t.wait().expect("high served");
        assert_eq!(r.priority, Priority::High);
    }
    for t in best_effort {
        t.wait().expect("best-effort served");
    }

    let stats = engine.stats();
    let h = &stats.priorities[Priority::High.index()];
    let be = &stats.priorities[Priority::BestEffort.index()];
    assert_eq!(h.requests, 16);
    assert_eq!(be.requests, 16);
    assert!(
        h.p95_latency_seconds < be.p95_latency_seconds,
        "high p95 {} must beat best-effort p95 {}",
        h.p95_latency_seconds,
        be.p95_latency_seconds
    );
}

#[test]
fn overload_sheds_with_queue_full_and_never_high_before_best_effort() {
    let engine = Engine::new(EngineConfig {
        devices: vec![GpuSpec::rtx3090()],
        workers: 1,
        max_batch: 1,
        max_inflight: 8,
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.warmup(1).unwrap();

    // 2x overload: 32 requests against an in-flight budget of 8, submitted
    // faster than one worker can drain them.
    let tickets: Vec<_> = (0..16)
        .flat_map(|i| {
            [
                model.submit(sample(i).best_effort()),
                model.submit(sample(100 + i).high()),
            ]
        })
        .collect();
    let mut shed = 0;
    for t in tickets {
        match t.wait() {
            Ok(_) => {}
            Err(EngineError::QueueFull(msg)) => {
                assert!(msg.contains("in flight"), "{msg}");
                shed += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    let stats = engine.stats();
    assert!(shed > 0, "2x overload must shed");
    assert_eq!(stats.shed_requests, shed);
    assert_eq!(stats.failures, shed);
    let be_shed = stats.priorities[Priority::BestEffort.index()].shed_requests;
    let high_shed = stats.priorities[Priority::High.index()].shed_requests;
    assert!(be_shed > 0, "best-effort is shed first");
    assert!(
        high_shed == 0 || be_shed >= high_shed,
        "high ({high_shed}) must never be shed before best-effort ({be_shed})"
    );
    // Per-shard shed attribution adds up to the engine-wide counter.
    assert_eq!(
        stats.shards.iter().map(|s| s.shed_requests).sum::<usize>(),
        stats.shed_requests
    );
}

/// A wide tower whose functional interpretation takes tens of milliseconds —
/// long enough that a placed batch is reliably still in flight when the next
/// submission's admission verdict is computed.
fn slow_tower(batch: i64) -> Graph {
    let mut g = GraphBuilder::new("slow_tower");
    let x = g.input("x", &[batch, 256]);
    let w1 = g.constant(Tensor::randn(&[256, 512], 1));
    let w2 = g.constant(Tensor::randn(&[512, 64], 2));
    let h = g.matmul(x, w1);
    let h = g.relu(h);
    let y = g.matmul(h, w2);
    g.output(y).build()
}

#[test]
fn delay_bound_sheds_when_the_pool_is_backed_up() {
    let engine = Engine::new(EngineConfig {
        devices: vec![GpuSpec::rtx3090()],
        workers: 1,
        max_batch: 1,
        admission_delay_bound: Some(Duration::from_nanos(100)),
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine
        .register(ModelSpec::new("tower", slow_tower))
        .unwrap();
    model.warmup(1).unwrap();

    // Fill the single worker. The first request is admitted against an idle
    // pool; once batches are in flight, the estimated queue delay exceeds
    // the (tiny) bound even at high priority's 4x slack, so later traffic
    // is shed with the typed delay verdict.
    let busy: Vec<_> = (0..3).map(|i| model.submit(sample_wide(i))).collect();
    // Give the dispatcher time to place the first batch on the shard; the
    // worker needs tens of milliseconds to interpret it.
    std::thread::sleep(Duration::from_millis(10));
    let verdict = model.infer(sample_wide(99).best_effort());
    match verdict {
        Err(EngineError::QueueFull(msg)) => assert!(msg.contains("queue delay"), "{msg}"),
        other => panic!("expected delay-based shed, got {other:?}"),
    }
    let mut served = 0;
    for t in busy {
        match t.wait() {
            Ok(_) => served += 1,
            Err(EngineError::QueueFull(_)) => {} // later busy traffic may shed too
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(served >= 1, "the first request saw an idle pool");
    assert!(engine.stats().shed_requests >= 1);
}

fn sample_wide(seed: u64) -> Request {
    Request::new(vec![Tensor::randn(&[1, 256], seed)
        .data()
        .unwrap()
        .to_vec()])
}

#[test]
fn expired_deadline_at_submit_is_rejected_immediately() {
    let engine = Engine::new(EngineConfig::quick()).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    let expired = sample(1).with_deadline(Instant::now() - Duration::from_millis(1));
    match model.infer(expired) {
        Err(EngineError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = engine.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.requests, 0, "expired request must not execute");
    assert_eq!(stats.batches, 0);
}

#[test]
fn deadline_expiring_in_queue_never_reaches_a_worker() {
    // max_batch 8 with a long straggler window: a lone request waits for
    // companions, its 5 ms deadline passes while queued, and the dispatcher
    // answers it without executing anything.
    let engine = Engine::new(EngineConfig {
        devices: vec![GpuSpec::rtx3090()],
        workers: 1,
        max_batch: 8,
        batch_window: Duration::from_millis(250),
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.warmup(1).unwrap();
    let started = Instant::now();
    match model.infer(sample(1).with_timeout(Duration::from_millis(5))) {
        Err(EngineError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The earliest-deadline wake answers well before the 250 ms window ends.
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "expiry must not wait out the full batch window ({:?})",
        started.elapsed()
    );
    let stats = engine.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.requests, 0, "expired request must never execute");
    assert_eq!(stats.batches, 0, "no batch may form from expired requests");
    // The engine still serves live traffic afterwards.
    let ok = model.infer(sample(2)).expect("live request");
    assert_eq!(ok.batch_size, 1);
}

#[test]
fn deadline_far_in_the_future_executes_normally() {
    let engine = Engine::new(EngineConfig::quick()).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    let r = model
        .infer(sample(7).high().with_timeout(Duration::from_secs(60)))
        .expect("served");
    assert_eq!(r.priority, Priority::High);
    assert_eq!(engine.stats().deadline_expired, 0);
}

#[test]
fn sharded_pool_outscales_a_single_device() {
    let run = |devices: usize| {
        let engine = Engine::new(EngineConfig {
            devices: vec![GpuSpec::rtx3090(); devices],
            workers: 1,
            max_batch: 4,
            batch_window: Duration::from_millis(10),
            ..EngineConfig::quick()
        })
        .unwrap();
        let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
        model.warmup(4).unwrap();
        for r in model.infer_many((0..24).map(sample).collect()) {
            r.expect("request served");
        }
        engine.stats()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.requests, 24);
    assert_eq!(four.requests, 24);
    assert!(
        four.cluster_throughput_rps > 2.0 * one.cluster_throughput_rps,
        "4 devices must clearly outscale 1: {:.0} vs {:.0} req/s",
        four.cluster_throughput_rps,
        one.cluster_throughput_rps
    );
}
