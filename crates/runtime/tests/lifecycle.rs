//! Integration tests of the v2 model lifecycle: artifact-store persistence
//! across engine instances, corrupted-artifact fallback, cache eviction
//! (TTL, capacity, unload) and per-request failure isolation.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use hidet_graph::{Graph, GraphBuilder, Tensor};
use hidet_runtime::{Engine, EngineConfig, EngineError, ModelSpec, Request};

fn mlp(batch: i64) -> Graph {
    let mut g = GraphBuilder::new("mlp");
    let x = g.input("x", &[batch, 24]);
    let w1 = g.constant(Tensor::randn(&[24, 32], 1));
    let w2 = g.constant(Tensor::randn(&[32, 6], 2));
    let h = g.matmul(x, w1);
    let h = g.relu(h);
    let y = g.matmul(h, w2);
    g.output(y).build()
}

/// A structurally different second model (distinct cache keys from `mlp`).
fn wide(batch: i64) -> Graph {
    let mut g = GraphBuilder::new("wide");
    let x = g.input("x", &[batch, 24]);
    let w = g.constant(Tensor::randn(&[24, 48], 3));
    let y = g.matmul(x, w);
    g.output(y).build()
}

fn request(seed: u64) -> Request {
    Request::new(vec![Tensor::randn(&[1, 24], seed).data().unwrap().to_vec()])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hidet-lifecycle-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_restart_compiles_zero_graphs() {
    // The acceptance criterion of the artifact store: a second engine
    // pointed at the same directory reports 0 fresh compiles and 0 tuning
    // trials for already-served (model, batch, device) keys.
    let store = temp_dir("warm-restart");
    let config = EngineConfig {
        max_batch: 2,
        batch_window: Duration::from_millis(10),
        artifact_store: Some(store.clone()),
        ..EngineConfig::default() // tuned options: the expensive case
    };

    // "Process" 1: cold store — compiles and tunes, persists artifacts.
    let engine = Engine::new(config.clone()).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.warmup(1).unwrap();
    model.infer(request(1)).unwrap();
    let cold = engine.stats();
    assert!(cold.compile_cache_misses > 0, "cold store must compile");
    assert!(cold.tuning_trials_run > 0, "cold store must tune");
    assert_eq!(cold.compiled_artifact_loads, 0);
    engine.shutdown().unwrap();
    assert!(
        std::fs::read_dir(&store).unwrap().count() > 0,
        "compiles must persist artifacts"
    );

    // "Process" 2: warm store — zero compiles, zero trials, same answers.
    let engine = Engine::new(config).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.warmup(1).unwrap();
    let result = model.infer(request(1)).unwrap();
    assert_eq!(result.outputs[0].len(), 6);
    let warm = engine.stats();
    assert_eq!(
        warm.compile_cache_misses, 0,
        "warm store must compile zero graphs: {warm:?}"
    );
    assert_eq!(warm.tuning_trials_run, 0, "warm store must run zero trials");
    assert!(warm.compiled_artifact_loads > 0);
    assert_eq!(warm.compiled_artifact_rejects, 0);
    assert!(
        warm.tuning_trials_saved >= cold.tuning_trials_run,
        "artifact loads must report the embodied tuning cost as saved"
    );
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn per_model_store_overrides_engine_default() {
    let default_store = temp_dir("default-store");
    let model_store = temp_dir("model-store");
    let config = EngineConfig {
        artifact_store: Some(default_store.clone()),
        ..EngineConfig::quick()
    };
    let engine = Engine::new(config).unwrap();
    let pinned = engine
        .register(ModelSpec::new("pinned", mlp).with_artifact_store(&model_store))
        .unwrap();
    pinned.infer(request(1)).unwrap();
    assert_eq!(
        std::fs::read_dir(&model_store).unwrap().count(),
        1,
        "per-model store receives the artifact"
    );
    let default_entries = std::fs::read_dir(&default_store)
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(
        default_entries, 0,
        "engine default must not be written for an overriding model"
    );
    let _ = std::fs::remove_dir_all(&default_store);
    let _ = std::fs::remove_dir_all(&model_store);
}

#[test]
fn corrupted_artifacts_fall_back_to_fresh_compile() {
    // Corrupted, truncated and version-mismatched artifact files must be
    // rejected (counted) and served by a fresh compile — never a panic.
    let store = temp_dir("corrupt");
    let config = EngineConfig {
        artifact_store: Some(store.clone()),
        ..EngineConfig::quick()
    };

    // Produce a valid store, then sabotage every artifact in it.
    let engine = Engine::new(config.clone()).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.infer(request(1)).unwrap();
    engine.shutdown().unwrap();
    let files: Vec<PathBuf> = std::fs::read_dir(&store)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!files.is_empty());

    for (i, sabotage) in [
        "garbage, not json".to_string(),
        String::new(), // truncated to nothing
        std::fs::read_to_string(&files[0]).unwrap().replace(
            &format!("\"version\": {}", hidet::ARTIFACT_FORMAT_VERSION),
            "\"version\": 99",
        ),
        {
            let text = std::fs::read_to_string(&files[0]).unwrap();
            text[..text.len() / 2].to_string() // truncated mid-object
        },
    ]
    .into_iter()
    .enumerate()
    {
        for file in &files {
            std::fs::write(file, &sabotage).unwrap();
        }
        let engine = Engine::new(config.clone()).unwrap();
        let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
        let result = model.infer(request(2)).unwrap();
        assert_eq!(result.outputs[0].len(), 6, "sabotage {i} broke serving");
        let stats = engine.stats();
        assert!(
            stats.compiled_artifact_rejects > 0,
            "sabotage {i} must be counted as a reject: {stats:?}"
        );
        assert!(
            stats.compile_cache_misses > 0,
            "sabotage {i} must fall back to a fresh compile"
        );
        // The fresh compile rewrote a valid artifact; restore sabotage for
        // the next round by the loop head.
        engine.shutdown().unwrap();
    }
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn unload_garbage_collects_disk_artifacts() {
    // Unloading a model sweeps its artifact files from the store (counted in
    // StatsSnapshot::artifact_gc_removed); other models' files survive.
    let store = temp_dir("unload-gc");
    let engine = Engine::new(EngineConfig {
        artifact_store: Some(store.clone()),
        ..EngineConfig::quick()
    })
    .unwrap();
    let doomed = engine.register(ModelSpec::new("doomed", mlp)).unwrap();
    let kept = engine.register(ModelSpec::new("kept", wide)).unwrap();
    doomed.infer(request(1)).unwrap();
    kept.infer(request(2)).unwrap();
    let files_before = std::fs::read_dir(&store).unwrap().count();
    assert_eq!(files_before, 2, "each model persisted one artifact");

    assert!(doomed.unload());
    let stats = engine.stats();
    assert_eq!(stats.artifact_gc_removed, 1, "{stats:?}");
    assert_eq!(
        std::fs::read_dir(&store).unwrap().count(),
        1,
        "only the unloaded model's artifact is swept"
    );
    // The surviving model still warm-starts a fresh engine from disk.
    engine.shutdown().unwrap();
    let engine = Engine::new(EngineConfig {
        artifact_store: Some(store.clone()),
        ..EngineConfig::quick()
    })
    .unwrap();
    let kept = engine.register(ModelSpec::new("kept", wide)).unwrap();
    kept.infer(request(3)).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.compile_cache_misses, 0, "{stats:?}");
    assert_eq!(stats.compiled_artifact_loads, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn unload_gc_spares_artifacts_shared_by_a_live_registration() {
    // Artifacts are keyed structurally; two names over the same builder
    // share one file. Unloading one name must not destroy the survivor's
    // warm-start artifact — only the last unload sweeps it.
    let store = temp_dir("unload-gc-shared");
    let engine = Engine::new(EngineConfig {
        artifact_store: Some(store.clone()),
        ..EngineConfig::quick()
    })
    .unwrap();
    let a = engine.register(ModelSpec::new("a", mlp)).unwrap();
    let b = engine.register(ModelSpec::new("b", mlp)).unwrap();
    a.infer(request(1)).unwrap();
    b.infer(request(2)).unwrap();
    assert_eq!(std::fs::read_dir(&store).unwrap().count(), 1);

    assert!(a.unload());
    assert_eq!(engine.stats().artifact_gc_removed, 0, "shared file spared");
    assert_eq!(std::fs::read_dir(&store).unwrap().count(), 1);

    assert!(b.unload());
    assert_eq!(engine.stats().artifact_gc_removed, 1, "last unload sweeps");
    assert_eq!(std::fs::read_dir(&store).unwrap().count(), 0);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn stats_report_planned_peak_bytes() {
    // Every compile records its memory plan's arena size; the snapshot
    // carries the largest one, and the artifact round-trips it.
    let store = temp_dir("planned-peak");
    let engine = Engine::new(EngineConfig {
        artifact_store: Some(store.clone()),
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.infer(request(1)).unwrap();
    let stats = engine.stats();
    assert!(stats.planned_peak_bytes > 0, "{stats:?}");
    engine.shutdown().unwrap();

    // The artifact file carries the same figure.
    let file = std::fs::read_dir(&store)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let artifact = hidet::CompiledArtifact::load(&file).unwrap();
    assert_eq!(artifact.planned_peak_bytes, stats.planned_peak_bytes);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn capacity_pressure_evicts_lru_and_recompiles_transparently() {
    let engine = Engine::new(EngineConfig {
        compiled_capacity: Some(1),
        max_batch: 1,
        ..EngineConfig::quick()
    })
    .unwrap();
    let a = engine.register(ModelSpec::new("a", mlp)).unwrap();
    let b = engine.register(ModelSpec::new("b", wide)).unwrap();

    a.infer(request(1)).unwrap();
    b.infer(request(2)).unwrap(); // evicts a's compiled graph (capacity 1)
    let stats = engine.stats();
    assert_eq!(stats.compiled_evicted_capacity, 1, "{stats:?}");
    assert_eq!(engine.compiled_graphs(), 1);

    // The evicted model recompiles transparently and still answers.
    let again = a.infer(request(3)).unwrap();
    assert!(!again.compile_cache_hit, "evicted entry cannot hit");
    assert_eq!(again.outputs[0].len(), 6);
    let stats = engine.stats();
    assert_eq!(stats.compiled_evicted_capacity, 2);
    assert_eq!(stats.compile_cache_misses, 3);
    assert!(stats.compiled_evictions() >= 2);
}

#[test]
fn ttl_expiry_evicts_idle_entries_and_recompiles() {
    let engine = Engine::new(EngineConfig {
        compiled_ttl: Some(Duration::from_millis(30)),
        max_batch: 1,
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.infer(request(1)).unwrap();
    assert_eq!(engine.compiled_graphs(), 1);

    std::thread::sleep(Duration::from_millis(60));
    // The stats snapshot sweeps expired entries, making the eviction
    // visible without traffic.
    let stats = engine.stats();
    assert_eq!(stats.compiled_evicted_ttl, 1, "{stats:?}");
    assert_eq!(engine.compiled_graphs(), 0);

    // The expired model recompiles transparently.
    let again = model.infer(request(2)).unwrap();
    assert!(!again.compile_cache_hit);
    assert_eq!(engine.stats().compile_cache_misses, 2);
}

#[test]
fn unload_evicts_compiled_graphs_and_rejects_new_requests() {
    let engine = Engine::new(EngineConfig {
        max_batch: 2,
        batch_window: Duration::from_millis(5),
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    let other = engine.register(ModelSpec::new("other", wide)).unwrap();
    model.infer(request(1)).unwrap();
    other.infer(request(2)).unwrap();
    assert_eq!(engine.compiled_graphs(), 2);

    assert!(model.unload(), "first unload reports the model was loaded");
    assert!(!model.unload(), "unload is idempotent");
    let stats = engine.stats();
    assert_eq!(stats.compiled_evicted_unload, 1, "{stats:?}");
    assert_eq!(engine.compiled_graphs(), 1, "other models keep their entry");

    match model.infer(request(3)) {
        Err(EngineError::UnknownModel(name)) => assert_eq!(name, "mlp"),
        other => panic!("expected UnknownModel after unload, got {other:?}"),
    }
    // Unrelated traffic is unaffected.
    assert!(other.infer(request(4)).is_ok());

    // Re-registering under the same name serves again (fresh compile).
    let reborn = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    let result = reborn.infer(request(5)).unwrap();
    assert!(!result.compile_cache_hit);
}

#[test]
fn infer_many_reports_per_request_failures_without_masking_siblings() {
    // One already-expired request in a burst: it alone reports
    // DeadlineExceeded, every sibling completes with its own result.
    let engine = Engine::new(EngineConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(10),
        ..EngineConfig::quick()
    })
    .unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.warmup(1).unwrap();

    let mut requests: Vec<Request> = (0..4).map(request).collect();
    requests.insert(
        2,
        request(99).with_deadline(Instant::now() - Duration::from_millis(1)),
    );
    let results = model.infer_many(requests);
    assert_eq!(results.len(), 5);
    for (i, result) in results.iter().enumerate() {
        if i == 2 {
            assert!(
                matches!(result, Err(EngineError::DeadlineExceeded)),
                "expired request must fail alone, got {result:?}"
            );
        } else {
            let ok = result.as_ref().expect("sibling must be served");
            assert_eq!(ok.outputs[0].len(), 6);
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.deadline_expired, 1);
}

#[test]
fn handles_survive_reregistration_and_outlive_the_engine() {
    let engine = Engine::new(EngineConfig::quick()).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.infer(request(1)).unwrap();

    // Re-registration under the same name: the old handle follows it.
    let _newer = engine.register(ModelSpec::new("mlp", wide)).unwrap();
    let via_old = model
        .infer(request(2))
        .expect("old handle resolves the new registration");
    assert_eq!(via_old.outputs[0].len(), 48, "new model shape answers");

    // After shutdown, a surviving handle answers Closed instead of hanging.
    engine.shutdown().unwrap();
    match model.infer(request(3)) {
        Err(EngineError::Closed) => {}
        other => panic!("expected Closed after shutdown, got {other:?}"),
    }
}
