//! Integration tests of the serving engine: functional correctness through
//! the batching path, cache behavior, tuning-record persistence, error
//! surfaces — all through the v2 `ModelHandle`/`Request` API.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use hidet_graph::reference::{self, ValueMap};
use hidet_graph::{Graph, GraphBuilder, Tensor};
use hidet_runtime::{Engine, EngineConfig, EngineError, ModelHandle, ModelSpec, Request};
use hidet_sim::Gpu;

/// A small two-layer MLP whose inputs scale with the batch dimension.
fn mlp(batch: i64) -> Graph {
    let mut g = GraphBuilder::new("mlp");
    let x = g.input("x", &[batch, 24]);
    let w1 = g.constant(Tensor::randn(&[24, 32], 1));
    let w2 = g.constant(Tensor::randn(&[32, 6], 2));
    let h = g.matmul(x, w1);
    let h = g.relu(h);
    let y = g.matmul(h, w2);
    g.output(y).build()
}

fn sample_input(seed: u64) -> Vec<f32> {
    Tensor::randn(&[1, 24], seed).data().unwrap().to_vec()
}

fn request(seed: u64) -> Request {
    Request::new(vec![sample_input(seed)])
}

/// Ground truth from the reference executor at batch 1.
fn reference_output(input: &[f32]) -> Vec<f32> {
    let graph = mlp(1);
    let mut inputs = ValueMap::new();
    inputs.insert(graph.inputs()[0], input.to_vec());
    let out = reference::execute(&graph, &inputs);
    out[&graph.outputs()[0]].clone()
}

fn quick_engine(max_batch: usize) -> (Engine, ModelHandle) {
    let config = EngineConfig {
        max_batch,
        batch_window: Duration::from_millis(25),
        ..EngineConfig::quick()
    };
    let engine = Engine::new(config).expect("engine starts");
    let model = engine
        .register(ModelSpec::new("mlp", mlp))
        .expect("model registers");
    (engine, model)
}

fn unique_temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hidet-runtime-{tag}-{}-{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn single_inference_matches_reference() {
    let (_engine, model) = quick_engine(1);
    let input = sample_input(7);
    let result = model
        .infer(Request::new(vec![input.clone()]))
        .expect("infers");
    assert_eq!(result.batch_size, 1);
    let expect = reference_output(&input);
    assert_eq!(result.outputs.len(), 1);
    for (a, b) in result.outputs[0].iter().zip(&expect) {
        assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
    }
}

#[test]
fn batched_inference_matches_reference_per_request() {
    let (_engine, model) = quick_engine(4);
    let inputs: Vec<Vec<f32>> = (0..4).map(|i| sample_input(100 + i)).collect();
    let results = model.infer_many(
        inputs
            .iter()
            .map(|x| Request::new(vec![x.clone()]))
            .collect(),
    );
    for (input, result) in inputs.iter().zip(results) {
        let result = result.expect("infers");
        let expect = reference_output(input);
        for (a, b) in result.outputs[0].iter().zip(&expect) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }
}

#[test]
fn second_request_hits_compiled_graph_cache() {
    let (engine, model) = quick_engine(1);
    let first = model.infer(request(1)).unwrap();
    let second = model.infer(request(2)).unwrap();
    assert!(!first.compile_cache_hit);
    assert!(second.compile_cache_hit);
    let stats = engine.stats();
    assert_eq!(stats.compile_cache_hits, 1);
    assert_eq!(stats.compile_cache_misses, 1);
    assert_eq!(engine.compiled_graphs(), 1);
}

#[test]
fn same_structure_under_two_names_shares_compile() {
    let (engine, model) = quick_engine(1);
    let alias = engine.register(ModelSpec::new("mlp-alias", mlp)).unwrap();
    model.infer(request(1)).unwrap();
    let aliased = alias.infer(request(2)).unwrap();
    assert!(
        aliased.compile_cache_hit,
        "structural key must ignore names"
    );
    assert_eq!(engine.compiled_graphs(), 1);
}

#[test]
fn burst_is_coalesced_into_batches() {
    let (engine, model) = quick_engine(8);
    let results = model.infer_many((0..8).map(request).collect());
    assert!(results.iter().all(|r| r.is_ok()));
    let stats = engine.stats();
    assert_eq!(stats.requests, 8);
    assert!(
        stats.batches < 8,
        "burst of 8 should coalesce, got {} batches",
        stats.batches
    );
    assert!(stats.mean_batch_size > 1.0);
}

#[test]
fn batched_throughput_beats_sequential() {
    // Same 8 requests, dispatched sequentially (max_batch 1) vs batched.
    let (sequential, seq_model) = quick_engine(1);
    let (batched, bat_model) = quick_engine(8);
    for r in seq_model.infer_many((0..8).map(request).collect()) {
        r.unwrap();
    }
    for r in bat_model.infer_many((0..8).map(request).collect()) {
        r.unwrap();
    }
    let seq = sequential.stats();
    let bat = batched.stats();
    assert_eq!(seq.requests, 8);
    assert_eq!(bat.requests, 8);
    assert!(
        bat.total_simulated_seconds < seq.total_simulated_seconds,
        "batched {}s vs sequential {}s",
        bat.total_simulated_seconds,
        seq.total_simulated_seconds
    );
    assert!(bat.simulated_throughput_rps > seq.simulated_throughput_rps);
}

#[test]
fn tuning_records_roundtrip_across_processes() {
    let path = unique_temp_path("records");
    let _ = std::fs::remove_file(&path);

    // "Process" 1: tuned engine, cold records.
    let config = EngineConfig {
        max_batch: 1,
        tuning_records_path: Some(path.clone()),
        ..EngineConfig::default() // tuned options
    };
    let engine = Engine::new(config.clone()).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.infer(request(1)).unwrap();
    let cold = engine.stats();
    assert!(cold.tuning_trials_run > 0, "cold start must tune");
    assert_eq!(cold.tuning_trials_saved, 0);
    engine.shutdown().unwrap();
    assert!(path.exists(), "shutdown persists records");

    // "Process" 2: same record file, fresh engine (empty compiled cache).
    let engine = Engine::new(config).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    let result = model.infer(request(2)).unwrap();
    assert!(
        !result.compile_cache_hit,
        "fresh process has no compiled graphs"
    );
    let warm = engine.stats();
    assert_eq!(warm.tuning_trials_run, 0, "warm start must not tune");
    assert!(warm.tuning_seconds_run == 0.0);
    assert_eq!(warm.tuning_trials_saved, cold.tuning_trials_run);
    engine.shutdown().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warmup_precompiles_off_the_request_path() {
    let (_engine, model) = quick_engine(4);
    assert!(!model.warmup(1).unwrap());
    assert!(model.warmup(1).unwrap());
    let result = model.infer(request(5)).unwrap();
    assert!(result.compile_cache_hit);
}

#[test]
fn unknown_model_and_bad_input_are_reported() {
    let (engine, model) = quick_engine(2);
    // A handle whose model was never registered under that name cannot
    // exist; unknown-model surfaces through an unloaded handle.
    let ghost = engine.register(ModelSpec::new("ghost", mlp)).unwrap();
    ghost.unload();
    match ghost.infer(Request::new(vec![vec![0.0; 24]])) {
        Err(EngineError::UnknownModel(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    match model.infer(Request::new(vec![vec![0.0; 7]])) {
        Err(EngineError::BadInput(msg)) => assert!(msg.contains("expected 24"), "{msg}"),
        other => panic!("expected BadInput, got {other:?}"),
    }
    match model.infer(Request::new(vec![])) {
        Err(EngineError::BadInput(_)) => {}
        other => panic!("expected BadInput, got {other:?}"),
    }
    // A bad request must not poison concurrent good ones.
    let good = model.infer(request(3)).unwrap();
    assert_eq!(good.outputs[0].len(), 6);
    assert_eq!(engine.stats().failures, 3);
}

#[test]
fn registering_an_empty_name_is_rejected() {
    let engine = Engine::new(EngineConfig::quick()).unwrap();
    match engine.register(ModelSpec::new("", mlp)) {
        Err(EngineError::BadInput(_)) => {}
        other => panic!("expected BadInput, got {other:?}"),
    }
}

#[test]
fn unbatched_models_never_coalesce() {
    // Transformer-style models fold batch into the sequence axis, so
    // coalescing would mix requests; `ModelSpec::unbatched` must pin them to
    // batch-1 dispatch even under a burst with batching enabled.
    let engine = Engine::new(EngineConfig {
        max_batch: 8,
        batch_window: Duration::from_millis(25),
        ..EngineConfig::quick()
    })
    .expect("engine starts");
    let solo = engine
        .register(ModelSpec::new("mlp-solo", mlp).unbatched())
        .unwrap();
    for result in solo.infer_many((0..4).map(request).collect()) {
        let result = result.expect("infers");
        assert_eq!(result.batch_size, 1, "unbatched model was coalesced");
    }
    let stats = engine.stats();
    assert_eq!(stats.batches, 4);
    assert_eq!(stats.requests, 4);
}

#[test]
fn adopted_tuning_cache_still_absorbs_records_file() {
    // A shared in-memory cache plus a records path: the file must be merged
    // in at startup, not silently overwritten at shutdown.
    let path = unique_temp_path("adopted");
    let _ = std::fs::remove_file(&path);

    let warm = EngineConfig {
        max_batch: 1,
        tuning_records_path: Some(path.clone()),
        ..EngineConfig::default()
    };
    let engine = Engine::new(warm.clone()).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.infer(request(1)).unwrap();
    engine.shutdown().unwrap();
    let persisted = hidet_sched::TuningCache::load(&path).unwrap().len();
    assert!(persisted > 0);

    // Second engine adopts its own (empty) shared cache AND names the path.
    let shared = std::sync::Arc::new(std::sync::Mutex::new(hidet_sched::TuningCache::new()));
    let config = EngineConfig {
        options: hidet::CompilerOptions::tuned().with_tuning_cache(shared.clone()),
        ..warm
    };
    let engine = Engine::new(config).unwrap();
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    model.infer(request(2)).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.tuning_trials_run, 0, "merged records must warm-start");
    engine.shutdown().unwrap();
    assert!(
        hidet_sched::TuningCache::load(&path).unwrap().len() >= persisted,
        "shutdown must not lose previously persisted records"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn tuned_compile_failure_is_typed_and_workers_survive() {
    // A device too small for any matmul schedule: tuned compiles must fail
    // with EngineError::Compile (not a tuner panic that kills the worker),
    // and the pool must keep serving.
    let engine = Engine::new(EngineConfig {
        devices: vec![hidet_sim::GpuSpec {
            shared_mem_per_block: 1,
            ..hidet_sim::GpuSpec::tiny()
        }],
        workers: 1,
        max_batch: 1,
        ..EngineConfig::default() // tuned options
    })
    .expect("engine starts");
    let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
    for attempt in 0..3 {
        match model.infer(request(attempt)) {
            Err(EngineError::Compile(e)) => {
                assert!(e.to_string().contains("no matmul schedule"), "{e}");
            }
            other => panic!("attempt {attempt}: expected Compile error, got {other:?}"),
        }
    }
    assert_eq!(
        engine.stats().failures,
        3,
        "every request got a typed reply"
    );
}

#[test]
fn dropped_engine_flushes_tuning_records() {
    // Dropping the engine without an explicit `shutdown()` must still
    // persist tuning records — that's the only exit path a panicking or
    // careless caller takes.
    let path = unique_temp_path("drop-flush");
    let _ = std::fs::remove_file(&path);
    {
        let engine = Engine::new(EngineConfig {
            max_batch: 1,
            tuning_records_path: Some(path.clone()),
            ..EngineConfig::default() // tuned options
        })
        .unwrap();
        let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
        model.infer(request(1)).unwrap();
        drop(model);
        // no shutdown()
    }
    assert!(path.exists(), "Drop must flush tuning records");
    assert!(!hidet_sched::TuningCache::load(&path).unwrap().is_empty());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn panicking_caller_keeps_tuning_records() {
    // A panic unwinding through the engine owner still persists records:
    // Drop flushes before joining threads.
    let path = unique_temp_path("panic-flush");
    let _ = std::fs::remove_file(&path);
    let config = EngineConfig {
        max_batch: 1,
        tuning_records_path: Some(path.clone()),
        ..EngineConfig::default() // tuned options
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let engine = Engine::new(config).unwrap();
        let model = engine.register(ModelSpec::new("mlp", mlp)).unwrap();
        model.infer(request(1)).unwrap();
        panic!("caller blew up after tuning");
    }));
    assert!(result.is_err(), "the panic must propagate");
    assert!(path.exists(), "records survive a panicking caller");
    assert!(!hidet_sched::TuningCache::load(&path).unwrap().is_empty());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn model_zoo_builders_plug_in_directly() {
    // The registry contract is exactly the zoo's `fn(batch) -> Graph` shape.
    // Compile-only (`warmup`): functionally interpreting a full transformer
    // on the simulated GPU is minutes of debug-build work, and the batching
    // path's functional correctness is covered by the MLP tests above.
    let engine = Engine::new(EngineConfig {
        max_batch: 2,
        batch_window: Duration::from_millis(10),
        ..EngineConfig::quick()
    })
    .unwrap();
    // Transformers fold batch into the sequence axis → never coalesce them.
    let gpt2 = engine
        .register(ModelSpec::new("gpt2", |b| hidet_graph::models::gpt2(b, 32)).unbatched())
        .unwrap();
    assert!(!gpt2.warmup(1).unwrap(), "first compile is a miss");
    assert!(gpt2.warmup(1).unwrap(), "second compile is a hit");
    assert_eq!(engine.compiled_graphs(), 1);
}

#[test]
fn engine_run_equals_direct_compile_run() {
    // The batching path must be a pure refactor of compile+run.
    let (_engine, model) = quick_engine(2);
    let input = sample_input(42);
    let via_engine = model.infer(Request::new(vec![input.clone()])).unwrap();

    let graph = mlp(1);
    let gpu = Gpu::default();
    let compiled = hidet::compile(&graph, &gpu, &hidet::CompilerOptions::quick()).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(graph.inputs()[0], input);
    let direct = compiled.run(&inputs, &gpu).unwrap();
    let direct_out = &direct[&graph.outputs()[0]];
    for (a, b) in via_engine.outputs[0].iter().zip(direct_out) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}

#[test]
fn v2_handles_cover_the_retired_v1_surface() {
    // The five v1 free functions (load / load_unbatched / warmup / submit_with
    // / infer*) are gone; this pins their replacements: every former entry
    // point maps onto ModelSpec + ModelHandle + the Request builder.
    let engine = Engine::new(EngineConfig {
        max_batch: 2,
        batch_window: Duration::from_millis(10),
        ..EngineConfig::quick()
    })
    .unwrap();
    let handle = engine.register(ModelSpec::new("mlp", mlp)).unwrap(); // was `load`
    handle.warmup(1).unwrap(); // was `Engine::warmup`
    let direct = handle.infer(request(1)).unwrap(); // was `Engine::infer`
    assert_eq!(direct.outputs[0].len(), 6);
    let opted = handle // was `infer_with` + SubmitOptions
        .infer(
            Request::new(vec![sample_input(2)])
                .high()
                .with_timeout(Duration::from_secs(5)),
        )
        .unwrap();
    assert_eq!(opted.priority, hidet_runtime::Priority::High);
    let many = handle.infer_many(vec![request(3), request(4)]); // was `Engine::infer_many`
    assert!(many.iter().all(|r| r.is_ok()));
    // was `load_unbatched`: the batching mode now lives on the spec.
    let solo = engine
        .register(ModelSpec::new("mlp_solo", mlp).unbatched())
        .unwrap();
    let result = solo.infer(request(5)).unwrap();
    assert_eq!(result.batch_size, 1);
}
