//! Integration tests of the decode subsystem: continuous batching
//! correctness (bit-identity against solo runs), KV eviction + recompute,
//! priority/deadline handling, and the serving-engine stats hook.

use std::time::{Duration, Instant};

use hidet_decode::{
    BatchingMode, DecodeConfig, DecodeEngine, DecodeError, DecodeModelSpec, GenerateRequest,
    SessionPoll,
};
use hidet_runtime::Priority;
use hidet_sim::GpuSpec;
use proptest::prelude::*;

/// A tiny decode model the interpreter chews through quickly: 1 layer,
/// hidden 16, 2 heads, vocabulary 16, context window 12.
fn tiny_spec() -> DecodeModelSpec {
    DecodeModelSpec::transformer("tiny", 1, 16, 2, 16, 12)
}

fn engine(max_batch: usize, kv_blocks: usize, block_tokens: usize) -> DecodeEngine {
    DecodeEngine::new(DecodeConfig {
        max_batch,
        kv_blocks,
        block_tokens,
        ..DecodeConfig::default()
    })
}

#[test]
fn single_session_generates_and_frees_blocks() {
    let engine = engine(2, 16, 4);
    let model = engine.register(tiny_spec()).unwrap();
    let generation = model
        .generate(GenerateRequest::new(vec![1, 2, 3], 6))
        .collect()
        .unwrap();
    assert_eq!(generation.tokens.len(), 6);
    assert!(generation.tokens.iter().all(|&t| t < 16));
    assert!(generation.ttft_from_submit_seconds > 0.0);
    assert!(generation.ttft_from_admission_seconds <= generation.ttft_from_submit_seconds);
    assert!(generation.completion_sim_seconds >= generation.ttft_from_submit_seconds);
    let stats = engine.stats();
    assert_eq!(stats.sequences_completed, 1);
    assert_eq!(stats.tokens_generated, 6);
    assert_eq!(
        stats.prompt_tokens, 2,
        "prompt tail fed with outputs ignored"
    );
    assert_eq!(
        stats.kv_blocks_in_use, 0,
        "no block leaked after session end"
    );
    assert!(
        stats.kv_blocks_peak >= 2,
        "8 cached tokens need two 4-blocks"
    );
    assert!(stats.tokens_per_second > 0.0);
}

#[test]
fn next_timeout_streams_tokens_and_reports_finish() {
    let engine = engine(2, 16, 4);
    let model = engine.register(tiny_spec()).unwrap();
    let mut session = model.generate(GenerateRequest::new(vec![1, 2], 4));
    let mut tokens = Vec::new();
    let mut pending_seen = false;
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "generation stalled");
        match session.next_timeout(Duration::from_micros(200)).unwrap() {
            SessionPoll::Token(event) => {
                assert_eq!(event.index, tokens.len());
                tokens.push(event.token);
            }
            SessionPoll::Pending => pending_seen = true,
            SessionPoll::Finished => break,
        }
    }
    assert_eq!(tokens.len(), 4);
    assert!(pending_seen, "a 200us poll should observe at least one gap");
    // Past the end the poll keeps reporting Finished instead of blocking.
    assert_eq!(
        session.next_timeout(Duration::from_millis(1)).unwrap(),
        SessionPoll::Finished
    );
}

/// The dead-client path of a streaming front-end: the bridge sees the socket
/// is gone and drops the session. The engine must cancel the generation at
/// the next emission attempt and release every KV block.
///
/// Deterministic ordering via a paused engine: the session is dropped before
/// the step loop starts, so the very first token send fails and the engine
/// cancels mid-generation — it can never outrun the drop.
#[test]
fn dropping_a_session_cancels_generation_and_frees_kv_blocks() {
    let engine = DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 64,
        block_tokens: 4,
        start_paused: true,
        ..DecodeConfig::default()
    });
    let model = engine
        .register(DecodeModelSpec::transformer("tiny-long", 1, 16, 2, 16, 256))
        .unwrap();
    let session = model.generate(GenerateRequest::new(vec![7], 200));
    drop(session);
    engine.resume();
    // The engine admits the sequence, allocates blocks, emits one token into
    // a dead channel, and releases. Poll until the step ran and nothing is
    // held. (`kv_blocks_peak` stays 0 here: the gauge samples after the
    // step, when the cancelled session's blocks are already back.)
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = engine.stats();
        if stats.steps > 0 && stats.kv_blocks_in_use == 0 {
            assert!(
                stats.tokens_generated >= 1,
                "the step should have decoded a token before noticing the drop"
            );
            assert!(
                stats.tokens_generated < 200,
                "cancellation should land mid-generation, got all {} tokens",
                stats.tokens_generated
            );
            break;
        }
        assert!(Instant::now() < deadline, "KV blocks leaked after drop");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn generation_is_deterministic_across_engines() {
    let run = || {
        let engine = engine(2, 16, 4);
        let model = engine.register(tiny_spec()).unwrap();
        model
            .generate(GenerateRequest::new(vec![5, 9], 8))
            .collect()
            .unwrap()
            .tokens
    };
    assert_eq!(run(), run());
}

#[test]
fn streaming_iterator_yields_ordered_token_events() {
    let engine = engine(2, 16, 4);
    let model = engine.register(tiny_spec()).unwrap();
    let session = model.generate(GenerateRequest::new(vec![4], 5));
    let mut last_time = 0.0;
    let mut count = 0usize;
    for (i, event) in session.enumerate() {
        let event = event.unwrap();
        assert_eq!(event.index, i);
        assert!(event.sim_time_seconds >= last_time);
        last_time = event.sim_time_seconds;
        count += 1;
    }
    assert_eq!(count, 5);
}

#[test]
fn eos_token_stops_generation_early() {
    // Find the first emitted token of an unconstrained run, then rerun with
    // it as EOS: the rerun must stop right there.
    let engine = engine(2, 16, 4);
    let model = engine.register(tiny_spec()).unwrap();
    let free = model
        .generate(GenerateRequest::new(vec![7], 8))
        .collect()
        .unwrap();
    let eos = free.tokens[0];
    let stopped = model
        .generate(GenerateRequest::new(vec![7], 8).with_eos(eos))
        .collect()
        .unwrap();
    assert_eq!(stopped.tokens, vec![eos]);
}

#[test]
fn bad_prompts_are_rejected() {
    let engine = engine(2, 16, 4);
    let model = engine.register(tiny_spec()).unwrap();
    let err = |req: GenerateRequest| model.generate(req).collect().unwrap_err();
    assert!(matches!(
        err(GenerateRequest::new(vec![], 4)),
        DecodeError::BadPrompt(_)
    ));
    assert!(matches!(
        err(GenerateRequest::new(vec![99], 4)), // vocab is 16
        DecodeError::BadPrompt(_)
    ));
    assert!(matches!(
        err(GenerateRequest::new(vec![1], 0)),
        DecodeError::BadPrompt(_)
    ));
    // Context window is 12: prompt 5 + 9 generated needs 13 cache slots.
    assert!(matches!(
        err(GenerateRequest::new(vec![1, 2, 3, 4, 5], 9)),
        DecodeError::BadPrompt(_)
    ));
    // The exact fit (5 + 8 - 1 = 12) is accepted.
    let generation = model
        .generate(GenerateRequest::new(vec![1, 2, 3, 4, 5], 8))
        .collect()
        .unwrap();
    assert_eq!(generation.tokens.len(), 8);
}

#[test]
fn expired_deadline_fails_the_session() {
    let engine = engine(2, 16, 4);
    let model = engine.register(tiny_spec()).unwrap();
    let err = model
        .generate(
            GenerateRequest::new(vec![1], 4)
                .with_deadline(Instant::now() - Duration::from_millis(1)),
        )
        .collect()
        .unwrap_err();
    assert_eq!(err, DecodeError::DeadlineExceeded);
    assert_eq!(engine.stats().sequences_failed, 1);
    assert_eq!(engine.stats().kv_blocks_in_use, 0);
}

#[test]
fn unknown_model_and_closed_engine_fail_fast() {
    let engine = engine(2, 16, 4);
    let model = engine.register(tiny_spec()).unwrap();
    // A handle addresses by name: re-registration under another name does
    // not disturb it, but an unknown name fails.
    drop(model);
    let other = DecodeEngine::new(DecodeConfig::default());
    let handle = other.register(tiny_spec()).unwrap();
    other.shutdown();
    let err = handle
        .generate(GenerateRequest::new(vec![1], 2))
        .collect()
        .unwrap_err();
    assert_eq!(err, DecodeError::Closed);
}

/// The tentpole correctness property: continuous batching must be a pure
/// scheduling optimization. Every sequence's token stream is bit-identical
/// to running it alone, because the fixed-shape step graph computes each
/// batch row independently.
#[test]
fn batched_decode_matches_solo_decode_exactly() {
    let prompts: Vec<(Vec<u32>, usize)> = vec![
        (vec![3], 7),
        (vec![1, 2, 3, 4], 2),
        (vec![15, 0], 9),
        (vec![8, 8, 8], 5),
        (vec![2, 14], 3),
        (vec![11, 5, 7, 1, 9], 6),
    ];
    // Solo: one slot, generous memory — sequences run strictly alone.
    let solo_engine = engine(1, 32, 4);
    let solo_model = solo_engine.register(tiny_spec()).unwrap();
    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .map(|(p, n)| {
            solo_model
                .generate(GenerateRequest::new(p.clone(), *n))
                .collect()
                .unwrap()
                .tokens
        })
        .collect();
    // Batched: three slots, all submitted at once — sequences of different
    // lengths join and leave the running batch mid-flight.
    let batched_engine = engine(3, 32, 4);
    let batched_model = batched_engine.register(tiny_spec()).unwrap();
    let sessions: Vec<_> = prompts
        .iter()
        .map(|(p, n)| batched_model.generate(GenerateRequest::new(p.clone(), *n)))
        .collect();
    let batched: Vec<Vec<u32>> = sessions
        .into_iter()
        .map(|s| s.collect().unwrap().tokens)
        .collect();
    assert_eq!(solo, batched);
    // The batched run actually packed sequences (occupancy above one slot's
    // worth) — otherwise this test proves nothing.
    let stats = batched_engine.stats();
    assert!(
        stats.mean_step_occupancy > 1.0 / 3.0,
        "occupancy {:.2} means no packing happened",
        stats.mean_step_occupancy
    );
}

/// Same property under KV pressure: evictions + recompute must not change
/// any token, only cost extra steps.
#[test]
fn eviction_and_recompute_preserve_token_streams() {
    let prompts: Vec<(Vec<u32>, usize)> = vec![(vec![3, 1], 8), (vec![7], 9), (vec![12, 2, 4], 7)];
    let ample_engine = engine(3, 32, 2);
    let ample_model = ample_engine.register(tiny_spec()).unwrap();
    let ample: Vec<Vec<u32>> = prompts
        .iter()
        .map(|(p, n)| {
            ample_model
                .generate(GenerateRequest::new(p.clone(), *n))
                .collect()
                .unwrap()
                .tokens
        })
        .collect();

    // 8 blocks × 2 tokens = 16 cached tokens across three sequences needing
    // up to 10 each — pressure guaranteed.
    let tight_engine = engine(3, 8, 2);
    let tight_model = tight_engine.register(tiny_spec()).unwrap();
    let sessions: Vec<_> = prompts
        .iter()
        .map(|(p, n)| tight_model.generate(GenerateRequest::new(p.clone(), *n)))
        .collect();
    let tight: Vec<Vec<u32>> = sessions
        .into_iter()
        .map(|s| s.collect().unwrap().tokens)
        .collect();
    assert_eq!(ample, tight, "eviction/recompute must be invisible");
    let stats = tight_engine.stats();
    assert!(stats.kv_evictions > 0, "pressure must actually evict");
    assert!(stats.recomputed_tokens > 0);
    assert_eq!(stats.kv_blocks_in_use, 0, "no block leaked");
}

#[test]
fn kv_exhaustion_without_victims_fails_only_the_oversized_session() {
    // 3 blocks × 2 tokens = 6 cached tokens; one sequence needing 9 cannot
    // fit even with the arena to itself.
    let engine = engine(2, 3, 2);
    let model = engine.register(tiny_spec()).unwrap();
    let err = model
        .generate(GenerateRequest::new(vec![1, 2, 3, 4, 5], 6))
        .collect()
        .unwrap_err();
    assert_eq!(err, DecodeError::KvExhausted);
    // The engine remains healthy for right-sized work.
    let ok = model
        .generate(GenerateRequest::new(vec![1], 4))
        .collect()
        .unwrap();
    assert_eq!(ok.tokens.len(), 4);
    assert_eq!(engine.stats().kv_blocks_in_use, 0);
}

#[test]
fn high_priority_sessions_preempt_best_effort_kv() {
    // Arena: 4 blocks × 2 tokens. A best-effort hog takes the arena; a
    // high-priority arrival must evict it, finish first, and the hog must
    // still complete correctly afterwards.
    let solo_engine = engine(2, 32, 2);
    let solo = solo_engine.register(tiny_spec()).unwrap();
    let hog_expected = solo
        .generate(GenerateRequest::new(vec![6, 2], 7))
        .collect()
        .unwrap()
        .tokens;

    let tight = engine(2, 4, 2);
    let model = tight.register(tiny_spec()).unwrap();
    let hog =
        model.generate(GenerateRequest::new(vec![6, 2], 7).with_priority(Priority::BestEffort));
    let urgent =
        model.generate(GenerateRequest::new(vec![9, 9, 9], 5).with_priority(Priority::High));
    let urgent_done = urgent.collect().unwrap();
    let hog_done = hog.collect().unwrap();
    assert_eq!(urgent_done.tokens.len(), 5);
    assert_eq!(hog_done.tokens, hog_expected, "preempted session is exact");
    let stats = tight.stats();
    assert!(stats.kv_evictions > 0, "the hog must have been preempted");
    assert_eq!(stats.sequences_completed, 2);
    assert_eq!(stats.kv_blocks_in_use, 0);
}

#[test]
fn static_mode_serves_correctly_but_occupies_fewer_slots() {
    // The long sequence leads: its batch-mates retire early, and continuous
    // scheduling backfills their slots (static leaves them idle until the
    // long one drains) — continuous: 10 steps, static: 12.
    let prompts: Vec<(Vec<u32>, usize)> =
        vec![(vec![3], 10), (vec![1], 2), (vec![2], 2), (vec![4], 2)];
    let run = |mode: BatchingMode| {
        // Paused start: the whole workload queues before the first
        // admission, so scheduling is deterministic and the step-count
        // comparison below is exact.
        let engine = DecodeEngine::new(DecodeConfig {
            max_batch: 2,
            kv_blocks: 32,
            block_tokens: 4,
            mode,
            start_paused: true,
            ..DecodeConfig::default()
        });
        let model = engine.register(tiny_spec()).unwrap();
        let sessions: Vec<_> = prompts
            .iter()
            .map(|(p, n)| model.generate(GenerateRequest::new(p.clone(), *n)))
            .collect();
        engine.resume();
        let tokens: Vec<Vec<u32>> = sessions
            .into_iter()
            .map(|s| s.collect().unwrap().tokens)
            .collect();
        (tokens, engine.stats())
    };
    let (cont_tokens, cont) = run(BatchingMode::Continuous);
    let (stat_tokens, stat) = run(BatchingMode::Static);
    assert_eq!(
        cont_tokens, stat_tokens,
        "scheduling must not change tokens"
    );
    // Static pad-to-max burns steps on drained slots; continuous refills
    // them the moment a sequence retires.
    assert!(
        cont.steps < stat.steps,
        "continuous {} steps vs static {}",
        cont.steps,
        stat.steps
    );
    assert!(cont.tokens_per_second > stat.tokens_per_second);
}

#[test]
fn paused_engine_admits_nothing_until_resume_and_drains_on_shutdown() {
    // Sessions queue against a paused engine; resume releases them all at
    // once. A paused engine that is shut down without resume still fails
    // queued sessions instead of hanging.
    let engine = DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 16,
        block_tokens: 4,
        start_paused: true,
        ..DecodeConfig::default()
    });
    let model = engine.register(tiny_spec()).unwrap();
    let session = model.generate(GenerateRequest::new(vec![1], 3));
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(engine.stats().steps, 0, "paused engine must not step");
    engine.resume();
    assert_eq!(session.collect().unwrap().tokens.len(), 3);

    let paused = DecodeEngine::new(DecodeConfig {
        start_paused: true,
        ..DecodeConfig::default()
    });
    let model = paused.register(tiny_spec()).unwrap();
    let stuck = model.generate(GenerateRequest::new(vec![1], 3));
    paused.shutdown(); // never resumed
    assert_eq!(stuck.collect().unwrap_err(), DecodeError::Closed);
}

#[test]
fn re_registration_releases_the_old_arena() {
    // Re-registering a name replaces the model definition; once the old
    // definition's sessions drain, its KV arena must be dropped — the
    // capacity gauge stays at one arena, not one per registration.
    let engine = engine(2, 16, 4);
    for round in 0..3 {
        let model = engine.register(tiny_spec()).unwrap();
        let generation = model
            .generate(GenerateRequest::new(vec![round as u32 + 1], 3))
            .collect()
            .unwrap();
        assert_eq!(generation.tokens.len(), 3);
    }
    let stats = engine.stats();
    assert_eq!(
        stats.kv_blocks_capacity, 16,
        "departed registrations must release their arenas"
    );
    assert_eq!(stats.kv_blocks_in_use, 0);
}

#[test]
fn decode_stats_attach_to_the_serving_engine_snapshot() {
    let decode = engine(2, 16, 4);
    let model = decode.register(tiny_spec()).unwrap();
    model
        .generate(GenerateRequest::new(vec![2, 3], 4))
        .collect()
        .unwrap();
    let serving = hidet_runtime::Engine::new(hidet_runtime::EngineConfig::quick()).unwrap();
    assert!(serving.stats().decode.is_none(), "nothing attached yet");
    serving.attach_decode_stats(decode.stats_source());
    let snap = serving.stats().decode.expect("decode stats attached");
    assert_eq!(snap.tokens_generated, 4);
    assert_eq!(snap.sequences_completed, 1);
    assert!(!snap.summary().is_empty());
    serving.shutdown().unwrap();
}

/// KV pressure on a shard pool migrates sessions instead of failing them:
/// with one shard's arena full, a competing session lands on (or moves to)
/// the empty shard and completes. `KvExhausted` surfaces only when *no*
/// shard in the pool could hold the sequence even alone.
#[test]
fn kv_exhausted_only_when_no_shard_in_the_pool_fits() {
    // Reference streams from an ample single-device engine.
    let ample = engine(2, 32, 2);
    let ample_model = ample.register(tiny_spec()).unwrap();
    let reference = |prompt: Vec<u32>, n: usize| {
        ample_model
            .generate(GenerateRequest::new(prompt, n))
            .collect()
            .unwrap()
            .tokens
    };
    let hog_expected = reference(vec![1, 2], 7);
    let other_expected = reference(vec![3, 4], 6);

    // Two shards, each a 4-block × 2-token arena (8 cached tokens). The hog
    // (2 + 7 - 1 = 8 tokens) and the other session (7 tokens) each need a
    // full arena — they cannot share one, but the pool holds both.
    let pool = DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 4,
        block_tokens: 2,
        devices: vec![GpuSpec::rtx3090(), GpuSpec::rtx3090()],
        start_paused: true,
        ..DecodeConfig::default()
    });
    let model = pool.register(tiny_spec()).unwrap();
    let hog = model.generate(
        GenerateRequest::new(vec![1, 2], 7)
            .with_shard(0)
            .with_priority(Priority::High),
    );
    let other = model.generate(GenerateRequest::new(vec![3, 4], 6).with_shard(0));
    pool.resume();
    assert_eq!(other.collect().unwrap().tokens, other_expected);
    assert_eq!(hog.collect().unwrap().tokens, hog_expected);
    let stats = pool.stats();
    assert!(
        stats.sessions_migrated >= 1,
        "pressure must relocate, not evict in place: {stats:?}"
    );
    assert_eq!(stats.sequences_failed, 0, "no KvExhausted with headroom");

    // 5 + 6 - 1 = 10 cached tokens = 5 blocks: bigger than EVERY arena
    // alone — only now does the pool refuse.
    let err = model
        .generate(GenerateRequest::new(vec![1, 2, 3, 4, 5], 6))
        .collect()
        .unwrap_err();
    assert_eq!(err, DecodeError::KvExhausted);
    let stats = pool.stats();
    assert_eq!(stats.kv_blocks_in_use, 0, "no block leaked");
    for shard in &stats.shards {
        assert_eq!(shard.kv_blocks_in_use, 0, "shard leaked: {shard:?}");
    }
}

/// Satellite invariant of the multi-device stats: per-shard rows telescope
/// to the aggregates — tokens, steps and placements sum up, and every
/// migration out of one shard lands in another.
#[test]
fn per_shard_stats_telescope_to_the_aggregates() {
    let pool = DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 16,
        block_tokens: 4,
        devices: vec![GpuSpec::rtx3090(), GpuSpec::rtx3090()],
        stress_migrate_after: 2,
        ..DecodeConfig::default()
    });
    let model = pool.register(tiny_spec()).unwrap();
    let sessions: Vec<_> = workload(7, 4)
        .into_iter()
        .map(|(p, n)| model.generate(GenerateRequest::new(p, n.max(3))))
        .collect();
    for session in sessions {
        session.collect().unwrap();
    }
    let stats = pool.stats();
    assert_eq!(stats.shards.len(), 2);
    let sum = |f: fn(&hidet_runtime::DecodeShardSnapshot) -> usize| -> usize {
        stats.shards.iter().map(f).sum()
    };
    assert_eq!(sum(|s| s.tokens_generated), stats.tokens_generated);
    assert_eq!(sum(|s| s.steps), stats.steps);
    assert_eq!(sum(|s| s.sessions_placed), 4);
    assert_eq!(
        sum(|s| s.migrations_out),
        sum(|s| s.migrations_in),
        "every migration out must land somewhere"
    );
    assert_eq!(sum(|s| s.migrations_out), stats.sessions_migrated);
    assert!(stats.sessions_migrated > 0, "stress knob must force moves");
    assert!(stats.cluster_tokens_per_second > 0.0);
    assert!(
        stats.cluster_tokens_per_second >= stats.tokens_per_second,
        "parallel shards: makespan throughput can only beat summed-work"
    );
    for shard in &stats.shards {
        assert_eq!(shard.device, GpuSpec::rtx3090().name);
        assert_eq!(shard.kv_blocks_in_use, 0);
        assert!(shard.lane_share >= 1);
        assert!(shard.queue_delay_ewma_seconds >= 0.0);
    }
}

/// Deterministic PRNG (SplitMix64) deriving a random decode workload from
/// one proptest-supplied seed: prompt lengths, token values, generation
/// budgets and arrival order all vary per case.
fn workload(mut seed: u64, sequences: usize) -> Vec<(Vec<u32>, usize)> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..sequences)
        .map(|_| {
            let plen = 1 + (next() % 3) as usize;
            let prompt: Vec<u32> = (0..plen).map(|_| (next() % 16) as u32).collect();
            let max_tokens = 1 + (next() % 5) as usize;
            (prompt, max_tokens)
        })
        .collect()
}

/// A decode model sized for the chunked-prefill tests: context window 40
/// admits prompts that straddle every menu's chunk boundaries, and the
/// single tiny layer keeps the interpreter fast enough for proptest cases.
fn prefill_spec() -> DecodeModelSpec {
    DecodeModelSpec::transformer("tiny-prefill", 1, 8, 2, 12, 40)
}

fn chunked_engine(menu: Vec<usize>, budget: usize, kv_blocks: usize) -> DecodeEngine {
    DecodeEngine::new(DecodeConfig {
        max_batch: 3,
        kv_blocks,
        block_tokens: 2,
        chunk_menu: menu,
        prefill_token_budget: budget,
        ..DecodeConfig::default()
    })
}

/// Deterministic eviction-pressure scenario: a best-effort session with a
/// 17-token prompt (long enough for a 16-chunk) is preempted by a
/// high-priority arrival, so its replay chain — prompt plus already-emitted
/// tokens — must be re-absorbed *chunked* after re-admission. The stream
/// must match an ample token-wise run exactly.
#[test]
fn chunked_replay_after_eviction_matches_tokenwise() {
    let hog_prompt: Vec<u32> = (0..17).map(|i| (i * 5 % 12) as u32).collect();
    let urgent_prompt = vec![3, 7, 1, 9];

    // Reference: ample KV, empty chunk menu — pure token-wise absorption.
    let ample = DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 64,
        block_tokens: 2,
        chunk_menu: vec![],
        ..DecodeConfig::default()
    });
    let model = ample.register(prefill_spec()).unwrap();
    let hog_expected = model
        .generate(GenerateRequest::new(hog_prompt.clone(), 6))
        .collect()
        .unwrap()
        .tokens;
    let urgent_expected = model
        .generate(GenerateRequest::new(urgent_prompt.clone(), 8))
        .collect()
        .unwrap()
        .tokens;

    // Tight arena: 12 blocks of 2 tokens. The hog needs 11 blocks
    // (17 + 6 - 1 = 22 tokens), the urgent session 6 — they cannot coexist,
    // but each fits alone, so preemption (not failure) must resolve it. The
    // urgent generation is long enough (8 tokens) that it still holds its
    // blocks when the hog's cache reaches the capacity wall.
    let tight = DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 12,
        block_tokens: 2,
        chunk_menu: vec![4, 16],
        prefill_token_budget: 16,
        start_paused: true,
        ..DecodeConfig::default()
    });
    let model = tight.register(prefill_spec()).unwrap();
    let hog =
        model.generate(GenerateRequest::new(hog_prompt, 6).with_priority(Priority::BestEffort));
    let urgent =
        model.generate(GenerateRequest::new(urgent_prompt, 8).with_priority(Priority::High));
    tight.resume();
    assert_eq!(urgent.collect().unwrap().tokens, urgent_expected);
    assert_eq!(
        hog.collect().unwrap().tokens,
        hog_expected,
        "chunked replay after eviction must be invisible"
    );
    let stats = tight.stats();
    assert!(stats.kv_evictions > 0, "the hog must have been preempted");
    assert!(stats.recomputed_tokens >= 17, "replay re-feeds the chain");
    assert!(
        stats.prefill_passes >= 2,
        "both first absorption and replay must go through chunked prefill, got {}",
        stats.prefill_passes
    );
    assert!(stats.prefill_tokens > 17);
    assert_eq!(stats.kv_blocks_in_use, 0, "no block leaked");
}

/// TTFT decomposition telescopes: queue + prefill + first-decode segments
/// must sum to the full submit-to-first-token time, and a chunk that
/// finishes a prompt books a zero first-decode segment (the first token
/// rides the prefill pass itself).
#[test]
fn ttft_decomposition_telescopes() {
    let engine = chunked_engine(vec![4, 16], 16, 32);
    let model = engine.register(prefill_spec()).unwrap();
    let prompt: Vec<u32> = (0..16).map(|i| (i % 12) as u32).collect();
    let generation = model
        .generate(GenerateRequest::new(prompt, 3))
        .collect()
        .unwrap();
    assert!(generation.ttft_from_admission_seconds <= generation.ttft_from_submit_seconds);
    let stats = engine.stats();
    assert!(
        stats.prefill_passes >= 1,
        "16-token prompt uses the 16-chunk"
    );
    let sum = stats.ttft_queue_p50_seconds
        + stats.ttft_prefill_p50_seconds
        + stats.ttft_first_decode_p50_seconds;
    assert!(
        (sum - stats.ttft_p50_seconds).abs() < 1e-9,
        "queue {} + prefill {} + first-decode {} != ttft {}",
        stats.ttft_queue_p50_seconds,
        stats.ttft_prefill_p50_seconds,
        stats.ttft_first_decode_p50_seconds,
        stats.ttft_p50_seconds
    );
    // A 16-chunk consumed the whole 16-token prompt, so the first token was
    // emitted by the prefill pass itself: zero first-decode segment.
    assert_eq!(stats.ttft_first_decode_p50_seconds, 0.0);
    assert!(stats.ttft_prefill_p50_seconds > 0.0);
}

/// Chunk menus the randomized bit-identity test draws from: mixed strides,
/// including menus whose smallest chunk forces token-wise tails.
const MENUS: [&[usize]; 4] = [&[4, 16], &[3, 8], &[2, 4, 16], &[5, 12]];

/// Prompt lengths that straddle the menu's chunk boundaries: exact
/// multiples, tails of one, sub-chunk prompts, and off-by-one around the
/// largest chunk.
fn straddling_lengths(menu: &[usize], mut seed: u64) -> Vec<usize> {
    let largest = *menu.last().unwrap();
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    vec![
        1,
        largest - 1,
        largest,
        largest + 1,
        2 * largest,
        2 * largest + 1,
        1 + (next() % (2 * largest as u64)) as usize,
    ]
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

    /// Randomized bit-identity: for random prompt lengths, token values,
    /// generation budgets and staggered arrivals, continuous-batched decode
    /// emits token streams bit-identical to running each sequence alone —
    /// with the batched engine's KV arena reused (and leak-free) across the
    /// whole case.
    #[test]
    fn continuous_batching_is_bit_identical_to_solo(
        seed in 0u64..1_000_000,
        sequences in 2usize..6,
        stagger in 0usize..3,
    ) {
        let requests = workload(seed, sequences);
        let solo_engine = engine(1, 32, 4);
        let solo_model = solo_engine.register(tiny_spec()).unwrap();
        let solo: Vec<Vec<u32>> = requests
            .iter()
            .map(|(p, n)| {
                solo_model
                    .generate(GenerateRequest::new(p.clone(), *n))
                    .collect()
                    .unwrap()
                    .tokens
            })
            .collect();
        let batched_engine = engine(3, 32, 4);
        let batched_model = batched_engine.register(tiny_spec()).unwrap();
        // Staggered arrival: the tail of the workload is submitted only
        // after the head's first session completes, so late sequences join
        // a batch that is already mid-flight.
        let split = stagger.min(requests.len() - 1);
        let head: Vec<_> = requests[..requests.len() - split]
            .iter()
            .map(|(p, n)| batched_model.generate(GenerateRequest::new(p.clone(), *n)))
            .collect();
        let mut batched: Vec<Vec<u32>> = Vec::new();
        let mut head_iter = head.into_iter();
        if let Some(first) = head_iter.next() {
            batched.push(first.collect().unwrap().tokens);
        }
        let tail: Vec<_> = requests[requests.len() - split..]
            .iter()
            .map(|(p, n)| batched_model.generate(GenerateRequest::new(p.clone(), *n)))
            .collect();
        for session in head_iter.chain(tail) {
            batched.push(session.collect().unwrap().tokens);
        }
        prop_assert_eq!(batched, solo);
        prop_assert_eq!(batched_engine.stats().kv_blocks_in_use, 0);
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]

    /// The chunked-prefill signature invariant: for random chunk menus,
    /// prompt lengths straddling every chunk boundary, staggered arrivals
    /// and random generation budgets, the chunked engine's token streams are
    /// bit-identical to token-wise absorption — the prompt path changes, the
    /// math must not.
    #[test]
    fn chunked_prefill_is_bit_identical_to_tokenwise(
        seed in 0u64..1_000_000,
        menu_idx in 0usize..MENUS.len(),
        budget in 4usize..24,
        stagger in 0usize..3,
    ) {
        let menu = MENUS[menu_idx];
        let mut lengths = straddling_lengths(menu, seed);
        // Three sequences per case keep the interpreter budget sane; rotate
        // through the boundary lengths so every case straddles differently.
        let rot = (seed % lengths.len() as u64) as usize;
        lengths.rotate_left(rot);
        let requests: Vec<(Vec<u32>, usize)> = lengths
            .into_iter()
            .take(3)
            .enumerate()
            .map(|(i, plen)| {
                let prompt: Vec<u32> = (0..plen)
                    .map(|j| ((seed as usize + i * 7 + j * 3) % 12) as u32)
                    .collect();
                (prompt, 1 + (seed as usize + i) % 3)
            })
            .collect();

        // Reference: same scheduler, chunking disabled. Sessions submit
        // together — batching is already proven stream-invisible, and one
        // batched pass costs max-chain iterations instead of sum-of-chains.
        let tokenwise = chunked_engine(vec![], 0, 32);
        let model = tokenwise.register(prefill_spec()).unwrap();
        let sessions: Vec<_> = requests
            .iter()
            .map(|(p, n)| model.generate(GenerateRequest::new(p.clone(), *n)))
            .collect();
        let expected: Vec<Vec<u32>> = sessions
            .into_iter()
            .map(|s| s.collect().unwrap().tokens)
            .collect();

        let chunked = chunked_engine(menu.to_vec(), budget, 32);
        let model = chunked.register(prefill_spec()).unwrap();
        // Staggered arrival: the tail submits only after the head's first
        // session completes, so late prompts chunk into a mid-flight batch.
        let split = stagger.min(requests.len() - 1);
        let head: Vec<_> = requests[..requests.len() - split]
            .iter()
            .map(|(p, n)| model.generate(GenerateRequest::new(p.clone(), *n)))
            .collect();
        let mut streams: Vec<Vec<u32>> = Vec::new();
        let mut head_iter = head.into_iter();
        if let Some(first) = head_iter.next() {
            streams.push(first.collect().unwrap().tokens);
        }
        let tail: Vec<_> = requests[requests.len() - split..]
            .iter()
            .map(|(p, n)| model.generate(GenerateRequest::new(p.clone(), *n)))
            .collect();
        for session in head_iter.chain(tail) {
            streams.push(session.collect().unwrap().tokens);
        }
        prop_assert_eq!(streams, expected);
        let stats = chunked.stats();
        // The boundary lengths guarantee at least one chunkable prompt
        // whenever the budget admits the smallest chunk.
        if budget >= menu[0] {
            prop_assert!(stats.prefill_passes > 0);
        }
        prop_assert_eq!(stats.kv_blocks_in_use, 0);
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]

    /// The multi-device signature invariant: live migration is a pure
    /// placement decision. For random prompts, budgets and staggered
    /// arrivals, a shard pool that *forcibly migrates every session
    /// mid-generation* emits token streams bit-identical to the same
    /// workload pinned to a single shard — and releases every KV block on
    /// every shard it touched.
    #[test]
    fn migrated_session_is_bit_identical_to_pinned(
        seed in 0u64..1_000_000,
        sequences in 2usize..5,
        stagger in 0usize..3,
    ) {
        let mut requests = workload(seed, sequences);
        // At least one session must survive past the stress threshold, or a
        // degenerate draw (all budgets of 1) would see zero migrations.
        requests[0].1 = requests[0].1.max(3);
        // Pinned reference: one device, every session pinned to shard 0.
        let pinned_engine = engine(3, 32, 4);
        let pinned_model = pinned_engine.register(tiny_spec()).unwrap();
        let pinned: Vec<Vec<u32>> = requests
            .iter()
            .map(|(p, n)| {
                pinned_model
                    .generate(GenerateRequest::new(p.clone(), *n).with_shard(0))
                    .collect()
                    .unwrap()
                    .tokens
            })
            .collect();
        // Three-shard pool with the stress knob on: every session is
        // force-migrated to the next shard after its first emitted token,
        // so the replay chain crosses arenas mid-generation.
        let pool = DecodeEngine::new(DecodeConfig {
            max_batch: 3,
            kv_blocks: 32,
            block_tokens: 4,
            devices: vec![GpuSpec::rtx3090(), GpuSpec::rtx3090(), GpuSpec::rtx3090()],
            stress_migrate_after: 1,
            ..DecodeConfig::default()
        });
        let model = pool.register(tiny_spec()).unwrap();
        // Staggered arrival, as in the batching proptest: the tail submits
        // only after the head's first session completes.
        let split = stagger.min(requests.len() - 1);
        let head: Vec<_> = requests[..requests.len() - split]
            .iter()
            .map(|(p, n)| model.generate(GenerateRequest::new(p.clone(), *n)))
            .collect();
        let mut streams: Vec<Vec<u32>> = Vec::new();
        let mut head_iter = head.into_iter();
        if let Some(first) = head_iter.next() {
            streams.push(first.collect().unwrap().tokens);
        }
        let tail: Vec<_> = requests[requests.len() - split..]
            .iter()
            .map(|(p, n)| model.generate(GenerateRequest::new(p.clone(), *n)))
            .collect();
        for session in head_iter.chain(tail) {
            streams.push(session.collect().unwrap().tokens);
        }
        prop_assert_eq!(streams, pinned);
        let stats = pool.stats();
        prop_assert!(stats.sessions_migrated > 0, "stress knob must fire");
        prop_assert_eq!(stats.kv_blocks_in_use, 0);
        for shard in &stats.shards {
            prop_assert_eq!(shard.kv_blocks_in_use, 0, "leak on {}", shard.device);
        }
    }
}
