//! Shard placement scoring and queue-driven lane autoscaling for the
//! multi-device decode engine (DESIGN.md §11).
//!
//! Both halves are pure state machines so the policy is unit-testable
//! without an engine: [`placement_score`] folds a shard's estimated queue
//! delay and its KV-block headroom into one comparable number, and
//! [`LaneAutoscaler`] grows/shrinks a shard's decode lane share from the
//! observed queue-delay EWMA, bounded and hysteretic so it cannot
//! oscillate. The engine feeds them from per-shard gauges and applies their
//! outputs at admission time.

/// EWMA smoothing factor for observed queue delay. High enough that a
/// sustained queue moves the signal within a few iterations, low enough
/// that one stray admission burst does not whipsaw the lane share.
pub(crate) const QUEUE_DELAY_ALPHA: f64 = 0.35;

/// Grow the lane share when the queue-delay EWMA exceeds this many decode
/// steps' worth of simulated time — sessions are waiting longer than a
/// couple of steps, so more lanes pay for themselves.
pub(crate) const GROW_DELAY_STEPS: f64 = 2.0;

/// Shrink the lane share when the EWMA falls below this many decode steps —
/// the queue is effectively empty and idle lanes just widen the batch axis
/// for nothing. The gap between the two thresholds is the hysteresis band.
pub(crate) const SHRINK_DELAY_STEPS: f64 = 0.5;

/// Scheduler iterations between lane-share changes. One step per change
/// would track EWMA noise; the cooldown makes each move observable before
/// the next.
pub(crate) const AUTOSCALE_COOLDOWN_ITERS: u64 = 2;

/// Joint placement score of one shard for one incoming sequence: the
/// estimated queue delay a new arrival would see, plus a KV-headroom
/// penalty when the sequence's worst-case block need exceeds the shard's
/// free blocks. The penalty prices the displacement in recompute time —
/// evicting `needed - free` blocks forces that many block-tokens to be
/// re-fed, one decode-step estimate each — so a crowded-but-fast shard and
/// an idle-but-full one compare in the same unit (simulated seconds).
/// Infinity when the arena could not hold the sequence even alone (such a
/// shard must never be chosen while a feasible one exists).
pub(crate) fn placement_score(
    queue_delay: f64,
    step_estimate: f64,
    needed_blocks: usize,
    free_blocks: usize,
    capacity_blocks: usize,
    block_tokens: usize,
) -> f64 {
    if needed_blocks > capacity_blocks {
        return f64::INFINITY;
    }
    let kv_penalty = if needed_blocks > free_blocks {
        ((needed_blocks - free_blocks) * block_tokens) as f64 * step_estimate
    } else {
        0.0
    };
    queue_delay + kv_penalty
}

/// Per-shard decode lane share driven by the observed queue-delay EWMA.
///
/// The share is the shard's admission ceiling: how many of the engine's
/// `max_batch` decode slots this shard currently fills. Growth and shrink
/// are one lane at a time, separated by [`AUTOSCALE_COOLDOWN_ITERS`], and
/// the [`GROW_DELAY_STEPS`]/[`SHRINK_DELAY_STEPS`] band between the two
/// thresholds is dead — a delay hovering there changes nothing, which is
/// what keeps the controller from oscillating. Disabled autoscalers pin the
/// share at `max_share` and only track the EWMA for observability.
#[derive(Debug, Clone)]
pub(crate) struct LaneAutoscaler {
    enabled: bool,
    share: usize,
    min_share: usize,
    max_share: usize,
    ewma: f64,
    seeded: bool,
    last_change: u64,
}

impl LaneAutoscaler {
    pub(crate) fn new(enabled: bool, min_share: usize, max_share: usize) -> LaneAutoscaler {
        let max_share = max_share.max(1);
        let min_share = min_share.clamp(1, max_share);
        LaneAutoscaler {
            enabled,
            share: if enabled { min_share } else { max_share },
            min_share,
            max_share,
            ewma: 0.0,
            seeded: false,
            last_change: 0,
        }
    }

    /// The current admission ceiling.
    pub(crate) fn share(&self) -> usize {
        self.share
    }

    /// The smoothed queue delay, simulated seconds.
    pub(crate) fn ewma(&self) -> f64 {
        self.ewma
    }

    /// Feeds one queue-delay observation (simulated seconds a session has
    /// waited, or zero when the shard's queue is empty).
    pub(crate) fn observe(&mut self, delay_seconds: f64) {
        let delay = delay_seconds.max(0.0);
        if self.seeded {
            self.ewma += QUEUE_DELAY_ALPHA * (delay - self.ewma);
        } else {
            self.ewma = delay;
            self.seeded = true;
        }
    }

    /// One control decision at scheduler iteration `iteration`; returns the
    /// (possibly updated) share. `step_estimate` is the shard's decode-step
    /// latency — the unit the delay thresholds are expressed in — so the
    /// controller is a no-op until the first graph compiles.
    pub(crate) fn update(&mut self, iteration: u64, step_estimate: f64) -> usize {
        if !self.enabled || step_estimate <= 0.0 {
            return self.share;
        }
        if iteration.saturating_sub(self.last_change) < AUTOSCALE_COOLDOWN_ITERS {
            return self.share;
        }
        if self.ewma > GROW_DELAY_STEPS * step_estimate && self.share < self.max_share {
            self.share += 1;
            self.last_change = iteration;
        } else if self.ewma < SHRINK_DELAY_STEPS * step_estimate && self.share > self.min_share {
            self.share -= 1;
            self.last_change = iteration;
        }
        self.share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_prefers_short_queues_then_charges_for_evictions() {
        // Same headroom: the shorter queue wins.
        let idle = placement_score(0.0, 1e-5, 2, 8, 8, 16);
        let busy = placement_score(3e-5, 1e-5, 2, 8, 8, 16);
        assert!(idle < busy);
        // Fits in free blocks: no penalty regardless of margin.
        assert_eq!(placement_score(0.0, 1e-5, 8, 8, 8, 16), 0.0);
        // Over free but under capacity: displaced block-tokens priced in
        // step estimates (2 blocks * 16 tokens * 1e-5).
        let crowded = placement_score(0.0, 1e-5, 6, 4, 8, 16);
        assert!((crowded - 32.0e-5).abs() < 1e-12);
        // A busy-but-roomy shard can still beat an idle-but-full one.
        assert!(busy < crowded);
        // Infeasible arena: never chosen while an alternative exists.
        assert_eq!(placement_score(0.0, 1e-5, 9, 0, 8, 16), f64::INFINITY);
    }

    #[test]
    fn autoscaler_grows_under_sustained_queue_delay() {
        let mut scaler = LaneAutoscaler::new(true, 1, 4);
        assert_eq!(scaler.share(), 1);
        let est = 1e-5;
        for i in 0..40u64 {
            scaler.observe(10.0 * est);
            scaler.update(i, est);
        }
        assert_eq!(scaler.share(), 4, "sustained delay must reach max share");
    }

    #[test]
    fn autoscaler_shrinks_when_the_queue_drains() {
        let mut scaler = LaneAutoscaler::new(true, 1, 4);
        let est = 1e-5;
        for i in 0..40u64 {
            scaler.observe(10.0 * est);
            scaler.update(i, est);
        }
        for i in 40..120u64 {
            scaler.observe(0.0);
            scaler.update(i, est);
        }
        assert_eq!(scaler.share(), 1, "a drained queue must shrink to min");
    }

    #[test]
    fn hysteresis_band_holds_the_share_steady() {
        let mut scaler = LaneAutoscaler::new(true, 1, 4);
        let est = 1e-5;
        for i in 0..20u64 {
            scaler.observe(10.0 * est);
            scaler.update(i, est);
        }
        let settled = scaler.share();
        // A delay inside (SHRINK, GROW) * est moves nothing, ever.
        for i in 20..200u64 {
            scaler.observe(1.0 * est);
            assert_eq!(scaler.update(i, est), settled);
        }
    }

    #[test]
    fn cooldown_spaces_changes_and_bounds_hold() {
        let mut scaler = LaneAutoscaler::new(true, 2, 4);
        assert_eq!(scaler.share(), 2);
        let est = 1e-5;
        let mut changes = Vec::new();
        let mut prev = scaler.share();
        for i in 0..30u64 {
            scaler.observe(100.0 * est);
            let share = scaler.update(i, est);
            if share != prev {
                changes.push(i);
                prev = share;
            }
        }
        assert_eq!(prev, 4);
        for pair in changes.windows(2) {
            assert!(
                pair[1] - pair[0] >= AUTOSCALE_COOLDOWN_ITERS,
                "changes at {changes:?} violate the cooldown"
            );
        }
        // Shrink floor: never below min_share.
        for i in 30..200u64 {
            scaler.observe(0.0);
            scaler.update(i, est);
        }
        assert_eq!(scaler.share(), 2);
    }

    #[test]
    fn disabled_autoscaler_pins_max_share_but_tracks_ewma() {
        let mut scaler = LaneAutoscaler::new(false, 1, 4);
        assert_eq!(scaler.share(), 4);
        for i in 0..20u64 {
            scaler.observe(1.0);
            assert_eq!(scaler.update(i, 1e-5), 4);
        }
        assert!(scaler.ewma() > 0.5);
    }

    #[test]
    fn ewma_seeds_from_the_first_observation() {
        let mut scaler = LaneAutoscaler::new(true, 1, 4);
        scaler.observe(0.5);
        assert!((scaler.ewma() - 0.5).abs() < 1e-12);
        scaler.observe(0.5);
        assert!((scaler.ewma() - 0.5).abs() < 1e-12);
        scaler.observe(-1.0); // clamped to zero
        assert!(scaler.ewma() < 0.5 && scaler.ewma() >= 0.0);
    }
}
