//! # hidet-decode — autoregressive decoding with KV-cache sessions and
//! continuous batching
//!
//! The serving runtime (`hidet-runtime`) answers **one-shot** inference: a
//! request is a single forward pass. The dominant real-world transformer
//! workload is different — token-by-token *generation*, where every request
//! is a long-lived **session** carrying per-layer key/value caches, and the
//! right scheduling granularity is one model *step*, not one request. This
//! crate serves that workload on the simulated GPU (DESIGN.md §7):
//!
//! * **decode-step graphs** ([`hidet_graph::models::transformer_decode_step`]):
//!   KV caches enter as graph inputs and leave, extended by one token
//!   (concat along the sequence axis), as graph outputs; attention is
//!   causally masked over `past_len + 1` positions. The graph is compiled
//!   once at a fixed `(max_batch, max_context)` shape — the *scheduler*, not
//!   the graph, owns batching, and every row's computation is bit-identical
//!   whether a sequence runs alone or packed with others;
//! * **block-granular KV allocation** ([`KvAllocator`]): caches live in one
//!   persistent `DeviceMemory` arena between steps, carved into fixed-size
//!   blocks allocated as sequences grow and freed as a set on completion;
//!   step inputs/outputs move device-to-device, so the steady state performs
//!   zero heap allocations for caches;
//! * **continuous (iteration-level) batching** ([`DecodeEngine`]): every
//!   step forms a batch from *all* active sequences, admitting new prompts
//!   mid-flight and retiring finished sequences immediately — sustaining
//!   ≥2× the tokens/sec of static pad-to-max batching on mixed-length
//!   workloads (the `serving_decode` bench). Requests carry the runtime's
//!   [`hidet_runtime::Priority`] classes and optional deadlines;
//! * **chunked multi-token prefill** ([`hidet_graph::models::transformer_prefill`]):
//!   long prompts absorb through fixed-shape prefill graphs — the largest
//!   compiled chunk fitting the remaining prompt, interleaved with decode
//!   steps under a per-iteration token budget — so a 512-token prompt costs
//!   a few prefill passes instead of 512 scheduler steps, cutting TTFT ≥2×
//!   on the `serving_decode` long-prompt mix while the budget bounds the
//!   ITL bubble of in-flight sessions. Token streams and KV contents stay
//!   **bit-identical** to token-wise absorption;
//! * **eviction + recompute**: under KV memory pressure the lowest-ranked
//!   sequence is preempted — blocks freed, tokens later re-fed (chunked,
//!   via the same election path) to rebuild the cache — so high-priority
//!   sessions always make progress;
//! * **multi-device decode** ([`DecodeConfig::devices`], DESIGN.md §11):
//!   one decode *shard* per configured [`hidet_sim::GpuSpec`], each with its
//!   own KV arena, compiled graphs and iteration scheduler. New sessions
//!   land on the shard minimizing estimated queue delay plus a KV-headroom
//!   penalty; KV pressure *live-migrates* sessions to roomier shards via
//!   the eviction/recompute chain (token streams stay bit-identical); each
//!   shard's decode lane share autoscales from its queue-delay EWMA,
//!   bounded and hysteretic ([`DecodeConfig::lane_autoscale`]);
//! * **token-level observability**: TTFT from submit *and* from admission,
//!   decomposed into queue / prefill / first-decode segments, inter-token
//!   latency p50/p95, decode and prefill tokens/sec, interleave occupancy
//!   and KV gauges, snapshotted as [`hidet_runtime::DecodeStatsSnapshot`]
//!   and attachable to the serving engine's `StatsSnapshot` via
//!   `Engine::attach_decode_stats`.
//!
//! ## Quickstart
//!
//! ```
//! use hidet_decode::{DecodeConfig, DecodeEngine, DecodeModelSpec, GenerateRequest};
//!
//! let engine = DecodeEngine::new(DecodeConfig {
//!     max_batch: 2,
//!     kv_blocks: 16,
//!     block_tokens: 4,
//!     ..DecodeConfig::default()
//! });
//! // A tiny 1-layer transformer: vocabulary 16, context window 12.
//! let model = engine.register(DecodeModelSpec::transformer("tiny", 1, 16, 2, 16, 12))?;
//!
//! let session = model.generate(GenerateRequest::new(vec![3, 1, 4], 5));
//! let generation = session.collect()?;
//! assert_eq!(generation.tokens.len(), 5);
//! assert!(generation.ttft_from_submit_seconds > 0.0);
//!
//! let stats = engine.stats();
//! assert_eq!(stats.tokens_generated, 5);
//! assert_eq!(stats.kv_blocks_in_use, 0, "session end frees every block");
//! # Ok::<(), hidet_decode::DecodeError>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod kv;
pub(crate) mod placement;
pub(crate) mod stats;

pub use engine::{
    BatchingMode, DecodeConfig, DecodeEngine, DecodeError, DecodeModel, DecodeModelSpec,
    DecodeSession, GenerateRequest, Generation, SessionPoll, TokenEvent,
};
pub use kv::{KvAllocator, KvCache, KvError, KvLayout, KvSlot};
