//! Live decode metrics, snapshotted into
//! [`hidet_runtime::DecodeStatsSnapshot`] (the shared observability type the
//! serving engine surfaces through `StatsSnapshot::decode`). Latency
//! distributions reuse the runtime's bounded
//! [`LatencyReservoir`](hidet_runtime::LatencyReservoir).
//!
//! Since the multi-device refactor the aggregate counters are joined by one
//! [`DecodeShardStats`] block per decode shard: each shard owns its own
//! simulated clock (shards model *parallel* devices, so their busy times
//! overlap rather than add) plus the placement gauges `generate` reads to
//! score shards without touching the step loop's state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use hidet_runtime::{DecodeShardSnapshot, DecodeStatsSnapshot, LatencyReservoir};

/// Placement inputs the step loop publishes after each pass, read by
/// `generate` under the waiting lock to score this shard.
#[derive(Debug, Default)]
pub(crate) struct ShardGauges {
    /// Estimated remaining simulated seconds of each active sequence.
    pub(crate) active_remaining: Vec<f64>,
    /// Decode-step latency estimate, simulated seconds (0 until the first
    /// graph compiles on this shard).
    pub(crate) step_estimate: f64,
    /// `(free, capacity)` KV blocks per model arena, keyed by `ModelDef`
    /// identity. Models without an arena yet default to a full arena.
    pub(crate) kv_free: HashMap<usize, (usize, usize)>,
}

/// Counters, clock and gauges of one decode shard.
#[derive(Debug, Default)]
pub(crate) struct DecodeShardStats {
    /// The shard's device name (its `GpuSpec::name`).
    pub(crate) device: String,
    /// Sessions the placement policy landed here at submission.
    pub(crate) placed: AtomicUsize,
    /// Live sessions migrated onto this shard.
    pub(crate) migrations_in: AtomicUsize,
    /// Live sessions migrated off this shard.
    pub(crate) migrations_out: AtomicUsize,
    pub(crate) tokens: AtomicUsize,
    pub(crate) steps: AtomicUsize,
    pub(crate) kv_in_use: AtomicUsize,
    pub(crate) kv_peak: AtomicUsize,
    pub(crate) kv_capacity: AtomicUsize,
    /// Current decode lane share (admission ceiling) of this shard.
    pub(crate) lane_share: AtomicUsize,
    /// Queue-delay EWMA driving the lane autoscaler, scaled by 1e9.
    pub(crate) queue_delay_ewma_nanos: AtomicU64,
    /// Simulated seconds this shard spent in decode steps, scaled by 1e9.
    pub(crate) sim_decode_nanos: AtomicU64,
    /// Simulated seconds this shard spent in prefill passes, scaled by 1e9.
    pub(crate) sim_prefill_nanos: AtomicU64,
    /// The shard's simulated clock (decode + prefill), scaled by 1e9 — the
    /// timeline all of this shard's sequence stamps live on.
    pub(crate) sim_clock_nanos: AtomicU64,
    pub(crate) gauges: Mutex<ShardGauges>,
}

impl DecodeShardStats {
    pub(crate) fn sim_clock(&self) -> f64 {
        self.sim_clock_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// Atomic counters + bounded reservoirs updated by the step loop; cheap to
/// read from any thread ([`DecodeStats::snapshot`]).
///
/// Anything a shard can account for itself lives **only** in its
/// [`DecodeShardStats`] block — tokens, steps, KV occupancy/capacity and the
/// simulated decode/prefill work are summed from the shards at snapshot
/// time, so the aggregate always telescopes over the per-shard numbers by
/// construction. The fields kept here are the ones no single shard owns:
/// sequence outcomes, prompt/prefill pipeline counters, and `kv_peak` (the
/// peak of the *summed* occupancy, which is not the sum of per-shard peaks).
#[derive(Debug)]
pub(crate) struct DecodeStats {
    pub(crate) completed: AtomicUsize,
    pub(crate) failed: AtomicUsize,
    pub(crate) prompt_tokens: AtomicUsize,
    /// Sum over steps of occupied decode slots (÷ steps ÷ max_batch =
    /// occupancy).
    pub(crate) occupied_slots: AtomicUsize,
    /// Decode slots per step (set once at engine construction).
    pub(crate) max_batch: AtomicUsize,
    /// Peak of the cluster-wide KV occupancy (updated where the summed
    /// occupancy is computed; a per-shard peak cannot reconstruct it).
    pub(crate) kv_peak: AtomicUsize,
    pub(crate) kv_evictions: AtomicUsize,
    pub(crate) recomputed_tokens: AtomicUsize,
    /// Prompt tokens absorbed through chunked prefill passes.
    pub(crate) prefill_tokens: AtomicUsize,
    /// Chunked prefill forward passes executed.
    pub(crate) prefill_passes: AtomicUsize,
    /// Scheduler iterations that ran at least one prefill pass.
    pub(crate) prefill_iterations: AtomicUsize,
    /// Prefill iterations that also ran a decode step — prefill riding along
    /// with in-flight decodes instead of stalling the engine.
    pub(crate) interleaved_iterations: AtomicUsize,
    /// One stats block per decode shard.
    pub(crate) shards: Vec<DecodeShardStats>,
    // [ttft(submit), itl, ttft(admission), queue, prefill, first-decode]
    reservoirs: Mutex<[LatencyReservoir; 6]>,
}

impl Default for DecodeStats {
    fn default() -> DecodeStats {
        DecodeStats::for_shards(vec![String::new()])
    }
}

impl DecodeStats {
    /// Stats with one [`DecodeShardStats`] block per device label.
    pub(crate) fn for_shards(devices: Vec<String>) -> DecodeStats {
        let shards = devices
            .into_iter()
            .map(|device| DecodeShardStats {
                device,
                ..DecodeShardStats::default()
            })
            .collect();
        DecodeStats {
            completed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            prompt_tokens: AtomicUsize::new(0),
            occupied_slots: AtomicUsize::new(0),
            max_batch: AtomicUsize::new(0),
            kv_peak: AtomicUsize::new(0),
            kv_evictions: AtomicUsize::new(0),
            recomputed_tokens: AtomicUsize::new(0),
            prefill_tokens: AtomicUsize::new(0),
            prefill_passes: AtomicUsize::new(0),
            prefill_iterations: AtomicUsize::new(0),
            interleaved_iterations: AtomicUsize::new(0),
            shards,
            reservoirs: Mutex::new(Default::default()),
        }
    }

    /// Shard `s`'s simulated clock, seconds.
    pub(crate) fn shard_clock(&self, s: usize) -> f64 {
        self.shards[s].sim_clock()
    }

    /// Advances shard `s`'s clock by one decode step, booking the time on
    /// the shard only — the aggregate decode-work number is derived by
    /// summing the shards at snapshot time. Returns the shard's new clock.
    pub(crate) fn advance_shard_clock(&self, s: usize, seconds: f64) -> f64 {
        let nanos = (seconds * 1e9) as u64;
        let shard = &self.shards[s];
        shard.sim_decode_nanos.fetch_add(nanos, Ordering::Relaxed);
        let now = shard.sim_clock_nanos.fetch_add(nanos, Ordering::Relaxed) + nanos;
        now as f64 / 1e9
    }

    /// [`DecodeStats::advance_shard_clock`] for prefill passes: advances the
    /// shard clock but books the time under the prefill counter.
    pub(crate) fn advance_shard_prefill_clock(&self, s: usize, seconds: f64) -> f64 {
        let nanos = (seconds * 1e9) as u64;
        let shard = &self.shards[s];
        shard.sim_prefill_nanos.fetch_add(nanos, Ordering::Relaxed);
        let now = shard.sim_clock_nanos.fetch_add(nanos, Ordering::Relaxed) + nanos;
        now as f64 / 1e9
    }

    pub(crate) fn record_ttft(&self, seconds: f64) {
        self.reservoirs.lock().expect("stats poisoned")[0].push(seconds);
    }

    pub(crate) fn record_itl(&self, seconds: f64) {
        self.reservoirs.lock().expect("stats poisoned")[1].push(seconds);
    }

    pub(crate) fn record_ttft_admission(&self, seconds: f64) {
        self.reservoirs.lock().expect("stats poisoned")[2].push(seconds);
    }

    pub(crate) fn record_ttft_queue(&self, seconds: f64) {
        self.reservoirs.lock().expect("stats poisoned")[3].push(seconds);
    }

    pub(crate) fn record_ttft_prefill(&self, seconds: f64) {
        self.reservoirs.lock().expect("stats poisoned")[4].push(seconds);
    }

    pub(crate) fn record_ttft_first_decode(&self, seconds: f64) {
        self.reservoirs.lock().expect("stats poisoned")[5].push(seconds);
    }

    pub(crate) fn snapshot(&self) -> DecodeStatsSnapshot {
        let pct = {
            let r = self.reservoirs.lock().expect("stats poisoned");
            let both = |i: usize| (r[i].percentile(0.50), r[i].percentile(0.95));
            [both(0), both(1), both(2), both(3), both(4), both(5)]
        };
        let [(ttft_p50, ttft_p95), (itl_p50, itl_p95), adm, queue, prefill, first] = pct;
        let max_batch = self.max_batch.load(Ordering::Relaxed);
        let prefill_tokens = self.prefill_tokens.load(Ordering::Relaxed);
        let prefill_iterations = self.prefill_iterations.load(Ordering::Relaxed);
        let shards: Vec<DecodeShardSnapshot> = self
            .shards
            .iter()
            .map(|s| {
                let shard_tokens = s.tokens.load(Ordering::Relaxed);
                let decode_seconds = s.sim_decode_nanos.load(Ordering::Relaxed) as f64 / 1e9;
                DecodeShardSnapshot {
                    device: s.device.clone(),
                    sessions_placed: s.placed.load(Ordering::Relaxed),
                    migrations_in: s.migrations_in.load(Ordering::Relaxed),
                    migrations_out: s.migrations_out.load(Ordering::Relaxed),
                    tokens_generated: shard_tokens,
                    steps: s.steps.load(Ordering::Relaxed),
                    kv_blocks_in_use: s.kv_in_use.load(Ordering::Relaxed),
                    kv_blocks_peak: s.kv_peak.load(Ordering::Relaxed),
                    kv_blocks_capacity: s.kv_capacity.load(Ordering::Relaxed),
                    lane_share: s.lane_share.load(Ordering::Relaxed),
                    queue_delay_ewma_seconds: s.queue_delay_ewma_nanos.load(Ordering::Relaxed)
                        as f64
                        / 1e9,
                    simulated_decode_seconds: decode_seconds,
                    simulated_busy_seconds: s.sim_clock(),
                    tokens_per_second: if decode_seconds > 0.0 {
                        shard_tokens as f64 / decode_seconds
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        // The aggregates telescope over the shard snapshots by construction:
        // each is the sum of the per-shard values captured above (prefill
        // work sums the raw per-shard counters — the shard snapshot only
        // carries decode + busy time).
        let steps: usize = shards.iter().map(|s| s.steps).sum();
        let tokens: usize = shards.iter().map(|s| s.tokens_generated).sum();
        let kv_in_use: usize = shards.iter().map(|s| s.kv_blocks_in_use).sum();
        let kv_capacity: usize = shards.iter().map(|s| s.kv_blocks_capacity).sum();
        let sim_seconds: f64 = shards.iter().map(|s| s.simulated_decode_seconds).sum();
        let prefill_seconds = self
            .shards
            .iter()
            .map(|s| s.sim_prefill_nanos.load(Ordering::Relaxed))
            .sum::<u64>() as f64
            / 1e9;
        // Shards model parallel devices: cluster throughput divides by the
        // busiest shard's timeline (the makespan), not the summed busy time.
        let makespan = shards
            .iter()
            .map(|s| s.simulated_busy_seconds)
            .fold(0.0f64, f64::max);
        let sessions_migrated = shards.iter().map(|s| s.migrations_out).sum();
        DecodeStatsSnapshot {
            sequences_completed: self.completed.load(Ordering::Relaxed),
            sequences_failed: self.failed.load(Ordering::Relaxed),
            tokens_generated: tokens,
            prompt_tokens: self.prompt_tokens.load(Ordering::Relaxed),
            steps,
            mean_step_occupancy: if steps == 0 || max_batch == 0 {
                0.0
            } else {
                self.occupied_slots.load(Ordering::Relaxed) as f64 / (steps * max_batch) as f64
            },
            ttft_p50_seconds: ttft_p50,
            ttft_p95_seconds: ttft_p95,
            itl_p50_seconds: itl_p50,
            itl_p95_seconds: itl_p95,
            ttft_from_admission_p50_seconds: adm.0,
            ttft_from_admission_p95_seconds: adm.1,
            ttft_queue_p50_seconds: queue.0,
            ttft_queue_p95_seconds: queue.1,
            ttft_prefill_p50_seconds: prefill.0,
            ttft_prefill_p95_seconds: prefill.1,
            ttft_first_decode_p50_seconds: first.0,
            ttft_first_decode_p95_seconds: first.1,
            tokens_per_second: if sim_seconds > 0.0 {
                tokens as f64 / sim_seconds
            } else {
                0.0
            },
            cluster_tokens_per_second: if makespan > 0.0 {
                tokens as f64 / makespan
            } else {
                0.0
            },
            simulated_decode_seconds: sim_seconds,
            simulated_prefill_seconds: prefill_seconds,
            prefill_tokens,
            prefill_passes: self.prefill_passes.load(Ordering::Relaxed),
            prefill_tokens_per_second: if prefill_seconds > 0.0 {
                prefill_tokens as f64 / prefill_seconds
            } else {
                0.0
            },
            prefill_interleave_occupancy: if prefill_iterations > 0 {
                self.interleaved_iterations.load(Ordering::Relaxed) as f64
                    / prefill_iterations as f64
            } else {
                0.0
            },
            kv_blocks_in_use: kv_in_use,
            kv_blocks_peak: self.kv_peak.load(Ordering::Relaxed),
            kv_blocks_capacity: kv_capacity,
            kv_evictions: self.kv_evictions.load(Ordering::Relaxed),
            recomputed_tokens: self.recomputed_tokens.load(Ordering::Relaxed),
            sessions_migrated,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_and_throughput_accounting() {
        let stats = DecodeStats::default();
        stats.max_batch.store(4, Ordering::Relaxed);
        assert_eq!(stats.shard_clock(0), 0.0);
        let now = stats.advance_shard_clock(0, 0.5);
        assert!((now - 0.5).abs() < 1e-9);
        stats.shards[0].tokens.store(100, Ordering::Relaxed);
        stats.shards[0].steps.store(10, Ordering::Relaxed);
        stats.occupied_slots.store(30, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.tokens_generated, 100);
        assert_eq!(snap.steps, 10);
        assert!((snap.tokens_per_second - 200.0).abs() < 1e-6);
        assert!((snap.mean_step_occupancy - 0.75).abs() < 1e-9);
    }

    #[test]
    fn shard_clocks_are_independent_and_cluster_uses_the_makespan() {
        let stats = DecodeStats::for_shards(vec!["a".into(), "b".into()]);
        stats.advance_shard_clock(0, 1.0);
        stats.advance_shard_clock(1, 0.25);
        stats.advance_shard_prefill_clock(1, 0.25);
        assert!((stats.shard_clock(0) - 1.0).abs() < 1e-9);
        assert!((stats.shard_clock(1) - 0.5).abs() < 1e-9);
        stats.shards[0].tokens.store(75, Ordering::Relaxed);
        stats.shards[1].tokens.store(25, Ordering::Relaxed);
        let snap = stats.snapshot();
        // The aggregate sums the shards (75 + 25 tokens). Aggregate
        // tokens/sec divides by summed decode work (1.25s); the cluster
        // number divides by the busiest shard's clock (1.0s).
        assert_eq!(snap.tokens_generated, 100);
        assert!((snap.tokens_per_second - 80.0).abs() < 1e-6);
        assert!((snap.cluster_tokens_per_second - 100.0).abs() < 1e-6);
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[0].device, "a");
        assert!((snap.shards[1].simulated_busy_seconds - 0.5).abs() < 1e-9);
        assert!((snap.shards[1].simulated_decode_seconds - 0.25).abs() < 1e-9);
    }

    #[test]
    fn reservoirs_stay_bounded_and_estimate_percentiles() {
        let stats = DecodeStats::default();
        for i in 0..10_000 {
            stats.record_itl(0.001 * (1.0 + (i % 10) as f64));
        }
        let snap = stats.snapshot();
        assert!(snap.itl_p50_seconds >= 0.003 && snap.itl_p50_seconds <= 0.008);
        assert!(snap.itl_p95_seconds >= 0.008);
        assert!(stats.reservoirs.lock().unwrap()[1].len() <= 4096);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = DecodeStats::default().snapshot();
        let want = DecodeStatsSnapshot {
            shards: vec![DecodeShardSnapshot::default()],
            ..DecodeStatsSnapshot::default()
        };
        assert_eq!(snap, want);
    }
}
