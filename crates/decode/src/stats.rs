//! Live decode metrics, snapshotted into
//! [`hidet_runtime::DecodeStatsSnapshot`] (the shared observability type the
//! serving engine surfaces through `StatsSnapshot::decode`). Latency
//! distributions reuse the runtime's bounded
//! [`LatencyReservoir`](hidet_runtime::LatencyReservoir).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use hidet_runtime::{DecodeStatsSnapshot, LatencyReservoir};

/// Atomic counters + bounded reservoirs updated by the step loop; cheap to
/// read from any thread ([`DecodeStats::snapshot`]).
#[derive(Debug, Default)]
pub(crate) struct DecodeStats {
    pub(crate) completed: AtomicUsize,
    pub(crate) failed: AtomicUsize,
    pub(crate) tokens: AtomicUsize,
    pub(crate) prompt_tokens: AtomicUsize,
    pub(crate) steps: AtomicUsize,
    /// Sum over steps of occupied decode slots (÷ steps ÷ max_batch =
    /// occupancy).
    pub(crate) occupied_slots: AtomicUsize,
    /// Decode slots per step (set once at engine construction).
    pub(crate) max_batch: AtomicUsize,
    pub(crate) kv_in_use: AtomicUsize,
    pub(crate) kv_peak: AtomicUsize,
    pub(crate) kv_capacity: AtomicUsize,
    pub(crate) kv_evictions: AtomicUsize,
    pub(crate) recomputed_tokens: AtomicUsize,
    /// Simulated seconds spent in decode steps, scaled by 1e9.
    pub(crate) sim_decode_nanos: AtomicU64,
    /// The engine's simulated clock, scaled by 1e9 — read by `generate` to
    /// stamp submissions (TTFT includes queueing).
    pub(crate) sim_clock_nanos: AtomicU64,
    reservoirs: Mutex<[LatencyReservoir; 2]>, // [ttft, itl]
}

impl DecodeStats {
    pub(crate) fn sim_clock(&self) -> f64 {
        self.sim_clock_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    pub(crate) fn advance_clock(&self, seconds: f64) -> f64 {
        let nanos = (seconds * 1e9) as u64;
        self.sim_decode_nanos.fetch_add(nanos, Ordering::Relaxed);
        let now = self.sim_clock_nanos.fetch_add(nanos, Ordering::Relaxed) + nanos;
        now as f64 / 1e9
    }

    pub(crate) fn record_ttft(&self, seconds: f64) {
        self.reservoirs.lock().expect("stats poisoned")[0].push(seconds);
    }

    pub(crate) fn record_itl(&self, seconds: f64) {
        self.reservoirs.lock().expect("stats poisoned")[1].push(seconds);
    }

    pub(crate) fn snapshot(&self) -> DecodeStatsSnapshot {
        let (ttft_p50, ttft_p95, itl_p50, itl_p95) = {
            let r = self.reservoirs.lock().expect("stats poisoned");
            (
                r[0].percentile(0.50),
                r[0].percentile(0.95),
                r[1].percentile(0.50),
                r[1].percentile(0.95),
            )
        };
        let steps = self.steps.load(Ordering::Relaxed);
        let max_batch = self.max_batch.load(Ordering::Relaxed);
        let tokens = self.tokens.load(Ordering::Relaxed);
        let sim_seconds = self.sim_decode_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        DecodeStatsSnapshot {
            sequences_completed: self.completed.load(Ordering::Relaxed),
            sequences_failed: self.failed.load(Ordering::Relaxed),
            tokens_generated: tokens,
            prompt_tokens: self.prompt_tokens.load(Ordering::Relaxed),
            steps,
            mean_step_occupancy: if steps == 0 || max_batch == 0 {
                0.0
            } else {
                self.occupied_slots.load(Ordering::Relaxed) as f64 / (steps * max_batch) as f64
            },
            ttft_p50_seconds: ttft_p50,
            ttft_p95_seconds: ttft_p95,
            itl_p50_seconds: itl_p50,
            itl_p95_seconds: itl_p95,
            tokens_per_second: if sim_seconds > 0.0 {
                tokens as f64 / sim_seconds
            } else {
                0.0
            },
            simulated_decode_seconds: sim_seconds,
            kv_blocks_in_use: self.kv_in_use.load(Ordering::Relaxed),
            kv_blocks_peak: self.kv_peak.load(Ordering::Relaxed),
            kv_blocks_capacity: self.kv_capacity.load(Ordering::Relaxed),
            kv_evictions: self.kv_evictions.load(Ordering::Relaxed),
            recomputed_tokens: self.recomputed_tokens.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_and_throughput_accounting() {
        let stats = DecodeStats::default();
        stats.max_batch.store(4, Ordering::Relaxed);
        assert_eq!(stats.sim_clock(), 0.0);
        let now = stats.advance_clock(0.5);
        assert!((now - 0.5).abs() < 1e-9);
        stats.tokens.store(100, Ordering::Relaxed);
        stats.steps.store(10, Ordering::Relaxed);
        stats.occupied_slots.store(30, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert!((snap.tokens_per_second - 200.0).abs() < 1e-6);
        assert!((snap.mean_step_occupancy - 0.75).abs() < 1e-9);
    }

    #[test]
    fn reservoirs_stay_bounded_and_estimate_percentiles() {
        let stats = DecodeStats::default();
        for i in 0..10_000 {
            stats.record_itl(0.001 * (1.0 + (i % 10) as f64));
        }
        let snap = stats.snapshot();
        assert!(snap.itl_p50_seconds >= 0.003 && snap.itl_p50_seconds <= 0.008);
        assert!(snap.itl_p95_seconds >= 0.008);
        assert!(stats.reservoirs.lock().unwrap()[1].len() <= 4096);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = DecodeStats::default().snapshot();
        assert_eq!(snap, DecodeStatsSnapshot::default());
    }
}
