//! Block-granular KV-cache allocation over persistent device memory.
//!
//! Autoregressive decoding is stateful: every sequence carries per-layer
//! key/value caches that grow by one token per step and must survive
//! *between* steps. Keeping them in host vectors would round-trip the
//! dominant data structure of the workload through the host on every step;
//! instead the allocator owns one [`DeviceMemory`] arena (the PR-4 arena
//! machinery) carved into **fixed-size blocks**, and sequences hold chains of
//! block indices:
//!
//! * a block stores [`KvLayout::block_tokens`] tokens; each token slot holds
//!   the token's K and V rows for *every* layer (`layers × 2 × hidden`
//!   elements), so one append touches one block;
//! * blocks are allocated lazily as a sequence crosses a block boundary and
//!   freed as a set when the sequence completes ([`KvAllocator::release`]) —
//!   no per-token allocator traffic, no fragmentation beyond one partial
//!   block per live sequence;
//! * under memory pressure ([`KvError::Exhausted`]) the *scheduler* picks a
//!   victim, releases its chain and later rebuilds it by re-feeding tokens
//!   (eviction + recompute — the allocator itself stays policy-free);
//! * step kernels read cache lanes via [`KvAllocator::lane`] and new rows are
//!   copied in device-to-device ([`KvAllocator::copy_lane_from`], backed by
//!   [`DeviceMemory::copy_from`]).

use std::fmt;

use hidet_sim::DeviceMemory;

/// Shape of one model's KV cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvLayout {
    /// Transformer layers (one K and one V stream each).
    pub layers: usize,
    /// Model width: elements per K (or V) row per token per layer.
    pub hidden: usize,
    /// Tokens per block — the allocation granularity.
    pub block_tokens: usize,
}

impl KvLayout {
    /// Elements one token occupies across all layers and both streams.
    pub fn token_elems(&self) -> usize {
        self.layers * 2 * self.hidden
    }

    /// Elements per block.
    pub fn block_elems(&self) -> usize {
        self.block_tokens * self.token_elems()
    }

    /// Blocks a sequence of `tokens` cached tokens occupies.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }
}

/// One sequence's cache: a chain of block indices plus its token count.
/// Created empty; grown by [`KvAllocator::append`]; must be given back via
/// [`KvAllocator::release`] (dropping a non-empty cache leaks its blocks
/// until the allocator itself is dropped — the engine's session teardown
/// releases every path, tested by the no-leak suite). Deliberately **not**
/// `Clone`: releasing two handles to one block chain would double-free the
/// blocks and alias two sequences' caches.
#[derive(Debug, Default)]
pub struct KvCache {
    blocks: Vec<usize>,
    tokens: usize,
}

impl KvCache {
    /// An empty cache.
    pub fn new() -> KvCache {
        KvCache::default()
    }

    /// Cached tokens.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Blocks currently held.
    pub fn blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Write coordinates of a freshly appended token, consumed by
/// [`KvAllocator::copy_lane_from`] / [`KvAllocator::lane_mut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvSlot {
    /// Arena block index.
    pub block: usize,
    /// Token slot within the block.
    pub slot: usize,
}

/// KV allocation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// No free block: the scheduler must evict a sequence (or fail the
    /// requester) before the append can proceed.
    Exhausted,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Exhausted => f.write_str("no free KV block"),
        }
    }
}

impl std::error::Error for KvError {}

/// The block allocator: one device arena, a free list, and the offset
/// arithmetic mapping `(token, layer, stream)` to arena lanes. See the
/// [module docs](self).
#[derive(Debug)]
pub struct KvAllocator {
    layout: KvLayout,
    total_blocks: usize,
    mem: DeviceMemory,
    free: Vec<usize>,
    peak_in_use: usize,
    /// Per-block buffer names, precomputed so the per-token hot path
    /// (lane gathers, lane writes) never allocates.
    names: Vec<String>,
}

impl KvAllocator {
    /// An allocator with `total_blocks` blocks of `layout` geometry. The
    /// whole arena is reserved (and every block view bound) up front, so
    /// steady-state appends perform **zero heap allocations**.
    pub fn new(layout: KvLayout, total_blocks: usize) -> KvAllocator {
        assert!(layout.layers >= 1 && layout.hidden >= 1 && layout.block_tokens >= 1);
        assert!(total_blocks >= 1, "allocator needs at least one block");
        let mut mem = DeviceMemory::new();
        mem.reserve_arena(total_blocks * layout.block_elems());
        let names: Vec<String> = (0..total_blocks).map(|b| format!("kv_blk{b}")).collect();
        for (b, name) in names.iter().enumerate() {
            mem.bind_view(name, b * layout.block_elems(), layout.block_elems());
        }
        // Pop order low-to-high keeps block ids deterministic for tests.
        let free: Vec<usize> = (0..total_blocks).rev().collect();
        KvAllocator {
            layout,
            total_blocks,
            mem,
            free,
            peak_in_use: 0,
            names,
        }
    }

    /// The allocator's geometry.
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// Total blocks in the arena.
    pub fn capacity(&self) -> usize {
        self.total_blocks
    }

    /// Blocks currently allocated to sequences.
    pub fn blocks_in_use(&self) -> usize {
        self.total_blocks - self.free.len()
    }

    /// High-water mark of allocated blocks.
    pub fn peak_blocks(&self) -> usize {
        self.peak_in_use
    }

    /// The backing device memory (read access for gathers and tests).
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Reserves the next token slot of `cache`, allocating a block when the
    /// chain crosses a block boundary. The slot's lanes hold stale bytes
    /// until written ([`KvAllocator::copy_lane_from`]).
    ///
    /// # Errors
    /// [`KvError::Exhausted`] when a new block is needed and none is free —
    /// the cache is left unchanged.
    pub fn append(&mut self, cache: &mut KvCache) -> Result<KvSlot, KvError> {
        let slot = cache.tokens % self.layout.block_tokens;
        if slot == 0 {
            let block = self.free.pop().ok_or(KvError::Exhausted)?;
            cache.blocks.push(block);
            self.peak_in_use = self.peak_in_use.max(self.blocks_in_use());
        }
        let block = *cache.blocks.last().expect("append allocated a block");
        cache.tokens += 1;
        Ok(KvSlot { block, slot })
    }

    /// Returns every block of `cache` to the free list and empties it —
    /// session completion and scheduler eviction both funnel through here.
    pub fn release(&mut self, cache: &mut KvCache) {
        self.free.append(&mut cache.blocks);
        cache.tokens = 0;
    }

    /// Read access to one cached lane: token `token`'s K (`stream == 0`) or
    /// V (`stream == 1`) row of `layer` — `hidden` elements, ordered by head.
    ///
    /// # Panics
    /// Panics when `token >= cache.tokens()` or the layer/stream is out of
    /// range.
    pub fn lane(&self, cache: &KvCache, token: usize, layer: usize, stream: usize) -> &[f32] {
        assert!(token < cache.tokens, "token {token} >= {}", cache.tokens);
        let block = cache.blocks[token / self.layout.block_tokens];
        let offset = self.lane_offset(token % self.layout.block_tokens, layer, stream);
        &self.mem.read(&self.names[block])[offset..offset + self.layout.hidden]
    }

    /// Writes one full lane of a freshly appended token by
    /// **device-to-device** copy from `src_mem`'s buffer `src` (e.g. a
    /// decode step's `new_k` output living in a workspace arena) — the cache
    /// never round-trips through host vectors.
    pub fn copy_lane_from(
        &mut self,
        slot: KvSlot,
        layer: usize,
        stream: usize,
        src_mem: &DeviceMemory,
        src: &str,
        src_offset: usize,
    ) {
        self.copy_into_lane(
            slot,
            layer,
            stream,
            0,
            src_mem,
            src,
            src_offset,
            self.layout.hidden,
        );
    }

    /// [`KvAllocator::copy_lane_from`] for a sub-range of the lane — used
    /// when the source rows are strided per attention head. Copies `len`
    /// elements to lane position `lane_offset`.
    ///
    /// # Panics
    /// Panics when `lane_offset + len` exceeds the lane width.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_into_lane(
        &mut self,
        slot: KvSlot,
        layer: usize,
        stream: usize,
        lane_offset: usize,
        src_mem: &DeviceMemory,
        src: &str,
        src_offset: usize,
        len: usize,
    ) {
        assert!(
            lane_offset + len <= self.layout.hidden,
            "lane write [{lane_offset}, {}) exceeds width {}",
            lane_offset + len,
            self.layout.hidden
        );
        let offset = self.lane_offset(slot.slot, layer, stream) + lane_offset;
        self.mem.copy_from(
            &self.names[slot.block],
            offset,
            src_mem,
            src,
            src_offset,
            len,
        );
    }

    /// Mutable access to one lane of an appended slot (host-side writers,
    /// e.g. tests).
    pub fn lane_mut(&mut self, slot: KvSlot, layer: usize, stream: usize) -> &mut [f32] {
        let offset = self.lane_offset(slot.slot, layer, stream);
        let hidden = self.layout.hidden;
        &mut self
            .mem
            .get_mut(&self.names[slot.block])
            .expect("block views are bound at construction")[offset..offset + hidden]
    }

    /// Offset of `(slot, layer, stream)` within a block buffer.
    fn lane_offset(&self, slot: usize, layer: usize, stream: usize) -> usize {
        assert!(layer < self.layout.layers, "layer {layer} out of range");
        assert!(stream < 2, "stream must be 0 (K) or 1 (V)");
        slot * self.layout.token_elems() + (layer * 2 + stream) * self.layout.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> KvLayout {
        KvLayout {
            layers: 2,
            hidden: 4,
            block_tokens: 3,
        }
    }

    #[test]
    fn layout_arithmetic() {
        let l = layout();
        assert_eq!(l.token_elems(), 16);
        assert_eq!(l.block_elems(), 48);
        assert_eq!(l.blocks_for(0), 0);
        assert_eq!(l.blocks_for(3), 1);
        assert_eq!(l.blocks_for(4), 2);
    }

    #[test]
    fn append_allocates_blocks_at_boundaries() {
        let mut kv = KvAllocator::new(layout(), 4);
        let mut cache = KvCache::new();
        assert_eq!(kv.blocks_in_use(), 0);
        for t in 0..7 {
            let slot = kv.append(&mut cache).unwrap();
            assert_eq!(slot.slot, t % 3);
            assert_eq!(cache.tokens(), t + 1);
        }
        assert_eq!(cache.blocks(), 3); // ceil(7 / 3)
        assert_eq!(kv.blocks_in_use(), 3);
        assert_eq!(kv.peak_blocks(), 3);
    }

    #[test]
    fn lanes_round_trip_and_never_alias() {
        let mut kv = KvAllocator::new(layout(), 4);
        let mut cache = KvCache::new();
        // Write a distinct signature into every lane of 5 tokens.
        for t in 0..5usize {
            let slot = kv.append(&mut cache).unwrap();
            for layer in 0..2 {
                for stream in 0..2 {
                    let tag = (t * 100 + layer * 10 + stream) as f32;
                    kv.lane_mut(slot, layer, stream).fill(tag);
                }
            }
        }
        for t in 0..5usize {
            for layer in 0..2 {
                for stream in 0..2 {
                    let tag = (t * 100 + layer * 10 + stream) as f32;
                    assert_eq!(
                        kv.lane(&cache, t, layer, stream),
                        &[tag; 4],
                        "t{t} l{layer} s{stream}"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustion_leaves_cache_unchanged_and_release_recovers() {
        let mut kv = KvAllocator::new(layout(), 2);
        let mut a = KvCache::new();
        let mut b = KvCache::new();
        for _ in 0..3 {
            kv.append(&mut a).unwrap(); // a takes block 0
        }
        kv.append(&mut b).unwrap(); // b takes block 1
                                    // a needs a 2nd block for token 4 — none free.
        let before = (a.tokens(), a.blocks());
        assert_eq!(kv.append(&mut a), Err(KvError::Exhausted));
        assert_eq!(
            (a.tokens(), a.blocks()),
            before,
            "failed append must not mutate"
        );
        // Releasing b (the scheduler's eviction) unblocks a.
        kv.release(&mut b);
        assert_eq!(b.tokens(), 0);
        assert_eq!(b.blocks(), 0);
        assert!(kv.append(&mut a).is_ok());
        assert_eq!(kv.blocks_in_use(), 2);
    }

    #[test]
    fn release_returns_every_block() {
        let mut kv = KvAllocator::new(layout(), 3);
        let mut cache = KvCache::new();
        for _ in 0..9 {
            kv.append(&mut cache).unwrap();
        }
        assert_eq!(kv.blocks_in_use(), 3);
        kv.release(&mut cache);
        assert_eq!(kv.blocks_in_use(), 0, "no block may leak");
        assert_eq!(kv.peak_blocks(), 3, "peak survives release");
        // The freed blocks are reusable by a fresh sequence.
        let mut fresh = KvCache::new();
        for _ in 0..9 {
            kv.append(&mut fresh).unwrap();
        }
        assert_eq!(kv.blocks_in_use(), 3);
    }

    #[test]
    fn copy_lane_from_is_device_to_device() {
        let mut kv = KvAllocator::new(layout(), 2);
        let mut cache = KvCache::new();
        let slot = kv.append(&mut cache).unwrap();
        let mut src = DeviceMemory::new();
        src.alloc("out", &[9.0, 8.0, 7.0, 6.0, 5.0, 4.0]);
        kv.copy_lane_from(slot, 1, 0, &src, "out", 2);
        assert_eq!(kv.lane(&cache, 0, 1, 0), &[7.0, 6.0, 5.0, 4.0]);
    }

    #[test]
    fn steady_state_appends_do_not_allocate() {
        let mut kv = KvAllocator::new(layout(), 2);
        let resident = kv.memory().total_bytes();
        let mut cache = KvCache::new();
        for _ in 0..6 {
            kv.append(&mut cache).unwrap();
        }
        kv.release(&mut cache);
        assert_eq!(
            kv.memory().total_bytes(),
            resident,
            "arena is fixed at construction"
        );
    }
}
