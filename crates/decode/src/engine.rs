//! The decode engine: KV-cache sessions served by a continuous
//! (iteration-level) batching scheduler with chunked multi-token prefill.
//!
//! ```text
//!   clients ── model.generate ──▶ priority queues ──▶ admission (per step!)
//!              (prompt, max_tokens,  High/Normal/        │
//!               priority, deadline)  BestEffort          ▼
//!                                       ┌─── scheduler iteration ──────────┐
//!                                       │ prefill phase: chunk the longest │
//!                                       │   prompt chains (token budget)   │
//!      token streams ◀── emit / retire ─│ decode step for everyone else:   │
//!      (DecodeSession)                  │   gather KV → forward pass       │
//!                                       │   → append KV → argmax           │
//!                                       └───────────▲──────────────────────┘
//!                                      block-granular KV arena (DeviceMemory)
//!                                        eviction + recompute on pressure
//! ```
//!
//! The unit of scheduling is one **iteration**: an optional *prefill phase*
//! absorbing prompt chunks, then one batched decode step that advances every
//! other active sequence by one token. Sequences join the running batch the
//! step after they arrive and leave the moment they finish
//! ([`BatchingMode::Continuous`]) — no sequence ever waits for a batch-mate
//! to drain, which is where the ≥2× tokens/sec over static pad-to-max
//! batching comes from (the `serving_decode` bench). The decode batch axis
//! belongs to the *scheduler*: the model graph is compiled once at a fixed
//! `(max_batch, max_context)` shape (composing with the zoo transformers'
//! `unbatched` rule — the graph never re-partitions work), and per-row masks
//! carve the batch. Fixing the shape also makes every row's computation
//! **bit-identical** whether the sequence runs alone or packed with others —
//! rows of every decode-step operator are independent — which the
//! bit-identity proptest pins down.
//!
//! **Chunked prefill** (DESIGN.md §9) collapses the prompt-absorption tax:
//! instead of one scheduler step per prompt token, a prompt is fed through
//! single-sequence multi-token *prefill graphs*
//! ([`hidet_graph::models::transformer_prefill`]) compiled at the fixed
//! chunk shapes of [`DecodeConfig::chunk_menu`]. Each iteration elects, per
//! sequence in `(priority, admission)` order, the **largest compiled chunk
//! that fits both the remaining feed chain and the iteration's leftover
//! [`DecodeConfig::prefill_token_budget`]** — the budget bounds the ITL
//! bubble in-flight decodes observe while a prefill pass shares their
//! iteration. Tails smaller than the smallest chunk (and everything when
//! chunking is off) fall through to the token-wise decode path, so chunking
//! is never a liveness dependency — a chunk whose graph fails to compile is
//! retired and its sequences keep absorbing token-wise. Prefill passes use
//! the same order-stable reduction schedules as decode steps, so the
//! resulting KV rows — and every downstream token — are **bit-identical to
//! token-wise absorption** (the `chunked_prefill_is_bit_identical_to_tokenwise`
//! proptest).
//!
//! KV caches live in a persistent [`KvAllocator`] arena between steps;
//! step inputs are staged and harvested **device-to-device**
//! ([`hidet::Workspace::input_mut`] / [`hidet_sim::DeviceMemory::copy_from`]),
//! so the steady state performs zero heap allocations for caches. Under
//! memory pressure the scheduler preempts the lowest-ranked sequence
//! (priority, then admission order), frees its blocks and later rebuilds
//! them by re-feeding its tokens — eviction + recompute, counted in
//! [`hidet_runtime::DecodeStatsSnapshot`]. A replayed chain re-enters the
//! same chunk-election path, so recompute after eviction is chunked too.
//!
//! **Multi-device decode** (DESIGN.md §11): the engine owns one *decode
//! shard* per device of [`DecodeConfig::devices`] — its own KV arena,
//! compiled step/prefill graphs, simulated clock and iteration scheduler —
//! multiplexed by the single step-loop thread (shards model *parallel*
//! devices, so each pass advances only its own shard's clock). New sessions
//! land on the shard minimizing estimated queue delay
//! ([`hidet_sim::estimated_queue_delay`] over the shard's published gauges)
//! plus a KV-headroom penalty, and sessions *migrate* between shards live: a
//! migration is an eviction whose recompute/replay chain re-admits on the
//! target shard, its time anchors rebased onto the target's clock — used for
//! pressure relief (a full arena evicts to the pool's roomiest shard instead
//! of thrashing locally) and for rebalance when headroom skews. Each shard's
//! decode lane share grows/shrinks from its observed queue-delay EWMA
//! ([`DecodeConfig::lane_autoscale`]), bounded and hysteretic. Every shard
//! runs the same order-stable schedules, so token streams stay
//! **bit-identical** to a single-device run — including across migrations
//! (the `migrated_session_is_bit_identical_to_pinned` proptest).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hidet::{CompilerOptions, Workspace};
use hidet_graph::{Graph, Tensor, TensorId};
use hidet_runtime::{CompiledCache, DecodeStatsSnapshot, Priority};
use hidet_sim::{Gpu, GpuSpec};

use crate::kv::{KvAllocator, KvCache, KvError, KvLayout};
use crate::placement::{placement_score, LaneAutoscaler};
use crate::stats::DecodeStats;

/// Additive mask value for non-attendable positions: large enough that
/// `exp(score + MASK)` underflows to exactly `0.0` after the row-max shift,
/// making padded positions bit-transparent to softmax.
const MASK_NEG: f32 = -1.0e9;

/// Pressure-relief migrations one sequence may take before it must stay put
/// and requeue locally — two overloaded shards cannot ping-pong a session
/// between them forever.
const PRESSURE_MOVE_LIMIT: u32 = 3;

/// KV in-use fraction of the fullest shard above which the rebalancer
/// considers moving a session off it at all.
const REBALANCE_HOT_FRACTION: f64 = 0.75;

/// KV in-use fraction gap between the fullest and emptiest shard above
/// which one session migrates hot → cold.
const REBALANCE_SKEW: f64 = 0.5;

/// Outer scheduler iterations between rebalance moves, so each move lands
/// and shows up in the gauges before the next is considered.
const REBALANCE_COOLDOWN_ITERS: u64 = 8;

/// How the step loop forms batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchingMode {
    /// Iteration-level scheduling: sequences are admitted into free slots
    /// every step and retired the step they finish.
    #[default]
    Continuous,
    /// The pad-to-max baseline: a batch is formed only when every slot of
    /// the previous batch has drained, so the whole batch runs as long as
    /// its longest member. Exists for the `serving_decode` comparison.
    Static,
}

/// Decode-engine construction knobs.
#[derive(Debug, Clone)]
pub struct DecodeConfig {
    /// The simulated device executing decode steps when
    /// [`DecodeConfig::devices`] is empty — the single-shard configuration.
    pub device: GpuSpec,
    /// The decode shard pool: one decode shard per entry, each with its own
    /// KV arena, compiled step/prefill graphs, simulated clock and iteration
    /// scheduler. Empty (the default) means one shard on
    /// [`DecodeConfig::device`]; when non-empty, `device` is ignored. New
    /// sessions are placed by joint queue-delay + KV-headroom score and may
    /// be live-migrated between shards under pressure (see the
    /// [module docs](self)).
    pub devices: Vec<GpuSpec>,
    /// Compiler options for the step graph (quick — untuned — by default;
    /// decode steps are latency-bound, not schedule-bound, in the sim).
    pub options: CompilerOptions,
    /// Decode slots per step: the fixed batch axis of the compiled step
    /// graph and the ceiling on concurrently active sequences.
    pub max_batch: usize,
    /// KV blocks per registered model's arena.
    pub kv_blocks: usize,
    /// Tokens per KV block (the allocation granularity).
    pub block_tokens: usize,
    /// Batch-formation policy.
    pub mode: BatchingMode,
    /// Optional compiled-artifact store (shared format with the serving
    /// engine's [`hidet_runtime::CompiledCache`]): a warm restart rebuilds
    /// the step graph with zero tuning trials.
    pub artifact_store: Option<PathBuf>,
    /// Start with admissions paused: sessions queue but no step runs until
    /// [`DecodeEngine::resume`]. Lets a caller submit a whole workload
    /// before the first admission, making scheduling — and with it every
    /// simulated-time metric — independent of host scheduling jitter (the
    /// acceptance benches rely on this for deterministic CI gating).
    pub start_paused: bool,
    /// Schedule decode-step matmuls with the smallest-footprint valid
    /// configuration instead of the mid-size default (applies only when
    /// [`DecodeConfig::options`] has tuning off). Decode-step GEMMs are
    /// skinny — M is a handful of tokens — so the default 64×64 tile wastes
    /// almost the whole block on predicated-out work; the compact tile cuts
    /// both the simulated step latency and the interpreter's cost per step.
    /// Implemented by pre-seeding tuning records (zero trials) for every
    /// matmul problem in the step graph.
    pub compact_schedules: bool,
    /// Chunk sizes the prefill graph family is compiled at (sanitized at
    /// construction: deduplicated, ascending; entries above a model's
    /// context window are skipped for that model). Long prompts are absorbed
    /// through the largest compiled chunk that fits the remaining chain;
    /// tails smaller than the smallest chunk fall back to the token-wise
    /// path. Empty disables chunked prefill entirely — every prompt token
    /// then rides the decode step graph, exactly as before this knob
    /// existed. Only models registered with a prefill builder
    /// ([`DecodeModelSpec::transformer`] has one; [`DecodeModelSpec::custom`]
    /// opts in via [`DecodeModelSpec::with_prefill`]) use the menu.
    pub chunk_menu: Vec<usize>,
    /// Prefill tokens one scheduler iteration may absorb across all
    /// sequences — the Sarathi-style bound on the inter-token-latency bubble
    /// in-flight decodes observe while a long prompt streams in. `0`
    /// disables chunked prefill (like an empty [`DecodeConfig::chunk_menu`]).
    pub prefill_token_budget: usize,
    /// Queue-driven lane autoscaling: each shard's decode lane share (its
    /// admission ceiling, out of [`DecodeConfig::max_batch`] slots) starts
    /// at [`DecodeConfig::lane_min`], grows while the shard's observed
    /// queue-delay EWMA stays above the grow threshold and shrinks back when
    /// the queue drains — one lane at a time, bounded and hysteretic. Off
    /// (the default): every shard always admits up to `max_batch`.
    pub lane_autoscale: bool,
    /// Lower lane-share bound when [`DecodeConfig::lane_autoscale`] is on
    /// (sanitized to `1..=max_batch` at construction).
    pub lane_min: usize,
    /// Test/bench knob exercising live migration deterministically: when
    /// non-zero, every session is migrated to the next shard (round-robin)
    /// once it has emitted this many tokens — at most once per session. `0`
    /// (the default) disables it.
    pub stress_migrate_after: usize,
}

impl Default for DecodeConfig {
    fn default() -> DecodeConfig {
        DecodeConfig {
            device: GpuSpec::rtx3090(),
            devices: Vec::new(),
            options: CompilerOptions::quick(),
            max_batch: 8,
            kv_blocks: 64,
            block_tokens: 16,
            mode: BatchingMode::Continuous,
            artifact_store: None,
            start_paused: false,
            compact_schedules: true,
            chunk_menu: vec![16, 64, 256],
            prefill_token_budget: 256,
            lane_autoscale: false,
            lane_min: 1,
            stress_migrate_after: 0,
        }
    }
}

/// Errors surfaced through a [`DecodeSession`].
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The session named a model that was never registered.
    UnknownModel(String),
    /// The model spec's builder does not produce the declared interface.
    BadModel(String),
    /// The request was malformed (empty prompt, token out of vocabulary,
    /// prompt + max_tokens exceeding the context window, ...).
    BadPrompt(String),
    /// Compiling the step graph failed.
    Compile(String),
    /// Executing a decode step failed.
    Execution(String),
    /// The session's deadline passed before it finished.
    DeadlineExceeded,
    /// The KV arena cannot hold this sequence even after evicting every
    /// lower-ranked one.
    KvExhausted,
    /// The engine is shut down.
    Closed,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownModel(name) => write!(f, "unknown decode model \"{name}\""),
            DecodeError::BadModel(msg) => write!(f, "bad decode model: {msg}"),
            DecodeError::BadPrompt(msg) => write!(f, "bad prompt: {msg}"),
            DecodeError::Compile(msg) => write!(f, "step compile failed: {msg}"),
            DecodeError::Execution(msg) => write!(f, "step execution failed: {msg}"),
            DecodeError::DeadlineExceeded => f.write_str("deadline exceeded before completion"),
            DecodeError::KvExhausted => f.write_str("KV arena exhausted (no evictable sequence)"),
            DecodeError::Closed => f.write_str("decode engine is shut down"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Everything the engine needs to know about a decode model: its dimensions
/// and a `(batch, past_len) -> Graph` builder honoring the
/// [`hidet_graph::models::transformer_decode_step`] interface.
pub struct DecodeModelSpec {
    name: String,
    layers: usize,
    hidden: i64,
    heads: i64,
    vocab: i64,
    max_context: i64,
    builder: Box<dyn Fn(i64, i64) -> Graph + Send + Sync>,
    /// Optional `(chunk_len, past_len) -> Graph` builder for the chunked
    /// prefill family ([`hidet_graph::models::transformer_prefill`]
    /// interface). Models without one absorb prompts token-wise only.
    prefill_builder: Option<Box<dyn Fn(i64, i64) -> Graph + Send + Sync>>,
    embed_seed: u64,
}

impl DecodeModelSpec {
    /// A pre-LN transformer decode model built by
    /// [`hidet_graph::models::transformer_decode_step`].
    pub fn transformer(
        name: impl Into<String>,
        layers: usize,
        hidden: i64,
        heads: i64,
        vocab: i64,
        max_context: i64,
    ) -> DecodeModelSpec {
        let name = name.into();
        let graph_name = name.clone();
        let prefill_name = format!("{name}_prefill");
        DecodeModelSpec {
            name,
            layers,
            hidden,
            heads,
            vocab,
            max_context,
            builder: Box::new(move |batch, past| {
                hidet_graph::models::transformer_decode_step(
                    &graph_name,
                    batch,
                    past,
                    layers,
                    hidden,
                    heads,
                    vocab,
                )
            }),
            prefill_builder: Some(Box::new(move |chunk, past| {
                hidet_graph::models::transformer_prefill(
                    &prefill_name,
                    chunk,
                    past,
                    layers,
                    hidden,
                    heads,
                    vocab,
                )
            })),
            embed_seed: 0xDEC0DE,
        }
    }

    /// GPT-2 small decode steps
    /// ([`hidet_graph::models::gpt2_decode_step`]) with context window
    /// `max_context`.
    pub fn gpt2(max_context: i64) -> DecodeModelSpec {
        DecodeModelSpec::transformer("gpt2_decode", 12, 768, 12, 768, max_context)
    }

    /// A custom `(batch, past_len) -> Graph` builder; the graph must follow
    /// the decode-step interface for the given dimensions (validated at
    /// registration).
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: impl Into<String>,
        layers: usize,
        hidden: i64,
        heads: i64,
        vocab: i64,
        max_context: i64,
        builder: impl Fn(i64, i64) -> Graph + Send + Sync + 'static,
    ) -> DecodeModelSpec {
        DecodeModelSpec {
            name: name.into(),
            layers,
            hidden,
            heads,
            vocab,
            max_context,
            builder: Box::new(builder),
            prefill_builder: None,
            embed_seed: 0xDEC0DE,
        }
    }

    /// Adds a `(chunk_len, past_len) -> Graph` prefill builder to a
    /// [`DecodeModelSpec::custom`] spec, enabling chunked prompt absorption.
    /// The graph must follow the
    /// [`hidet_graph::models::transformer_prefill`] interface for the spec's
    /// dimensions (validated at registration for every menu chunk).
    pub fn with_prefill(
        mut self,
        builder: impl Fn(i64, i64) -> Graph + Send + Sync + 'static,
    ) -> DecodeModelSpec {
        self.prefill_builder = Some(Box::new(builder));
        self
    }

    /// Seed of the deterministic host-side token-embedding table.
    pub fn with_embed_seed(mut self, seed: u64) -> DecodeModelSpec {
        self.embed_seed = seed;
        self
    }

    /// The model's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for DecodeModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodeModelSpec")
            .field("name", &self.name)
            .field("layers", &self.layers)
            .field("hidden", &self.hidden)
            .field("heads", &self.heads)
            .field("vocab", &self.vocab)
            .field("max_context", &self.max_context)
            .finish_non_exhaustive()
    }
}

/// One generation request: prompt tokens plus scheduling knobs, mirroring
/// the serving engine's `Request` builder.
#[derive(Debug, Clone)]
pub struct GenerateRequest {
    prompt: Vec<u32>,
    max_tokens: usize,
    priority: Priority,
    deadline: Option<Instant>,
    eos: Option<u32>,
    shard: Option<usize>,
    trace_id: u64,
}

impl GenerateRequest {
    /// Generate up to `max_tokens` tokens from `prompt`, at
    /// [`Priority::Normal`] with no deadline.
    pub fn new(prompt: Vec<u32>, max_tokens: usize) -> GenerateRequest {
        GenerateRequest {
            prompt,
            max_tokens,
            priority: Priority::Normal,
            deadline: None,
            eos: None,
            shard: None,
            trace_id: 0,
        }
    }

    /// Attributes the session to a trace: placement, prefill-chunk, decode
    /// step, and KV events it touches carry `trace_id` in the exported
    /// trace. Id 0 (the default) means unattributed.
    pub fn with_trace(mut self, trace_id: u64) -> GenerateRequest {
        self.trace_id = trace_id;
        self
    }

    /// Sets the priority class (admission order and eviction rank).
    pub fn with_priority(mut self, priority: Priority) -> GenerateRequest {
        self.priority = priority;
        self
    }

    /// Sets an absolute deadline: a session still unfinished when it passes
    /// is answered [`DecodeError::DeadlineExceeded`].
    pub fn with_deadline(mut self, deadline: Instant) -> GenerateRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Stops generation early when `token` is emitted (the token is still
    /// delivered).
    pub fn with_eos(mut self, token: u32) -> GenerateRequest {
        self.eos = Some(token);
        self
    }

    /// Pins the session to decode shard `shard`, bypassing placement (the
    /// session may still be live-migrated later). Out-of-range indices
    /// resolve to [`DecodeError::BadPrompt`] on the session. Mainly for
    /// tests and benches that need a reproducible single-shard baseline.
    pub fn with_shard(mut self, shard: usize) -> GenerateRequest {
        self.shard = Some(shard);
        self
    }
}

/// One emitted token, as streamed through a [`DecodeSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenEvent {
    /// The greedily decoded token id.
    pub token: u32,
    /// Zero-based position within this session's generated tokens.
    pub index: usize,
    /// Simulated engine time at emission, seconds.
    pub sim_time_seconds: f64,
}

/// A finished generation, as returned by [`DecodeSession::collect`].
#[derive(Debug, Clone, PartialEq)]
pub struct Generation {
    /// Every generated token, in order (prompt excluded).
    pub tokens: Vec<u32>,
    /// Simulated time-to-first-token measured from the
    /// [`DecodeModel::generate`] call — includes time queued before
    /// admission, so it is what a client experiences.
    pub ttft_from_submit_seconds: f64,
    /// Simulated time-to-first-token measured from first admission into the
    /// running batch — prompt processing only, so queueing and compute are
    /// separable in benches (`ttft_from_submit - ttft_from_admission` is the
    /// queue wait).
    pub ttft_from_admission_seconds: f64,
    /// Simulated engine time at completion.
    pub completion_sim_seconds: f64,
}

enum Event {
    Token(TokenEvent),
    Done {
        ttft_from_submit_seconds: f64,
        ttft_from_admission_seconds: f64,
        completion_sim_seconds: f64,
    },
    Failed(DecodeError),
}

/// The outcome of one bounded poll of a [`DecodeSession`]
/// ([`DecodeSession::next_timeout`]).
///
/// `Pending` is what makes the poll useful to a streaming bridge: between
/// tokens the caller gets control back and can probe its client socket; if
/// the client is gone it drops the session, and the engine releases the
/// session's KV blocks at the next step boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionPoll {
    /// A token arrived within the timeout.
    Token(TokenEvent),
    /// The generation finished (all tokens already delivered).
    Finished,
    /// No event arrived within the timeout; the generation is still running.
    Pending,
}

/// A live generation: the token stream of one KV-cache session.
///
/// Iterate for streaming consumption (each item is one [`TokenEvent`]), or
/// call [`DecodeSession::collect`] to block until completion. Dropping the
/// session cancels the generation at the next step boundary; the engine
/// frees its KV blocks.
pub struct DecodeSession {
    rx: mpsc::Receiver<Event>,
    done: bool,
}

impl DecodeSession {
    fn failed(err: DecodeError) -> DecodeSession {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(Event::Failed(err));
        DecodeSession { rx, done: false }
    }

    /// Blocks until the generation finishes, returning every token plus its
    /// timing summary.
    ///
    /// # Errors
    /// The first [`DecodeError`] the engine reported, if any.
    pub fn collect(self) -> Result<Generation, DecodeError> {
        let mut tokens = Vec::new();
        loop {
            match self.rx.recv() {
                Ok(Event::Token(event)) => tokens.push(event.token),
                Ok(Event::Done {
                    ttft_from_submit_seconds,
                    ttft_from_admission_seconds,
                    completion_sim_seconds,
                }) => {
                    return Ok(Generation {
                        tokens,
                        ttft_from_submit_seconds,
                        ttft_from_admission_seconds,
                        completion_sim_seconds,
                    })
                }
                Ok(Event::Failed(err)) => return Err(err),
                Err(_) => return Err(DecodeError::Closed),
            }
        }
    }

    /// Waits up to `timeout` for the next event, without consuming the
    /// session. Returns [`SessionPoll::Pending`] on timeout so callers
    /// interleave token consumption with liveness checks of their own
    /// downstream (e.g. a client socket) and can cancel by dropping the
    /// session.
    ///
    /// After `Finished` (or an error) every further call returns `Finished`.
    ///
    /// # Errors
    /// The first [`DecodeError`] the engine reported, if any.
    pub fn next_timeout(&mut self, timeout: Duration) -> Result<SessionPoll, DecodeError> {
        if self.done {
            return Ok(SessionPoll::Finished);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(Event::Token(event)) => Ok(SessionPoll::Token(event)),
            Ok(Event::Done { .. }) => {
                self.done = true;
                Ok(SessionPoll::Finished)
            }
            Ok(Event::Failed(err)) => {
                self.done = true;
                Err(err)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(SessionPoll::Pending),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.done = true;
                Err(DecodeError::Closed)
            }
        }
    }
}

impl Iterator for DecodeSession {
    type Item = Result<TokenEvent, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.rx.recv() {
            Ok(Event::Token(event)) => Some(Ok(event)),
            Ok(Event::Done { .. }) => {
                self.done = true;
                None
            }
            Ok(Event::Failed(err)) => {
                self.done = true;
                Some(Err(err))
            }
            Err(_) => {
                self.done = true;
                Some(Err(DecodeError::Closed))
            }
        }
    }
}

impl fmt::Debug for DecodeSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodeSession").finish_non_exhaustive()
    }
}

/// A registered decode model: the handle owning
/// [`DecodeModel::generate`]. Clonable; addresses the model by name.
#[derive(Clone)]
pub struct DecodeModel {
    name: Arc<str>,
    shared: Arc<Shared>,
}

impl fmt::Debug for DecodeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodeModel")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl DecodeModel {
    /// The model's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A generate-time rejection: counted in
    /// [`DecodeStatsSnapshot`](hidet_runtime::DecodeStatsSnapshot)'s
    /// `sequences_failed` like any engine-side failure.
    fn reject(&self, err: DecodeError) -> DecodeSession {
        self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        DecodeSession::failed(err)
    }

    /// Starts a generation: the prompt is absorbed token by token into a
    /// fresh KV-cache session, then up to `max_tokens` tokens are greedily
    /// decoded and streamed through the returned [`DecodeSession`].
    ///
    /// Invalid requests (empty prompt, out-of-vocabulary token,
    /// `prompt + max_tokens - 1` exceeding the context window) resolve to
    /// [`DecodeError::BadPrompt`] on the session.
    pub fn generate(&self, request: GenerateRequest) -> DecodeSession {
        let def = {
            let registry = self.shared.registry.lock().expect("registry poisoned");
            registry.get(self.name.as_ref()).cloned()
        };
        let Some(def) = def else {
            return self.reject(DecodeError::UnknownModel(self.name.to_string()));
        };
        if request.prompt.is_empty() {
            return self.reject(DecodeError::BadPrompt(
                "prompt must contain at least one token".to_string(),
            ));
        }
        if request.max_tokens == 0 {
            return self.reject(DecodeError::BadPrompt(
                "max_tokens must be at least 1".to_string(),
            ));
        }
        if let Some(&bad) = request.prompt.iter().find(|&&t| t as i64 >= def.vocab) {
            return self.reject(DecodeError::BadPrompt(format!(
                "prompt token {bad} exceeds vocabulary {}",
                def.vocab
            )));
        }
        // The last generated token is emitted but never fed, so the cache
        // holds at most prompt + max_tokens - 1 entries.
        let cache_need = request.prompt.len() + request.max_tokens - 1;
        if cache_need > def.max_context {
            return self.reject(DecodeError::BadPrompt(format!(
                "prompt ({}) + max_tokens ({}) needs {cache_need} cache slots, \
                 context window holds {}",
                request.prompt.len(),
                request.max_tokens,
                def.max_context
            )));
        }
        if let Some(s) = request.shard {
            if s >= self.shared.devices.len() {
                return self.reject(DecodeError::BadPrompt(format!(
                    "shard {s} out of range: engine has {} decode shards",
                    self.shared.devices.len()
                )));
            }
        }
        let (tx, rx) = mpsc::channel();
        let model_key = def_key(&def);
        let mut prompt = VecDeque::from(request.prompt);
        let pending = prompt.pop_front().expect("prompt non-empty");
        let mut sequence = Sequence {
            def,
            cache_need,
            pending,
            forced: prompt,
            fed: Vec::new(),
            emitted: 0,
            max_tokens: request.max_tokens,
            eos: request.eos,
            priority: request.priority,
            deadline: request.deadline,
            rank: 0,
            kv: KvCache::new(),
            tx,
            submitted_sim: 0.0,
            admitted_sim: None,
            prompt_done_sim: None,
            ttft: None,
            ttft_admission: None,
            last_token_sim: 0.0,
            queued_sim: 0.0,
            pressure_moves: 0,
            stress_migrated: false,
            trace_id: request.trace_id,
        };
        {
            // The closed check happens under the waiting lock: shutdown sets
            // the flag under the same lock, and the step loop only exits
            // after draining the queue under it, so a session admitted here
            // is guaranteed to be either served or failed — never stranded.
            let mut waiting = self.shared.waiting.lock().expect("waiting poisoned");
            if self.shared.closed.load(Ordering::SeqCst) {
                return self.reject(DecodeError::Closed);
            }
            // KV-aware placement (under the same lock, so concurrent
            // submitters see each other's queued work): pinned shard if
            // requested, else the cheapest by joint score.
            let needed_blocks = sequence.cache_need.div_ceil(self.shared.block_tokens);
            let shard = request.shard.unwrap_or_else(|| {
                let _place =
                    hidet_trace::global().span(hidet_trace::SpanKind::ShardPlace, request.trace_id);
                place_shard(&self.shared, &waiting, model_key, needed_blocks)
            });
            let now = self.shared.stats.shard_clock(shard);
            sequence.submitted_sim = now;
            sequence.queued_sim = now;
            self.shared.stats.shards[shard]
                .placed
                .fetch_add(1, Ordering::Relaxed);
            waiting.shards[shard].classes[request.priority.index()].push_back(sequence);
        }
        self.shared.cv.notify_all();
        DecodeSession { rx, done: false }
    }
}

/// A validated decode model: dimensions, the fixed-shape step graph and its
/// tensor-id map, and the host-side embedding table.
struct ModelDef {
    name: String,
    layers: usize,
    hidden: usize,
    heads: usize,
    head_dim: usize,
    vocab: i64,
    max_context: usize,
    graph: Graph,
    graph_hash: u64,
    x_id: TensorId,
    mask_id: TensorId,
    past_ids: Vec<(TensorId, TensorId)>,
    logits_id: TensorId,
    /// Device-buffer names of the per-layer `new_k`/`new_v` graph outputs,
    /// precomputed so the per-step KV harvest never allocates.
    cache_out_names: Vec<(String, String)>,
    /// `vocab × hidden` deterministic token embeddings, applied host-side
    /// (the embedding lookup is a memory gather, matching the zoo's
    /// convention of starting from embedded hidden states).
    embed: Vec<f32>,
    /// The validated chunked-prefill graph family, one entry per engine menu
    /// chunk that fits the context window (ascending). Empty when the spec
    /// has no prefill builder or the menu is empty — prompts then absorb
    /// token-wise only.
    prefill: Vec<PrefillDef>,
}

/// One validated prefill graph: a single-sequence `chunk`-token forward pass
/// over `max_context` past slots, plus its tensor-id map (mirrors the decode
/// half of [`ModelDef`]).
struct PrefillDef {
    chunk: usize,
    graph: Graph,
    graph_hash: u64,
    x_id: TensorId,
    mask_id: TensorId,
    past_ids: Vec<(TensorId, TensorId)>,
    logits_id: TensorId,
    cache_out_names: Vec<(String, String)>,
}

/// One active generation, owned by the step loop.
struct Sequence {
    def: Arc<ModelDef>,
    /// Cache slots a full-length run of this sequence occupies
    /// (`prompt + max_tokens - 1`) — the self-preemption feasibility bound.
    cache_need: usize,
    /// Next token to feed.
    pending: u32,
    /// Tokens to feed after `pending` with outputs ignored (prompt tail, or
    /// the replay chain after an eviction).
    forced: VecDeque<u32>,
    /// Tokens whose K/V rows live in the cache — the replay source.
    fed: Vec<u32>,
    emitted: usize,
    max_tokens: usize,
    eos: Option<u32>,
    priority: Priority,
    deadline: Option<Instant>,
    /// Admission order; `(priority, rank)` is the total eviction order.
    rank: u64,
    kv: KvCache,
    tx: mpsc::Sender<Event>,
    submitted_sim: f64,
    /// Simulated clock at *first* admission into the running batch (eviction
    /// re-admissions keep the original stamp) — the `ttft_from_admission`
    /// anchor.
    admitted_sim: Option<f64>,
    /// Simulated clock when every prompt token but the final one was
    /// absorbed — splits TTFT into its prefill and first-decode segments.
    prompt_done_sim: Option<f64>,
    ttft: Option<f64>,
    ttft_admission: Option<f64>,
    last_token_sim: f64,
    /// Owning shard's simulated clock when the sequence last entered a
    /// waiting queue — the queue-delay observation the lane autoscaler
    /// smooths.
    queued_sim: f64,
    /// Pressure-relief migrations taken so far (bounded by
    /// [`PRESSURE_MOVE_LIMIT`]).
    pressure_moves: u32,
    /// Whether [`DecodeConfig::stress_migrate_after`] already moved this
    /// sequence.
    stress_migrated: bool,
    /// Trace id the session's spans/instants are attributed to (0 = none).
    trace_id: u64,
}

impl Sequence {
    /// Eviction rank: strictly greater = evicted first.
    fn key(&self) -> (usize, u64) {
        (self.priority.index(), self.rank)
    }

    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Rebases every simulated-time anchor onto a target shard's clock at
    /// migration: `offset` is target-now minus source-now, so durations
    /// spanning the move (TTFT, ITL) compose the time spent on each
    /// timeline.
    fn rebase(&mut self, offset: f64) {
        self.submitted_sim += offset;
        if let Some(t) = self.admitted_sim.as_mut() {
            *t += offset;
        }
        if let Some(t) = self.prompt_done_sim.as_mut() {
            *t += offset;
        }
        self.last_token_sim += offset;
    }

    /// Forward passes this sequence still needs, roughly: the unfed chain
    /// plus one decode step per remaining token — the work term of the
    /// placement score.
    fn remaining_work(&self) -> usize {
        1 + self.forced.len() + self.max_tokens.saturating_sub(self.emitted)
    }
}

#[derive(Default)]
struct WaitQueues {
    classes: [VecDeque<Sequence>; Priority::COUNT],
}

impl WaitQueues {
    fn pop_highest(&mut self) -> Option<Sequence> {
        self.classes.iter_mut().find_map(VecDeque::pop_front)
    }

    fn is_empty(&self) -> bool {
        self.classes.iter().all(VecDeque::is_empty)
    }
}

/// The engine's waiting sessions: one [`WaitQueues`] per decode shard
/// (placement decides the shard at submission; migration moves sessions
/// between queues later).
struct Waiting {
    shards: Vec<WaitQueues>,
}

impl Waiting {
    fn is_empty(&self) -> bool {
        self.shards.iter().all(WaitQueues::is_empty)
    }
}

struct Shared {
    /// `DecodeConfig::max_batch` — the fixed batch axis model specs are
    /// validated against (the stats copy is purely informational).
    max_batch: usize,
    /// `DecodeConfig::chunk_menu`, sanitized (deduplicated, ascending,
    /// zeroes dropped) — the chunk shapes prefill builders are validated and
    /// compiled at.
    chunk_menu: Vec<usize>,
    /// The decode shard pool ([`DecodeConfig::devices`], defaulted to the
    /// single [`DecodeConfig::device`]); index = shard id everywhere.
    devices: Vec<GpuSpec>,
    /// `DecodeConfig::kv_blocks` — placement's capacity assumption for
    /// model arenas that do not exist yet.
    kv_blocks: usize,
    /// `DecodeConfig::block_tokens` — the allocation granularity placement
    /// converts cache needs into blocks with.
    block_tokens: usize,
    /// While set, the step loop sleeps and admits nothing
    /// ([`DecodeConfig::start_paused`] / [`DecodeEngine::resume`]).
    paused: AtomicBool,
    registry: Mutex<HashMap<String, Arc<ModelDef>>>,
    waiting: Mutex<Waiting>,
    cv: Condvar,
    closed: AtomicBool,
    stats: Arc<DecodeStats>,
    next_rank: AtomicU64,
}

/// The decode engine. See the [module docs](self) for the architecture and
/// `examples/decode_serving.rs` for a tour.
pub struct DecodeEngine {
    shared: Arc<Shared>,
    worker: Option<thread::JoinHandle<()>>,
}

impl DecodeEngine {
    /// Starts the engine's step loop on a background thread.
    pub fn new(config: DecodeConfig) -> DecodeEngine {
        assert!(config.max_batch >= 1, "engine needs at least one slot");
        assert!(config.kv_blocks >= 1 && config.block_tokens >= 1);
        let mut chunk_menu = config.chunk_menu.clone();
        chunk_menu.retain(|&c| c >= 1);
        chunk_menu.sort_unstable();
        chunk_menu.dedup();
        let devices = if config.devices.is_empty() {
            vec![config.device.clone()]
        } else {
            config.devices.clone()
        };
        let stats = Arc::new(DecodeStats::for_shards(
            devices.iter().map(|d| d.name.clone()).collect(),
        ));
        // Publish the initial lane share so the gauge is meaningful before
        // the step loop's first control decision.
        let initial_share = if config.lane_autoscale {
            config.lane_min.clamp(1, config.max_batch)
        } else {
            config.max_batch
        };
        for shard in &stats.shards {
            shard.lane_share.store(initial_share, Ordering::Relaxed);
        }
        let waiting = Waiting {
            shards: (0..devices.len()).map(|_| WaitQueues::default()).collect(),
        };
        let shared = Arc::new(Shared {
            max_batch: config.max_batch,
            chunk_menu,
            devices,
            kv_blocks: config.kv_blocks,
            block_tokens: config.block_tokens,
            paused: AtomicBool::new(config.start_paused),
            registry: Mutex::new(HashMap::new()),
            waiting: Mutex::new(waiting),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
            stats,
            next_rank: AtomicU64::new(1),
        });
        shared
            .stats
            .max_batch
            .store(config.max_batch, Ordering::Relaxed);
        let worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("hidet-decode".into())
                .spawn(move || step_loop(&shared, &config))
                .expect("spawn decode step loop")
        };
        DecodeEngine {
            shared,
            worker: Some(worker),
        }
    }

    /// Registers a decode model, validating that the builder's graph at the
    /// engine's fixed `(max_batch, max_context)` shape follows the
    /// decode-step interface (see
    /// [`hidet_graph::models::transformer_decode_step`]). Re-registering a
    /// name replaces the definition for *new* sessions; in-flight sessions
    /// finish against the one they started with.
    ///
    /// # Errors
    /// [`DecodeError::BadModel`] on an interface mismatch,
    /// [`DecodeError::Closed`] after shutdown began.
    pub fn register(&self, spec: DecodeModelSpec) -> Result<DecodeModel, DecodeError> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(DecodeError::Closed);
        }
        let def = validate_spec(&spec, self.shared.max_batch, &self.shared.chunk_menu)?;
        let name = spec.name.clone();
        self.shared
            .registry
            .lock()
            .expect("registry poisoned")
            .insert(name.clone(), Arc::new(def));
        Ok(DecodeModel {
            name: Arc::from(name),
            shared: Arc::clone(&self.shared),
        })
    }

    /// Releases a [`DecodeConfig::start_paused`] engine: the step loop
    /// begins admitting whatever has queued. Idempotent; a no-op on an
    /// engine that started running.
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }

    /// Current decode statistics.
    pub fn stats(&self) -> DecodeStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// A stats source for
    /// [`hidet_runtime::Engine::attach_decode_stats`]: the serving engine's
    /// `StatsSnapshot::decode` then carries this engine's token-level
    /// metrics. Outlives the engine handle (snapshots freeze after
    /// shutdown).
    pub fn stats_source(&self) -> Arc<dyn Fn() -> DecodeStatsSnapshot + Send + Sync> {
        let stats = Arc::clone(&self.shared.stats);
        Arc::new(move || stats.snapshot())
    }

    /// Stops admitting sessions, drains every active generation to
    /// completion, fails still-queued ones with [`DecodeError::Closed`] and
    /// joins the step loop. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            // Set under the waiting lock so it serializes with `generate`'s
            // locked closed-check + enqueue: every session pushed before
            // this point is visible to the step loop's final drain.
            let _waiting = self.shared.waiting.lock().expect("waiting poisoned");
            self.shared.closed.store(true, Ordering::SeqCst);
        }
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for DecodeEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl fmt::Debug for DecodeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodeEngine").finish_non_exhaustive()
    }
}

/// Builds and checks a [`ModelDef`] against the decode-step interface, plus
/// — when the spec has a prefill builder — one [`PrefillDef`] per menu chunk
/// against the prefill interface.
fn validate_spec(
    spec: &DecodeModelSpec,
    max_batch: usize,
    chunk_menu: &[usize],
) -> Result<ModelDef, DecodeError> {
    let bad = |msg: String| DecodeError::BadModel(msg);
    if spec.layers < 1 || spec.hidden < 1 || spec.heads < 1 || spec.vocab < 1 {
        return Err(bad("layers/hidden/heads/vocab must be positive".into()));
    }
    if spec.hidden % spec.heads != 0 {
        return Err(bad(format!(
            "heads ({}) must divide hidden ({})",
            spec.heads, spec.hidden
        )));
    }
    if spec.max_context < 1 {
        return Err(bad("max_context must be at least 1".into()));
    }
    let batch = max_batch as i64;
    let graph = (spec.builder)(batch, spec.max_context);
    // The graph comes from an arbitrary builder closure: deep-verify it
    // (structure, shape re-inference, KV pairing, mask shape) before
    // trusting its interface — a malformed model is rejected at
    // registration, never inside the step loop.
    let deep_verify = |g: &hidet_graph::Graph, what: &str| -> Result<(), DecodeError> {
        let diags = hidet_analysis::verify_graph(g, hidet_analysis::VerifyLevel::Deep);
        if hidet_analysis::has_errors(&diags) {
            return Err(DecodeError::BadModel(format!(
                "{what} failed verification: {}",
                hidet_analysis::render_text(&diags).trim_end()
            )));
        }
        Ok(())
    };
    deep_verify(&graph, "decode graph")?;
    let rows = batch * spec.heads;
    let head_dim = spec.hidden / spec.heads;
    let expect_inputs = 2 + 2 * spec.layers;
    let expect_outputs = 1 + 2 * spec.layers;
    if graph.inputs().len() != expect_inputs {
        return Err(bad(format!(
            "expected {expect_inputs} graph inputs (x, mask, caches), got {}",
            graph.inputs().len()
        )));
    }
    if graph.outputs().len() != expect_outputs {
        return Err(bad(format!(
            "expected {expect_outputs} graph outputs (logits, caches), got {}",
            graph.outputs().len()
        )));
    }
    let check = |t: TensorId, want: &[i64], what: &str| -> Result<(), DecodeError> {
        let got = graph.tensor(t).shape();
        if got != want {
            return Err(DecodeError::BadModel(format!(
                "{what} has shape {got:?}, expected {want:?}"
            )));
        }
        Ok(())
    };
    let x_id = graph.inputs()[0];
    let mask_id = graph.inputs()[1];
    check(x_id, &[batch, spec.hidden], "input x")?;
    check(mask_id, &[rows, 1, spec.max_context + 1], "input mask")?;
    let mut past_ids = Vec::with_capacity(spec.layers);
    let mut cache_out_ids = Vec::with_capacity(spec.layers);
    for l in 0..spec.layers {
        let pk = graph.inputs()[2 + 2 * l];
        let pv = graph.inputs()[3 + 2 * l];
        check(pk, &[rows, spec.max_context, head_dim], "past_k input")?;
        check(pv, &[rows, spec.max_context, head_dim], "past_v input")?;
        past_ids.push((pk, pv));
        let nk = graph.outputs()[1 + 2 * l];
        let nv = graph.outputs()[2 + 2 * l];
        check(nk, &[rows, spec.max_context + 1, head_dim], "new_k output")?;
        check(nv, &[rows, spec.max_context + 1, head_dim], "new_v output")?;
        cache_out_ids.push((nk, nv));
    }
    let logits_id = graph.outputs()[0];
    check(logits_id, &[batch, spec.vocab], "logits output")?;
    let cache_out_names: Vec<(String, String)> = cache_out_ids
        .iter()
        .map(|(nk, nv)| (format!("t{}", nk.0), format!("t{}", nv.0)))
        .collect();
    let graph_hash = graph.structural_hash();
    let embed = Tensor::randn(&[spec.vocab, spec.hidden], spec.embed_seed)
        .data()
        .expect("randn is materialized")
        .to_vec();
    let mut prefill = Vec::new();
    if let Some(prefill_builder) = &spec.prefill_builder {
        for &chunk in chunk_menu {
            let c = chunk as i64;
            if c > spec.max_context {
                continue; // a chunk can never exceed a sequence's cache need
            }
            let g = prefill_builder(c, spec.max_context);
            let what = |part: &str| format!("prefill[{chunk}] {part}");
            deep_verify(&g, &what("graph"))?;
            if g.inputs().len() != expect_inputs {
                return Err(bad(format!(
                    "{}: expected {expect_inputs} graph inputs, got {}",
                    what("interface"),
                    g.inputs().len()
                )));
            }
            if g.outputs().len() != expect_outputs {
                return Err(bad(format!(
                    "{}: expected {expect_outputs} graph outputs, got {}",
                    what("interface"),
                    g.outputs().len()
                )));
            }
            let pcheck = |t: TensorId, want: &[i64], part: &str| -> Result<(), DecodeError> {
                let got = g.tensor(t).shape();
                if got != want {
                    return Err(DecodeError::BadModel(format!(
                        "{} has shape {got:?}, expected {want:?}",
                        what(part)
                    )));
                }
                Ok(())
            };
            let x_id = g.inputs()[0];
            let mask_id = g.inputs()[1];
            pcheck(x_id, &[c, spec.hidden], "input x")?;
            pcheck(
                mask_id,
                &[spec.heads, c, spec.max_context + c],
                "input mask",
            )?;
            let mut past_ids = Vec::with_capacity(spec.layers);
            let mut out_ids = Vec::with_capacity(spec.layers);
            for l in 0..spec.layers {
                let pk = g.inputs()[2 + 2 * l];
                let pv = g.inputs()[3 + 2 * l];
                pcheck(
                    pk,
                    &[spec.heads, spec.max_context, head_dim],
                    "past_k input",
                )?;
                pcheck(
                    pv,
                    &[spec.heads, spec.max_context, head_dim],
                    "past_v input",
                )?;
                past_ids.push((pk, pv));
                let nk = g.outputs()[1 + 2 * l];
                let nv = g.outputs()[2 + 2 * l];
                pcheck(
                    nk,
                    &[spec.heads, spec.max_context + c, head_dim],
                    "new_k output",
                )?;
                pcheck(
                    nv,
                    &[spec.heads, spec.max_context + c, head_dim],
                    "new_v output",
                )?;
                out_ids.push((nk, nv));
            }
            let logits_id = g.outputs()[0];
            pcheck(logits_id, &[c, spec.vocab], "logits output")?;
            let cache_out_names: Vec<(String, String)> = out_ids
                .iter()
                .map(|(nk, nv)| (format!("t{}", nk.0), format!("t{}", nv.0)))
                .collect();
            let graph_hash = g.structural_hash();
            prefill.push(PrefillDef {
                chunk,
                graph: g,
                graph_hash,
                x_id,
                mask_id,
                past_ids,
                logits_id,
                cache_out_names,
            });
        }
    }
    Ok(ModelDef {
        name: spec.name.clone(),
        layers: spec.layers,
        hidden: spec.hidden as usize,
        heads: spec.heads as usize,
        head_dim: head_dim as usize,
        vocab: spec.vocab,
        max_context: spec.max_context as usize,
        graph,
        graph_hash,
        x_id,
        mask_id,
        past_ids,
        logits_id,
        cache_out_names,
        embed,
        prefill,
    })
}

/// Per-model runtime state owned by the step loop.
struct ModelRt {
    def: Arc<ModelDef>,
    compiled: Arc<hidet::CompiledGraph>,
    /// Analytic step latency on the engine device, simulated seconds.
    estimate: f64,
    ws: Workspace,
    kv: KvAllocator,
    /// Lazily compiled prefill runtimes, keyed by chunk size — a chunk costs
    /// compile time only once a prompt long enough to use it shows up.
    prefill_rts: HashMap<usize, PrefillRt>,
    /// Chunks whose prefill graph failed to compile: the scheduler stops
    /// electing them and the affected prompts absorb token-wise instead —
    /// chunked prefill is an optimization, never a liveness dependency.
    dead_chunks: std::collections::HashSet<usize>,
}

/// One compiled prefill chunk: its plan, analytic latency and a dedicated
/// workspace (prefill buffers are chunk-shaped, so they cannot share the
/// decode workspace).
struct PrefillRt {
    compiled: Arc<hidet::CompiledGraph>,
    estimate: f64,
    ws: Workspace,
}

/// One decode shard owned by the step loop: its device, per-model runtimes
/// (compiled graphs + KV arenas), active set and lane autoscaler. Shards
/// model parallel devices multiplexed by the single engine thread — each
/// shard's pass advances only its own simulated clock.
struct ShardRt {
    gpu: Gpu,
    rts: HashMap<usize, ModelRt>,
    active: Vec<Sequence>,
    scaler: LaneAutoscaler,
    iterations: u64,
}

/// Scores every shard for one incoming sequence — estimated queue delay
/// ([`hidet_sim::estimated_queue_delay`] over the shard's active + waiting
/// work at its current lane share) plus the KV-headroom penalty
/// ([`placement_score`]) — and returns the cheapest. Ties break to the
/// least total pending work, then the lowest id: the delay estimate is the
/// head-of-queue wait, which plateaus while short sessions fill lanes
/// behind the current minimum, so a burst of submissions would otherwise
/// pile onto one shard until its *head* wait finally moved. Runs under the
/// waiting lock, reading only the gauges the step loop publishes, so
/// placement never touches scheduler state.
fn place_shard(shared: &Shared, waiting: &Waiting, model: usize, needed_blocks: usize) -> usize {
    // Shards with no compiled estimate yet are assumed as costly as the
    // hottest known shard (1.0 before any compile — only relative
    // magnitudes matter while everything is cold).
    let mut fallback = 0.0f64;
    for st in &shared.stats.shards {
        let g = st.gauges.lock().expect("stats poisoned");
        fallback = fallback.max(g.step_estimate);
    }
    if fallback <= 0.0 {
        fallback = 1.0;
    }
    let mut best = 0usize;
    let mut best_score = f64::INFINITY;
    let mut best_load = f64::INFINITY;
    for (s, st) in shared.stats.shards.iter().enumerate() {
        let g = st.gauges.lock().expect("stats poisoned");
        let est = if g.step_estimate > 0.0 {
            g.step_estimate
        } else {
            fallback
        };
        let mut pending = g.active_remaining.clone();
        for queue in waiting.shards[s].classes.iter() {
            pending.extend(queue.iter().map(|q| q.remaining_work() as f64 * est));
        }
        let load: f64 = pending.iter().sum();
        let lanes = st.lane_share.load(Ordering::Relaxed).max(1);
        let delay = hidet_sim::estimated_queue_delay(&pending, lanes);
        let (free, capacity) = g
            .kv_free
            .get(&model)
            .copied()
            .unwrap_or((shared.kv_blocks, shared.kv_blocks));
        let score = placement_score(
            delay,
            est,
            needed_blocks,
            free,
            capacity,
            shared.block_tokens,
        );
        if score < best_score || (score == best_score && load < best_load) {
            best_score = score;
            best_load = load;
            best = s;
        }
    }
    best
}

/// The pool's KV headroom as one scheduler pass sees it: `(free, capacity)`
/// blocks per `(shard, model)` arena, debited as migration targets are
/// chosen within the pass so two victims cannot both claim the same free
/// blocks. Arenas that do not exist yet count as full free arenas.
struct ClusterView {
    free: Vec<HashMap<usize, (usize, usize)>>,
    default_blocks: usize,
}

impl ClusterView {
    fn collect(shards: &[ShardRt], default_blocks: usize) -> ClusterView {
        ClusterView {
            free: shards
                .iter()
                .map(|sh| {
                    sh.rts
                        .iter()
                        .map(|(key, rt)| {
                            let cap = rt.kv.capacity();
                            (*key, (cap - rt.kv.blocks_in_use(), cap))
                        })
                        .collect()
                })
                .collect(),
            default_blocks,
        }
    }

    fn entry(&self, shard: usize, model: usize) -> (usize, usize) {
        self.free[shard]
            .get(&model)
            .copied()
            .unwrap_or((self.default_blocks, self.default_blocks))
    }

    /// The shard (≠ `from`) with the most free blocks, if any has `needed`
    /// free right now; ties to the lowest id.
    fn headroom_target(&self, from: usize, model: usize, needed: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (free, shard)
        for s in 0..self.free.len() {
            if s == from {
                continue;
            }
            let (free, _) = self.entry(s, model);
            let better = match best {
                None => free >= needed,
                Some((best_free, _)) => free >= needed && free > best_free,
            };
            if better {
                best = Some((free, s));
            }
        }
        best.map(|(_, s)| s)
    }

    /// The first shard (≠ `from`) whose whole arena could hold `needed`
    /// blocks — the sequence fits there *alone*, even if it has to preempt.
    fn capacity_target(&self, from: usize, model: usize, needed: usize) -> Option<usize> {
        (0..self.free.len())
            .filter(|&s| s != from)
            .find(|&s| self.entry(s, model).1 >= needed)
    }

    fn debit(&mut self, shard: usize, model: usize, needed: usize) {
        let (free, cap) = self.entry(shard, model);
        self.free[shard].insert(model, (free.saturating_sub(needed), cap));
    }
}

/// Moves a preempted sequence onto shard `to`'s queue front: rebases its
/// time anchors onto the target clock and books the migration counters.
/// The caller has already released its KV blocks and rebuilt its replay
/// chain ([`preempt`]) — re-admission replays it on the target, where
/// order-stable schedules make the rebuilt KV bytes (and every downstream
/// token) identical.
fn migrate_sequence(shared: &Shared, mut seq: Sequence, from: usize, to: usize) {
    hidet_trace::global().instant(hidet_trace::SpanKind::KvMigrate, seq.trace_id);
    let target_now = shared.stats.shard_clock(to);
    seq.rebase(target_now - shared.stats.shard_clock(from));
    seq.queued_sim = target_now;
    shared.stats.shards[from]
        .migrations_out
        .fetch_add(1, Ordering::Relaxed);
    shared.stats.shards[to]
        .migrations_in
        .fetch_add(1, Ordering::Relaxed);
    let mut waiting = shared.waiting.lock().expect("waiting poisoned");
    waiting.shards[to].classes[seq.priority.index()].push_front(seq);
    drop(waiting);
    shared.cv.notify_all();
}

/// `(hot, cold)` shard pair when KV occupancy skews: the fullest shard is
/// above [`REBALANCE_HOT_FRACTION`] and leads the emptiest by more than
/// [`REBALANCE_SKEW`].
fn kv_skew(shards: &[ShardRt]) -> Option<(usize, usize)> {
    let frac: Vec<f64> = shards
        .iter()
        .map(|sh| {
            let cap: usize = sh.rts.values().map(|rt| rt.kv.capacity()).sum();
            let used: usize = sh.rts.values().map(|rt| rt.kv.blocks_in_use()).sum();
            if cap == 0 {
                0.0
            } else {
                used as f64 / cap as f64
            }
        })
        .collect();
    let mut hot = 0usize;
    let mut cold = 0usize;
    for s in 1..frac.len() {
        if frac[s] > frac[hot] {
            hot = s;
        }
        if frac[s] < frac[cold] {
            cold = s;
        }
    }
    (frac[hot] >= REBALANCE_HOT_FRACTION && frac[hot] - frac[cold] > REBALANCE_SKEW)
        .then_some((hot, cold))
}

/// The engine's background thread: admission, step execution, KV
/// bookkeeping, token emission — per shard, one pass each per outer
/// iteration.
fn step_loop(shared: &Shared, config: &DecodeConfig) {
    let cache = CompiledCache::new();
    // Compact schedules (see `DecodeConfig::compact_schedules`): one shared
    // record store, seeded per model in `ensure_rt`, served with zero trials.
    let options = if config.compact_schedules && !config.options.tune {
        let mut options = config
            .options
            .clone()
            .with_tuning_cache(Arc::new(Mutex::new(hidet_sched::TuningCache::new())));
        options.tune = true;
        options
    } else {
        config.options.clone()
    };
    // Order-stable reductions, unconditionally: the chunked-prefill contract
    // — token streams and KV contents bit-identical to token-wise absorption
    // — holds only when every reduction in *both* graph families accumulates
    // in pure element-index order, so the same real terms sum in the same
    // order regardless of how many padded positions surround them (see
    // `CompilerOptions::order_stable_reductions`).
    let options = options.order_stable();
    // One ShardRt per device; within a shard, per-ModelDef runtimes are
    // keyed by definition identity — a re-registered name gets fresh state
    // while in-flight sessions keep theirs.
    let lane_min = config.lane_min.clamp(1, config.max_batch);
    let mut shards: Vec<ShardRt> = shared
        .devices
        .iter()
        .map(|spec| ShardRt {
            gpu: Gpu::new(spec.clone()),
            rts: HashMap::new(),
            active: Vec::new(),
            scaler: LaneAutoscaler::new(config.lane_autoscale, lane_min, config.max_batch),
            iterations: 0,
        })
        .collect();
    let nshards = shards.len();
    let mut rebalance_cooldown = 0u64;

    loop {
        // --- admission ---------------------------------------------------
        {
            let mut waiting = shared.waiting.lock().expect("waiting poisoned");
            loop {
                purge_expired_waiting(shared, &mut waiting);
                if shared.closed.load(Ordering::SeqCst) {
                    // Sessions that never started (rank 0 — assigned at
                    // first admission) are failed; in-flight ones — active
                    // or KV-preempted back into a queue — drain to
                    // completion, honoring the shutdown contract.
                    for queue in waiting
                        .shards
                        .iter_mut()
                        .flat_map(|wq| wq.classes.iter_mut())
                    {
                        let mut keep = VecDeque::with_capacity(queue.len());
                        for seq in queue.drain(..) {
                            if seq.rank == 0 {
                                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                                let _ = seq.tx.send(Event::Failed(DecodeError::Closed));
                            } else {
                                keep.push_back(seq);
                            }
                        }
                        *queue = keep;
                    }
                }
                // A paused engine sleeps; shutdown overrides the pause so
                // a never-resumed engine still drains and exits.
                let paused =
                    shared.paused.load(Ordering::SeqCst) && !shared.closed.load(Ordering::SeqCst);
                if !paused {
                    for (s, shard) in shards.iter_mut().enumerate() {
                        // The autoscaler's signal: how long this shard's
                        // oldest queued session has waited on the shard's
                        // own simulated timeline (zero when the queue is
                        // empty — that is what lets the share shrink back).
                        let now = shared.stats.shard_clock(s);
                        let head_wait = waiting.shards[s]
                            .classes
                            .iter()
                            .flatten()
                            .map(|q| (now - q.queued_sim).max(0.0))
                            .fold(0.0f64, f64::max);
                        shard.scaler.observe(head_wait);
                        shared.stats.shards[s]
                            .queue_delay_ewma_nanos
                            .store((shard.scaler.ewma() * 1e9) as u64, Ordering::Relaxed);
                        let admit = match config.mode {
                            BatchingMode::Continuous => true,
                            BatchingMode::Static => shard.active.is_empty(),
                        };
                        if !admit {
                            continue;
                        }
                        while shard.active.len() < shard.scaler.share() {
                            let Some(mut seq) = waiting.shards[s].pop_highest() else {
                                break;
                            };
                            seq.rank = shared.next_rank.fetch_add(1, Ordering::Relaxed);
                            if seq.admitted_sim.is_none() {
                                seq.admitted_sim = Some(now);
                                if seq.forced.is_empty() {
                                    // Single-token prompt: there is nothing
                                    // to prefill, the whole TTFT is
                                    // first-decode.
                                    seq.prompt_done_sim = Some(now);
                                }
                            }
                            shard.active.push(seq);
                        }
                    }
                }
                if shards.iter().any(|sh| !sh.active.is_empty()) {
                    break;
                }
                if shared.closed.load(Ordering::SeqCst) && waiting.is_empty() {
                    return;
                }
                waiting = shared.cv.wait(waiting).expect("waiting poisoned");
            }

            // Drop runtime state of departed model definitions: a
            // re-registration replaces the `ModelDef` identity, and once no
            // registry entry, active sequence or waiting sequence reaches
            // the old one, its workspace and KV arena can never be used
            // again — keeping them would leak an arena per re-registration.
            // (`generate` never holds the registry and waiting locks at
            // once, so taking registry inside waiting cannot deadlock.)
            if shards.iter().any(|sh| !sh.rts.is_empty()) {
                let mut live: std::collections::HashSet<usize> = shards
                    .iter()
                    .flat_map(|sh| sh.active.iter().map(|s| def_key(&s.def)))
                    .collect();
                for queue in waiting.shards.iter().flat_map(|wq| wq.classes.iter()) {
                    live.extend(queue.iter().map(|s| def_key(&s.def)));
                }
                {
                    let registry = shared.registry.lock().expect("registry poisoned");
                    live.extend(registry.values().map(def_key));
                }
                for (s, shard) in shards.iter_mut().enumerate() {
                    let before = shard.rts.len();
                    shard.rts.retain(|key, rt| {
                        let keep = live.contains(key);
                        if !keep {
                            shared.stats.shards[s]
                                .kv_capacity
                                .fetch_sub(rt.kv.capacity(), Ordering::Relaxed);
                        }
                        keep
                    });
                    if shard.rts.len() != before {
                        refresh_shard_kv_gauge(&shard.rts, shared, s);
                    }
                }
            }
        }

        // --- deadline check for active sequences -------------------------
        let now = Instant::now();
        for (s, shard) in shards.iter_mut().enumerate() {
            let mut i = 0;
            let mut removed = false;
            while i < shard.active.len() {
                if shard.active[i].expired(now) {
                    let mut seq = shard.active.swap_remove(i);
                    if let Some(rt) = shard.rts.get_mut(&def_key(&seq.def)) {
                        rt.kv.release(&mut seq.kv);
                    }
                    removed = true;
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = seq.tx.send(Event::Failed(DecodeError::DeadlineExceeded));
                } else {
                    i += 1;
                }
            }
            if removed {
                refresh_shard_kv_gauge(&shard.rts, shared, s);
            }
        }

        // --- one pass per shard: a step per model with active sequences ---
        for s in 0..nshards {
            if shards[s].active.is_empty() {
                continue;
            }
            // The headroom view migration targets are chosen against,
            // debited as targets are picked within the pass. Entries for
            // shards processed earlier this iteration are fresh; later ones
            // may be one pass stale — safe, because a migrated-to shard
            // re-resolves pressure itself at admission.
            let mut view = ClusterView::collect(&shards, config.kv_blocks);
            let shard = &mut shards[s];
            let mut model_keys: Vec<usize> = Vec::new();
            for seq in &shard.active {
                let key = def_key(&seq.def);
                if !model_keys.contains(&key) {
                    model_keys.push(key);
                }
            }
            for key in model_keys {
                // Extract this model's batch (slot order = extraction order).
                let mut batch: Vec<Sequence> = Vec::new();
                let mut i = 0;
                while i < shard.active.len() {
                    if def_key(&shard.active[i].def) == key {
                        batch.push(shard.active.remove(i));
                    } else {
                        i += 1;
                    }
                }
                if batch.is_empty() {
                    continue;
                }
                let def = Arc::clone(&batch[0].def);
                let rt = match ensure_rt(
                    &mut shard.rts,
                    &def,
                    &shard.gpu,
                    &cache,
                    &options,
                    config,
                    shared,
                    s,
                ) {
                    Ok(rt) => rt,
                    Err(err) => {
                        for seq in batch {
                            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                            let _ = seq.tx.send(Event::Failed(err.clone()));
                        }
                        continue;
                    }
                };
                let outcome = run_iteration(
                    shared, &shard.gpu, &cache, &options, config, rt, batch, s, &mut view,
                );
                shard.active.extend(outcome.survivors);
                refresh_shard_kv_gauge(&shard.rts, shared, s);
                // Terminal events go out only after the gauges are current,
                // so a client that observed `Done` sees post-release
                // occupancy.
                for (tx, event) in outcome.terminal {
                    let _ = tx.send(event);
                }
            }
        }

        // --- stress migration (test/bench knob) ---------------------------
        if config.stress_migrate_after > 0 && nshards > 1 {
            for (s, shard) in shards.iter_mut().enumerate() {
                let target = (s + 1) % nshards;
                let mut moved = Vec::new();
                let mut i = 0;
                while i < shard.active.len() {
                    let pick = {
                        let seq = &shard.active[i];
                        !seq.stress_migrated
                            && seq.emitted >= config.stress_migrate_after
                            && shard.rts.contains_key(&def_key(&seq.def))
                    };
                    if pick {
                        let mut seq = shard.active.remove(i);
                        seq.stress_migrated = true;
                        if let Some(rt) = shard.rts.get_mut(&def_key(&seq.def)) {
                            preempt(shared, &mut rt.kv, &mut seq);
                        }
                        moved.push(seq);
                    } else {
                        i += 1;
                    }
                }
                if !moved.is_empty() {
                    refresh_shard_kv_gauge(&shard.rts, shared, s);
                }
                for seq in moved {
                    migrate_sequence(shared, seq, s, target);
                }
            }
        }

        // --- headroom rebalance -------------------------------------------
        if nshards > 1 {
            if rebalance_cooldown > 0 {
                rebalance_cooldown -= 1;
            } else if let Some((hot, cold)) = kv_skew(&shards) {
                // Move the lowest-ranked hot-shard session whose worst-case
                // block need fits the cold shard's free blocks right now.
                let cold_free: HashMap<usize, usize> = shards[cold]
                    .rts
                    .iter()
                    .map(|(key, rt)| (*key, rt.kv.capacity() - rt.kv.blocks_in_use()))
                    .collect();
                let shard = &mut shards[hot];
                let pick = (0..shard.active.len())
                    .filter(|&i| {
                        let seq = &shard.active[i];
                        let needed = seq.cache_need.div_ceil(config.block_tokens);
                        let free = cold_free
                            .get(&def_key(&seq.def))
                            .copied()
                            .unwrap_or(config.kv_blocks);
                        needed <= free && shard.rts.contains_key(&def_key(&seq.def))
                    })
                    .max_by_key(|&i| shard.active[i].key());
                if let Some(i) = pick {
                    let mut seq = shard.active.remove(i);
                    if let Some(rt) = shard.rts.get_mut(&def_key(&seq.def)) {
                        preempt(shared, &mut rt.kv, &mut seq);
                    }
                    refresh_shard_kv_gauge(&shard.rts, shared, hot);
                    migrate_sequence(shared, seq, hot, cold);
                    rebalance_cooldown = REBALANCE_COOLDOWN_ITERS;
                }
            }
        }

        // --- lane autoscaling + placement gauge publish -------------------
        for (s, shard) in shards.iter_mut().enumerate() {
            shard.iterations += 1;
            let est = shard
                .rts
                .values()
                .map(|rt| rt.estimate)
                .fold(0.0f64, f64::max);
            let share = shard.scaler.update(shard.iterations, est);
            let st = &shared.stats.shards[s];
            st.lane_share.store(share, Ordering::Relaxed);
            st.queue_delay_ewma_nanos
                .store((shard.scaler.ewma() * 1e9) as u64, Ordering::Relaxed);
            let rts = &shard.rts;
            let mut gauges = st.gauges.lock().expect("stats poisoned");
            gauges.step_estimate = est;
            gauges.active_remaining = shard
                .active
                .iter()
                .map(|seq| {
                    let e = rts
                        .get(&def_key(&seq.def))
                        .map_or(if est > 0.0 { est } else { 1.0 }, |rt| rt.estimate);
                    seq.remaining_work() as f64 * e
                })
                .collect();
            gauges.kv_free = rts
                .iter()
                .map(|(key, rt)| {
                    let cap = rt.kv.capacity();
                    (*key, (cap - rt.kv.blocks_in_use(), cap))
                })
                .collect();
        }
    }
}

fn def_key(def: &Arc<ModelDef>) -> usize {
    Arc::as_ptr(def) as usize
}

/// Recomputes shard `s`'s KV occupancy gauge from its model arenas, then
/// the pool-wide gauge as the sum of every shard's published value (other
/// shards' arenas are untouched since their last refresh, so their gauges
/// are current).
fn refresh_shard_kv_gauge(rts: &HashMap<usize, ModelRt>, shared: &Shared, s: usize) {
    let in_use: usize = rts.values().map(|rt| rt.kv.blocks_in_use()).sum();
    let st = &shared.stats.shards[s];
    st.kv_in_use.store(in_use, Ordering::Relaxed);
    st.kv_peak.fetch_max(in_use, Ordering::Relaxed);
    // The cluster-wide occupancy is derived from the shard gauges at
    // snapshot time; only its peak needs the summed value *now* (the peak
    // of the sum is not the sum of per-shard peaks).
    let total: usize = shared
        .stats
        .shards
        .iter()
        .map(|st| st.kv_in_use.load(Ordering::Relaxed))
        .sum();
    shared.stats.kv_peak.fetch_max(total, Ordering::Relaxed);
}

/// What one [`run_step`] hands back to the loop: sequences staying active,
/// and terminal `Done`/`Failed` events to deliver *after* the step's gauges
/// are refreshed.
struct StepOutcome {
    survivors: Vec<Sequence>,
    terminal: Vec<(mpsc::Sender<Event>, Event)>,
}

/// Fails expired waiting sequences with `DeadlineExceeded`.
fn purge_expired_waiting(shared: &Shared, waiting: &mut Waiting) {
    let now = Instant::now();
    for queue in waiting
        .shards
        .iter_mut()
        .flat_map(|wq| wq.classes.iter_mut())
    {
        if !queue.iter().any(|s| s.expired(now)) {
            continue;
        }
        let mut keep = VecDeque::with_capacity(queue.len());
        for seq in queue.drain(..) {
            if seq.expired(now) {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                let _ = seq.tx.send(Event::Failed(DecodeError::DeadlineExceeded));
            } else {
                keep.push_back(seq);
            }
        }
        *queue = keep;
    }
}

/// Lazily compiles the model's fixed-shape step graph (seeding compact
/// schedules first — see [`DecodeConfig::compact_schedules`]) and builds its
/// workspace + KV arena.
#[allow(clippy::too_many_arguments)]
fn ensure_rt<'a>(
    rts: &'a mut HashMap<usize, ModelRt>,
    def: &Arc<ModelDef>,
    gpu: &Gpu,
    cache: &CompiledCache,
    options: &CompilerOptions,
    config: &DecodeConfig,
    shared: &Shared,
    shard: usize,
) -> Result<&'a mut ModelRt, DecodeError> {
    let key = def_key(def);
    match rts.entry(key) {
        std::collections::hash_map::Entry::Occupied(entry) => Ok(entry.into_mut()),
        std::collections::hash_map::Entry::Vacant(entry) => {
            if config.compact_schedules && !config.options.tune {
                seed_compact_schedules(&def.graph, gpu, options);
            }
            let (compiled, _) = cache
                .get_or_compile_hashed(
                    &def.graph,
                    def.graph_hash,
                    gpu,
                    options,
                    config.artifact_store.as_deref(),
                )
                .map_err(|e| DecodeError::Compile(e.to_string()))?;
            let estimate = compiled.estimate(gpu);
            let layout = KvLayout {
                layers: def.layers,
                hidden: def.hidden,
                block_tokens: config.block_tokens,
            };
            let kv = KvAllocator::new(layout, config.kv_blocks);
            shared.stats.shards[shard]
                .kv_capacity
                .fetch_add(kv.capacity(), Ordering::Relaxed);
            Ok(entry.insert(ModelRt {
                def: Arc::clone(def),
                compiled,
                estimate,
                ws: Workspace::new(),
                kv,
                prefill_rts: HashMap::new(),
                dead_chunks: std::collections::HashSet::new(),
            }))
        }
    }
}

/// Seeds `options`' tuning cache with the smallest-footprint valid schedule
/// for every matmul problem in `graph`, so the compiler schedules them with
/// zero trials. Decode-step GEMMs have `M = max_batch` (a handful of rows):
/// the smallest hardware-aligned tile both estimates and interprets far
/// cheaper than the mid-size default.
fn seed_compact_schedules(graph: &Graph, gpu: &Gpu, options: &CompilerOptions) {
    let Some(cache) = &options.tuning_cache else {
        return;
    };
    let spec = gpu.spec();
    let compact = hidet_sched::matmul_space(spec)
        .into_iter()
        .min_by_key(|c| (c.threads(), c.block_m * c.block_n, c.block_k, c.stages))
        .expect("schedule space is non-empty");
    let device = spec.fingerprint();
    let mut cache = cache.lock().expect("tuning cache poisoned");
    for op in graph.ops() {
        let problem = match op.kind {
            hidet_graph::OpKind::Matmul => {
                let a = graph.tensor(op.inputs[0]).shape();
                let b = graph.tensor(op.inputs[1]).shape();
                hidet_sched::MatmulProblem::new(a[0], b[1], a[1])
            }
            hidet_graph::OpKind::BatchMatmul => {
                let a = graph.tensor(op.inputs[0]).shape();
                let b = graph.tensor(op.inputs[1]).shape();
                hidet_sched::MatmulProblem {
                    batch: a[0],
                    m: a[1],
                    n: b[2],
                    k: a[2],
                }
            }
            _ => continue,
        };
        if cache.lookup(&device, problem).is_none() {
            cache.insert(
                &device,
                hidet_sched::TuningRecord {
                    problem,
                    config: compact,
                    trials: 1,
                    tuning_seconds: 0.0,
                    best_latency_us: 1.0,
                },
            );
        }
    }
}

/// Chunk-size election: the largest compiled chunk that fits both the
/// remaining feed chain and the iteration's leftover token budget. `None`
/// sends the sequence down the token-wise path (tail smaller than the
/// smallest chunk, budget exhausted, or chunking disabled).
fn elect_chunk(remaining: usize, menu: &[usize], budget: usize) -> Option<usize> {
    menu.iter()
        .copied()
        .filter(|&c| c <= remaining && c <= budget)
        .max()
}

/// One scheduler iteration for `batch` (all sequences share `rt`'s model):
/// a prefill phase — chunked prompt absorption under the iteration token
/// budget, in `(priority, rank)` order — followed by one decode step for
/// every live sequence that did not prefill. A sequence advances through
/// exactly one forward pass per iteration, so decodes never observe more
/// than one prefill-chunk bubble between tokens.
#[allow(clippy::too_many_arguments)]
fn run_iteration(
    shared: &Shared,
    gpu: &Gpu,
    cache: &CompiledCache,
    options: &CompilerOptions,
    config: &DecodeConfig,
    rt: &mut ModelRt,
    mut batch: Vec<Sequence>,
    shard: usize,
    view: &mut ClusterView,
) -> StepOutcome {
    // Iteration spans are shard-scoped (many sequences), so they carry
    // trace id 0; the nested prefill/decode spans attribute per-sequence.
    let _span = hidet_trace::global().span(hidet_trace::SpanKind::DecodeIteration, 0);
    let n = batch.len();
    let mut state = vec![SlotState::Live; n];
    let mut terminal: Vec<(mpsc::Sender<Event>, Event)> = Vec::new();
    let mut prefilled = vec![false; n];

    // --- prefill phase -----------------------------------------------------
    // Static mode stays the pure token-wise baseline the serving benches
    // compare against.
    let mut ran_prefill = false;
    if config.mode == BatchingMode::Continuous
        && !rt.def.prefill.is_empty()
        && config.prefill_token_budget > 0
    {
        let mut budget = config.prefill_token_budget;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| batch[i].key());
        for i in order {
            if state[i] != SlotState::Live || batch[i].forced.is_empty() {
                // Plain decode, or the final chain token: token-wise path.
                continue;
            }
            let menu: Vec<usize> = rt
                .def
                .prefill
                .iter()
                .map(|p| p.chunk)
                .filter(|c| !rt.dead_chunks.contains(c))
                .collect();
            let remaining = 1 + batch[i].forced.len();
            let Some(chunk) = elect_chunk(remaining, &menu, budget) else {
                continue;
            };
            if run_prefill(
                shared,
                gpu,
                cache,
                options,
                config,
                rt,
                &mut batch,
                &mut state,
                &mut terminal,
                i,
                chunk,
                shard,
                view,
            ) {
                budget -= chunk;
                prefilled[i] = true;
                ran_prefill = true;
            }
        }
    }

    // --- decode step for everything that did not prefill -------------------
    let decode_slots: Vec<usize> = (0..n)
        .filter(|&i| state[i] == SlotState::Live && !prefilled[i])
        .collect();
    if !decode_slots.is_empty() {
        run_decode_step(
            shared,
            gpu,
            rt,
            &mut batch,
            &mut state,
            &mut terminal,
            &decode_slots,
            shard,
            view,
        );
    }
    if ran_prefill {
        shared
            .stats
            .prefill_iterations
            .fetch_add(1, Ordering::Relaxed);
        if !decode_slots.is_empty() {
            shared
                .stats
                .interleaved_iterations
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    // Reassemble: live sequences stay active; evicted ones rejoin the head
    // of their class queue (they re-admit before newcomers of their class,
    // but with a fresh — higher — rank, so the total eviction order can
    // never cycle); migrated ones rejoin the *target shard's* queue head
    // with their time anchors rebased. Finished/failed sequences drop here;
    // their channels already carried Done/Failed.
    let mut survivors = Vec::with_capacity(n);
    let mut requeue: Vec<Sequence> = Vec::new();
    let mut migrations: Vec<(Sequence, usize)> = Vec::new();
    for (seq, state) in batch.into_iter().zip(state) {
        match state {
            SlotState::Live => survivors.push(seq),
            SlotState::Evicted => requeue.push(seq),
            SlotState::Migrated(target) => migrations.push((seq, target)),
            SlotState::Dropped => {}
        }
    }
    if !requeue.is_empty() {
        let now = shared.stats.shard_clock(shard);
        let mut waiting = shared.waiting.lock().expect("waiting poisoned");
        for mut seq in requeue.into_iter().rev() {
            seq.queued_sim = now;
            waiting.shards[shard].classes[seq.priority.index()].push_front(seq);
        }
        drop(waiting);
        shared.cv.notify_all();
    }
    for (seq, target) in migrations {
        migrate_sequence(shared, seq, shard, target);
    }
    StepOutcome {
        survivors,
        terminal,
    }
}

/// Absorbs one `chunk`-token slice of `batch[slot]`'s feed chain through the
/// chunk's prefill graph: stage past + causal mask → forward pass → append
/// `chunk` KV slots (with the same eviction machinery as decode) → harvest
/// the fresh rows. When the chunk consumes the whole chain, the last logits
/// row yields the sequence's next token — a chunk ending a prompt emits the
/// first generated token in the same pass.
///
/// Returns whether the pass ran (and thus consumed budget); `false` means
/// the chunk's graph failed to compile — it is retired to `dead_chunks` and
/// the sequence falls through to the token-wise path, untouched.
#[allow(clippy::too_many_arguments)]
fn run_prefill(
    shared: &Shared,
    gpu: &Gpu,
    cache: &CompiledCache,
    options: &CompilerOptions,
    config: &DecodeConfig,
    rt: &mut ModelRt,
    batch: &mut [Sequence],
    state: &mut [SlotState],
    terminal: &mut Vec<(mpsc::Sender<Event>, Event)>,
    slot: usize,
    chunk: usize,
    shard: usize,
    view: &mut ClusterView,
) -> bool {
    let _span =
        hidet_trace::global().span(hidet_trace::SpanKind::PrefillChunk, batch[slot].trace_id);
    // Lazily compile this chunk's runtime (same compact-schedule seeding as
    // the decode step).
    if !rt.prefill_rts.contains_key(&chunk) {
        let pdef = rt
            .def
            .prefill
            .iter()
            .find(|p| p.chunk == chunk)
            .expect("elected chunks come from def.prefill");
        if config.compact_schedules && !config.options.tune {
            seed_compact_schedules(&pdef.graph, gpu, options);
        }
        match cache.get_or_compile_hashed(
            &pdef.graph,
            pdef.graph_hash,
            gpu,
            options,
            config.artifact_store.as_deref(),
        ) {
            Ok((compiled, _)) => {
                let estimate = compiled.estimate(gpu);
                rt.prefill_rts.insert(
                    chunk,
                    PrefillRt {
                        compiled,
                        estimate,
                        ws: Workspace::new(),
                    },
                );
            }
            Err(_) => {
                rt.dead_chunks.insert(chunk);
                return false;
            }
        }
    }
    let ModelRt {
        def,
        kv,
        prefill_rts,
        ..
    } = rt;
    let pdef = def
        .prefill
        .iter()
        .find(|p| p.chunk == chunk)
        .expect("compiled above");
    let prt = prefill_rts.get_mut(&chunk).expect("compiled above");
    let plan = prt.compiled.plan();
    let (hidden, heads, head_dim) = (def.hidden, def.heads, def.head_dim);
    let mc = def.max_context;
    let vocab = def.vocab as usize;

    // --- stage inputs ------------------------------------------------------
    let seq = &batch[slot];
    let p = seq.kv.tokens();
    let x = prt
        .ws
        .input_mut(plan, pdef.x_id)
        .expect("x id validated at registration");
    let embed_row = |t: u32| &def.embed[t as usize * hidden..(t as usize + 1) * hidden];
    x[..hidden].copy_from_slice(embed_row(seq.pending));
    for (j, &t) in seq.forced.iter().take(chunk - 1).enumerate() {
        x[(j + 1) * hidden..(j + 2) * hidden].copy_from_slice(embed_row(t));
    }
    // Causal mask: chunk row `i` (global position `p + i`) attends the `p`
    // cached tokens (columns `0..p`) and chunk positions `0..=i` (columns
    // `mc..=mc + i`); padded cache slots and intra-chunk future positions
    // stay at MASK_NEG, exactly as bit-transparent as decode-step padding.
    let mask = prt
        .ws
        .input_mut(plan, pdef.mask_id)
        .expect("mask id validated at registration");
    mask.fill(MASK_NEG);
    let span = mc + chunk;
    for h in 0..heads {
        for i in 0..chunk {
            let row = (h * chunk + i) * span;
            mask[row..row + p].fill(0.0);
            mask[row + mc..row + mc + i + 1].fill(0.0);
        }
    }
    for (l, &(pk_id, pv_id)) in pdef.past_ids.iter().enumerate() {
        for (stream, id) in [(0usize, pk_id), (1usize, pv_id)] {
            let buf = prt
                .ws
                .input_mut(plan, id)
                .expect("cache ids validated at registration");
            buf.fill(0.0);
            for t in 0..p {
                let lane = kv.lane(&seq.kv, t, l, stream);
                for h in 0..heads {
                    let dst = (h * mc + t) * head_dim;
                    buf[dst..dst + head_dim]
                        .copy_from_slice(&lane[h * head_dim..(h + 1) * head_dim]);
                }
            }
        }
    }

    // --- forward pass ------------------------------------------------------
    if let Err(err) = prt.ws.run_prepared(plan, gpu) {
        let err = DecodeError::Execution(format!("{} prefill[{chunk}]: {err}", def.name));
        let seq = &mut batch[slot];
        kv.release(&mut seq.kv);
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        terminal.push((seq.tx.clone(), Event::Failed(err)));
        state[slot] = SlotState::Dropped;
        return true;
    }
    let now = shared
        .stats
        .advance_shard_prefill_clock(shard, prt.estimate);
    shared.stats.prefill_passes.fetch_add(1, Ordering::Relaxed);

    // --- append + harvest the chunk's KV rows ------------------------------
    let remaining = 1 + batch[slot].forced.len();
    let mut absorbed = 0usize;
    for j in 0..chunk {
        let Some(kvslot) =
            append_with_pressure(shared, kv, batch, state, terminal, slot, shard, view)
        else {
            // Self-preempted (replay chain rebuilt from what was harvested)
            // or dropped — either way this pass is over.
            break;
        };
        // Fresh rows sit at positions `mc..mc + chunk` of the concat
        // outputs; rows are per-head (`heads` is the batch axis of the
        // single-sequence prefill graph).
        for (l, (nk_name, nv_name)) in pdef.cache_out_names.iter().enumerate() {
            for (stream, name) in [(0usize, nk_name), (1usize, nv_name)] {
                for h in 0..heads {
                    let src = (h * (mc + chunk) + mc + j) * head_dim;
                    kv.copy_into_lane(
                        kvslot,
                        l,
                        stream,
                        h * head_dim,
                        prt.ws.device_memory(),
                        name,
                        src,
                        head_dim,
                    );
                }
            }
        }
        let seq = &mut batch[slot];
        seq.fed.push(seq.pending);
        absorbed += 1;
        if let Some(next) = seq.forced.pop_front() {
            seq.pending = next;
        }
    }
    if absorbed > 0 {
        shared
            .stats
            .prefill_tokens
            .fetch_add(absorbed, Ordering::Relaxed);
    }
    if state[slot] != SlotState::Live {
        return true;
    }
    let seq = &mut batch[slot];
    if absorbed == remaining {
        // The chunk consumed the whole chain: the last row's logits are this
        // sequence's next token. For a first-time prompt that token is the
        // first emission — TTFT lands here, a whole chunk earlier than
        // token-wise absorption would have allowed.
        shared
            .stats
            .prompt_tokens
            .fetch_add(absorbed - 1, Ordering::Relaxed);
        if seq.emitted == 0 && seq.prompt_done_sim.is_none() {
            seq.prompt_done_sim = Some(now);
        }
        let logits = prt
            .ws
            .output(pdef.logits_id)
            .expect("logits are a graph output");
        let token = argmax(&logits[(chunk - 1) * vocab..chunk * vocab]);
        state[slot] = emit_token(shared, kv, seq, token, now, terminal, shard);
    } else {
        // Mid-prompt (or mid-replay): every output of this pass is ignored,
        // exactly like token-wise forced feeding.
        shared
            .stats
            .prompt_tokens
            .fetch_add(absorbed, Ordering::Relaxed);
        if seq.forced.is_empty() && seq.emitted == 0 && seq.prompt_done_sim.is_none() {
            seq.prompt_done_sim = Some(now);
        }
    }
    true
}

/// Executes one decode step for the `slots` members of `batch`: stage → run
/// → append KV (with eviction + recompute under pressure) → emit/retire.
/// Logits/buffer rows are indexed by position within `slots`, not by batch
/// index — prefilled sequences simply leave their row staged to zero.
#[allow(clippy::too_many_arguments)]
fn run_decode_step(
    shared: &Shared,
    gpu: &Gpu,
    rt: &mut ModelRt,
    batch: &mut [Sequence],
    state: &mut [SlotState],
    terminal: &mut Vec<(mpsc::Sender<Event>, Event)>,
    slots: &[usize],
    shard: usize,
    view: &mut ClusterView,
) {
    // A decode step covers the whole batch; attribute it to the first
    // slot's trace so at least one request's timeline shows the step.
    let _span = hidet_trace::global().span(
        hidet_trace::SpanKind::DecodeStep,
        slots.first().map_or(0, |&i| batch[i].trace_id),
    );
    let ModelRt {
        def,
        compiled,
        estimate,
        ws,
        kv,
        ..
    } = rt;
    let plan = compiled.plan();
    let (hidden, heads, head_dim) = (def.hidden, def.heads, def.head_dim);
    let mc = def.max_context;
    let vocab = def.vocab as usize;

    // --- stage inputs (in place: zero steady-state allocations) -----------
    let x = ws
        .input_mut(plan, def.x_id)
        .expect("x id validated at registration");
    x.fill(0.0);
    for (pos, &i) in slots.iter().enumerate() {
        let token = batch[i].pending as usize;
        x[pos * hidden..(pos + 1) * hidden]
            .copy_from_slice(&def.embed[token * hidden..(token + 1) * hidden]);
    }
    let mask = ws
        .input_mut(plan, def.mask_id)
        .expect("mask id validated at registration");
    mask.fill(MASK_NEG);
    let span = mc + 1;
    for row in 0..mask.len() / span {
        mask[row * span + mc] = 0.0; // the current token is always attendable
    }
    for (pos, &i) in slots.iter().enumerate() {
        for h in 0..heads {
            let row = (pos * heads + h) * span;
            mask[row..row + batch[i].kv.tokens()].fill(0.0);
        }
    }
    // The gather re-stages every sequence's full cache each step. An
    // incremental variant (resident past buffers, appending only the new
    // token's rows) would save O(tokens) copies per slot, but needs stable
    // slot assignment across steps — today slots are re-derived from the
    // active order, which shifts as sequences retire. Host cost is dominated
    // by kernel interpretation, not these copies, so stable slots are left
    // as future work.
    for (l, &(pk_id, pv_id)) in def.past_ids.iter().enumerate() {
        for (stream, id) in [(0usize, pk_id), (1usize, pv_id)] {
            let buf = ws
                .input_mut(plan, id)
                .expect("cache ids validated at registration");
            buf.fill(0.0);
            for (pos, &i) in slots.iter().enumerate() {
                let seq = &batch[i];
                for t in 0..seq.kv.tokens() {
                    let lane = kv.lane(&seq.kv, t, l, stream);
                    for h in 0..heads {
                        let dst = ((pos * heads + h) * mc + t) * head_dim;
                        buf[dst..dst + head_dim]
                            .copy_from_slice(&lane[h * head_dim..(h + 1) * head_dim]);
                    }
                }
            }
        }
    }

    // --- forward pass ------------------------------------------------------
    if let Err(err) = ws.run_prepared(plan, gpu) {
        let err = DecodeError::Execution(format!("{}: {err}", def.name));
        for &i in slots {
            let seq = &mut batch[i];
            kv.release(&mut seq.kv);
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            terminal.push((seq.tx.clone(), Event::Failed(err.clone())));
            state[i] = SlotState::Dropped;
        }
        return;
    }
    let now = shared.stats.advance_shard_clock(shard, *estimate);
    shared.stats.shards[shard]
        .steps
        .fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .occupied_slots
        .fetch_add(slots.len(), Ordering::Relaxed);

    // --- append KV, decode, emit/retire ------------------------------------
    for (pos, &i) in slots.iter().enumerate() {
        if state[i] != SlotState::Live {
            continue;
        }
        let Some(kvslot) = append_with_pressure(shared, kv, batch, state, terminal, i, shard, view)
        else {
            continue;
        };
        // Harvest the new K/V rows device-to-device: the concat outputs hold
        // the current token at sequence position `mc`.
        for (l, (nk_name, nv_name)) in def.cache_out_names.iter().enumerate() {
            for (stream, name) in [(0usize, nk_name), (1usize, nv_name)] {
                for h in 0..heads {
                    let src = ((pos * heads + h) * (mc + 1) + mc) * head_dim;
                    kv.copy_into_lane(
                        kvslot,
                        l,
                        stream,
                        h * head_dim,
                        ws.device_memory(),
                        name,
                        src,
                        head_dim,
                    );
                }
            }
        }
        let seq = &mut batch[i];
        seq.fed.push(seq.pending);
        // Greedy decode of this slot's logits row.
        let logits = ws.output(def.logits_id).expect("logits are a graph output");
        let token = argmax(&logits[pos * vocab..(pos + 1) * vocab]);
        if let Some(next) = seq.forced.pop_front() {
            // Prompt absorption or post-eviction replay: the model's output
            // is already known; keep feeding the chain.
            shared.stats.prompt_tokens.fetch_add(1, Ordering::Relaxed);
            seq.pending = next;
            if seq.forced.is_empty() && seq.emitted == 0 && seq.prompt_done_sim.is_none() {
                seq.prompt_done_sim = Some(now);
            }
            continue;
        }
        // A fresh token: emit it.
        state[i] = emit_token(shared, kv, seq, token, now, terminal, shard);
    }
}

/// Reserves one KV token slot for `batch[slot]`, evicting under pressure.
/// The strictly lower-ranked victim is preempted first — landing on the
/// pool's roomiest other shard ([`SlotState::Migrated`]) when one has the
/// headroom, locally otherwise. With no victim the requester yields itself:
/// to a shard with free blocks, else locally (when this arena could hold it
/// alone), else to any shard whose *whole arena* could.
/// [`DecodeError::KvExhausted`] surfaces only when no shard in the pool can
/// fit the sequence even alone. Returns `None` when the slot itself was
/// preempted, migrated or dropped — `state` and `terminal` already reflect
/// it.
#[allow(clippy::too_many_arguments)]
fn append_with_pressure(
    shared: &Shared,
    kv: &mut KvAllocator,
    batch: &mut [Sequence],
    state: &mut [SlotState],
    terminal: &mut Vec<(mpsc::Sender<Event>, Event)>,
    slot: usize,
    shard: usize,
    view: &mut ClusterView,
) -> Option<crate::kv::KvSlot> {
    let model = def_key(&batch[slot].def);
    // Pressure relief may only move a sequence so many times
    // ([`PRESSURE_MOVE_LIMIT`]); past the cap it behaves single-shard.
    let relief_target = |seq: &Sequence, view: &ClusterView, needed: usize| {
        (seq.pressure_moves < PRESSURE_MOVE_LIMIT)
            .then(|| view.headroom_target(shard, model, needed))
            .flatten()
    };
    loop {
        match kv.append(&mut batch[slot].kv) {
            Ok(kvslot) => {
                hidet_trace::global().instant(hidet_trace::SpanKind::KvAlloc, batch[slot].trace_id);
                return Some(kvslot);
            }
            Err(KvError::Exhausted) => match pick_victim(batch, state, slot) {
                Some(v) => {
                    let needed = kv.layout().blocks_for(batch[v].cache_need);
                    let target = relief_target(&batch[v], view, needed);
                    preempt(shared, kv, &mut batch[v]);
                    state[v] = match target {
                        Some(t) => {
                            view.debit(t, model, needed);
                            batch[v].pressure_moves += 1;
                            SlotState::Migrated(t)
                        }
                        None => SlotState::Evicted,
                    };
                }
                None => {
                    let needed = kv.layout().blocks_for(batch[slot].cache_need);
                    if let Some(t) = relief_target(&batch[slot], view, needed) {
                        preempt(shared, kv, &mut batch[slot]);
                        view.debit(t, model, needed);
                        batch[slot].pressure_moves += 1;
                        state[slot] = SlotState::Migrated(t);
                    } else if needed <= kv.capacity() {
                        preempt(shared, kv, &mut batch[slot]);
                        state[slot] = SlotState::Evicted;
                    } else if let Some(t) = view.capacity_target(shard, model, needed) {
                        preempt(shared, kv, &mut batch[slot]);
                        view.debit(t, model, needed);
                        state[slot] = SlotState::Migrated(t);
                    } else {
                        let seq = &mut batch[slot];
                        kv.release(&mut seq.kv);
                        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                        terminal.push((seq.tx.clone(), Event::Failed(DecodeError::KvExhausted)));
                        state[slot] = SlotState::Dropped;
                    }
                    return None;
                }
            },
        }
    }
}

/// Emits a freshly decoded token for `seq` — TTFT on first emission (with
/// its queue/prefill/first-decode decomposition), ITL afterwards — and
/// retires the sequence when it finished. Returns the slot's next state.
fn emit_token(
    shared: &Shared,
    kv: &mut KvAllocator,
    seq: &mut Sequence,
    token: u32,
    now: f64,
    terminal: &mut Vec<(mpsc::Sender<Event>, Event)>,
    shard: usize,
) -> SlotState {
    let index = seq.emitted;
    seq.emitted += 1;
    if seq.ttft.is_none() {
        let submitted = seq.submitted_sim;
        let admitted = seq.admitted_sim.unwrap_or(submitted);
        let prompt_done = seq.prompt_done_sim.unwrap_or(admitted);
        seq.ttft = Some(now - submitted);
        seq.ttft_admission = Some(now - admitted);
        shared.stats.record_ttft(now - submitted);
        shared.stats.record_ttft_admission(now - admitted);
        shared.stats.record_ttft_queue(admitted - submitted);
        shared.stats.record_ttft_prefill(prompt_done - admitted);
        shared.stats.record_ttft_first_decode(now - prompt_done);
    } else {
        shared.stats.record_itl(now - seq.last_token_sim);
    }
    seq.last_token_sim = now;
    shared.stats.shards[shard]
        .tokens
        .fetch_add(1, Ordering::Relaxed);
    let delivered = seq
        .tx
        .send(Event::Token(TokenEvent {
            token,
            index,
            sim_time_seconds: now,
        }))
        .is_ok();
    let finished = seq.emitted >= seq.max_tokens || seq.eos == Some(token) || !delivered;
    if finished {
        kv.release(&mut seq.kv);
        terminal.push((
            seq.tx.clone(),
            Event::Done {
                ttft_from_submit_seconds: seq.ttft.expect("at least one token emitted"),
                ttft_from_admission_seconds: seq.ttft_admission.expect("set alongside ttft"),
                completion_sim_seconds: now,
            },
        ));
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        SlotState::Dropped
    } else {
        seq.pending = token;
        SlotState::Live
    }
}

/// Preempts `seq` under KV pressure: releases its blocks and rebuilds its
/// feed chain so that — once re-admitted — every cached token is re-fed
/// (outputs ignored), then the pending one, then whatever was already
/// forced. Recompute is invisible to the client: tokens already emitted are
/// never re-emitted, and determinism makes the replayed cache identical.
fn preempt(shared: &Shared, kv: &mut KvAllocator, seq: &mut Sequence) {
    hidet_trace::global().instant(hidet_trace::SpanKind::KvEvict, seq.trace_id);
    kv.release(&mut seq.kv);
    shared.stats.kv_evictions.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .recomputed_tokens
        .fetch_add(seq.fed.len(), Ordering::Relaxed);
    let mut chain: VecDeque<u32> = seq.fed.drain(..).collect();
    chain.push_back(seq.pending);
    chain.extend(seq.forced.drain(..));
    seq.pending = chain.pop_front().expect("fed chain non-empty");
    seq.forced = chain;
}

/// Per-slot outcome of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Still generating: stays active.
    Live,
    /// Preempted by KV pressure: cache freed, replay chain built, requeued
    /// on the same shard.
    Evicted,
    /// Live-migrated: cache freed, replay chain built, re-admitted at the
    /// front of the target shard's queue.
    Migrated(usize),
    /// Finished or failed: response sent, cache freed.
    Dropped,
}

/// Selects the eviction victim for `requester`: the strictly lower-ranked
/// (greatest `(priority, rank)` key) live sequence still holding blocks.
/// `None` when no such victim exists — the requester itself must fail.
fn pick_victim(batch: &[Sequence], state: &[SlotState], requester: usize) -> Option<usize> {
    let req_key = batch[requester].key();
    (0..batch.len())
        .filter(|&i| i != requester && state[i] == SlotState::Live)
        .filter(|&i| batch[i].kv.blocks() > 0)
        .filter(|&i| batch[i].key() > req_key)
        .max_by_key(|&i| batch[i].key())
}

/// Greedy decode: index of the row maximum (ties break to the lowest
/// index, so decoding is fully deterministic).
fn argmax(row: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > row[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[0.5]), 0);
        assert_eq!(argmax(&[-2.0, -1.0, -1.5]), 1);
    }

    #[test]
    fn generate_request_builder() {
        let req = GenerateRequest::new(vec![1, 2], 5)
            .with_priority(Priority::High)
            .with_eos(7);
        assert_eq!(req.priority, Priority::High);
        assert_eq!(req.eos, Some(7));
        assert!(req.deadline.is_none());
    }

    #[test]
    fn spec_validation_rejects_bad_dims_and_interfaces() {
        // heads must divide hidden.
        let spec = DecodeModelSpec::transformer("m", 1, 30, 4, 8, 8);
        assert!(matches!(
            validate_spec(&spec, 2, &[]),
            Err(DecodeError::BadModel(_))
        ));
        // A builder whose graph is not a decode step.
        let spec = DecodeModelSpec::custom("m", 1, 16, 2, 8, 8, |batch, _| {
            let mut g = hidet_graph::GraphBuilder::new("not_decode");
            let x = g.input("x", &[batch, 16]);
            let y = g.relu(x);
            g.output(y).build()
        });
        assert!(matches!(
            validate_spec(&spec, 2, &[]),
            Err(DecodeError::BadModel(_))
        ));
        // The real builder validates.
        let spec = DecodeModelSpec::transformer("m", 1, 16, 2, 8, 8);
        let def = validate_spec(&spec, 2, &[]).unwrap();
        assert_eq!(def.head_dim, 8);
        assert_eq!(def.embed.len(), 8 * 16);
    }

    #[test]
    fn prefill_defs_follow_the_menu_and_skip_oversized_chunks() {
        // Context window 8: chunks 4 and 8 fit, 16 is skipped; a custom spec
        // without a prefill builder yields no prefill defs at all.
        let spec = DecodeModelSpec::transformer("m", 1, 16, 2, 8, 8);
        let def = validate_spec(&spec, 2, &[4, 8, 16]).unwrap();
        let chunks: Vec<usize> = def.prefill.iter().map(|p| p.chunk).collect();
        assert_eq!(chunks, vec![4, 8]);
        for p in &def.prefill {
            assert_eq!(p.past_ids.len(), 1);
            assert_eq!(p.cache_out_names.len(), 1);
        }
        let plain = DecodeModelSpec::custom("m", 1, 16, 2, 8, 8, |batch, past| {
            hidet_graph::models::transformer_decode_step("m", batch, past, 1, 16, 2, 8)
        });
        let def = validate_spec(&plain, 2, &[4, 8]).unwrap();
        assert!(def.prefill.is_empty());
    }

    #[test]
    fn chunk_election_boundaries() {
        let menu = [16, 64, 256];
        // Exact multiple of the largest chunk.
        assert_eq!(elect_chunk(512, &menu, 256), Some(256));
        assert_eq!(elect_chunk(256, &menu, 256), Some(256));
        // One short of a chunk boundary drops to the next size down.
        assert_eq!(elect_chunk(255, &menu, 256), Some(64));
        assert_eq!(elect_chunk(17, &menu, 256), Some(16));
        assert_eq!(elect_chunk(16, &menu, 256), Some(16));
        // Tails smaller than the smallest chunk go token-wise.
        assert_eq!(elect_chunk(15, &menu, 256), None);
        assert_eq!(elect_chunk(1, &menu, 256), None);
        // The iteration budget caps the chunk, then disables election.
        assert_eq!(elect_chunk(512, &menu, 100), Some(64));
        assert_eq!(elect_chunk(512, &menu, 15), None);
        // No compiled chunks: chunking is off.
        assert_eq!(elect_chunk(512, &[], 256), None);
    }

    #[test]
    fn eviction_order_is_total_and_priority_first() {
        let (tx, _rx) = mpsc::channel();
        let def = Arc::new(
            validate_spec(&DecodeModelSpec::transformer("m", 1, 16, 2, 8, 8), 2, &[]).unwrap(),
        );
        let seq = |priority: Priority, rank: u64, blocks: usize| {
            let mut kv = KvCache::new();
            // Fake block ownership via a real allocator.
            let mut alloc = KvAllocator::new(
                KvLayout {
                    layers: 1,
                    hidden: 16,
                    block_tokens: 1,
                },
                4,
            );
            for _ in 0..blocks {
                alloc.append(&mut kv).unwrap();
            }
            Sequence {
                def: Arc::clone(&def),
                cache_need: 4,
                pending: 0,
                forced: VecDeque::new(),
                fed: Vec::new(),
                emitted: 0,
                max_tokens: 4,
                eos: None,
                priority,
                deadline: None,
                rank,
                kv,
                tx: tx.clone(),
                submitted_sim: 0.0,
                admitted_sim: None,
                prompt_done_sim: None,
                ttft: None,
                ttft_admission: None,
                last_token_sim: 0.0,
                queued_sim: 0.0,
                pressure_moves: 0,
                stress_migrated: false,
                trace_id: 0,
            }
        };
        let batch = vec![
            seq(Priority::High, 1, 1),
            seq(Priority::Normal, 2, 1),
            seq(Priority::BestEffort, 3, 1),
            seq(Priority::BestEffort, 4, 0), // no blocks: never a victim
        ];
        let state = vec![SlotState::Live; 4];
        // High evicts the youngest best-effort holder.
        assert_eq!(pick_victim(&batch, &state, 0), Some(2));
        // Best-effort rank 3 can only evict strictly lower-ranked peers —
        // none here hold blocks.
        assert_eq!(pick_victim(&batch, &state, 2), None);
        // Normal evicts best-effort but never High.
        assert_eq!(pick_victim(&batch, &state, 1), Some(2));
    }
}
