//! Bounded lock-free MPSC ring buffer: the ingress hot path.
//!
//! Layout follows the bounded-queue design of Vyukov: each slot carries its
//! own sequence number, so producers and the consumer coordinate entirely
//! through per-slot atomics plus two cursors — no mutex, no condvar, no
//! allocation after construction. Restricted here to many producers / one
//! consumer: acceptor threads push accepted connections ([`Producer::push`],
//! a CAS on the head cursor), exactly one lane thread pops them
//! ([`Consumer::pop`], a release store on the tail cursor). The
//! single-consumer constraint is enforced by the type system: [`ring`]
//! returns one non-clonable [`Consumer`] whose `pop` takes `&mut self`.
//!
//! A full ring fails the push immediately and hands the value back — that
//! *is* the backpressure signal: the acceptor sheds the connection with
//! `429` instead of blocking behind a slow lane.
//!
//! ```
//! use hidet_server::ring::ring;
//! let (tx, mut rx) = ring::<u32>(4);
//! assert!(tx.push(7).is_ok());
//! assert_eq!(rx.pop(), Some(7));
//! assert_eq!(rx.pop(), None);
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads the cursors to their own cache lines so producer CAS traffic on the
/// head does not false-share with the consumer's tail stores.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Slot state, Vyukov-style: `pos` means free for the producer claiming
    /// ticket `pos`; `pos + 1` means occupied and readable when the consumer
    /// reaches ticket `pos`; `pos + capacity` means drained and free for the
    /// producer one lap later.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    slots: Box<[Slot<T>]>,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
    /// Next ticket producers claim (CAS).
    head: CachePadded<AtomicUsize>,
    /// Next ticket the single consumer drains (plain store, Release).
    tail: CachePadded<AtomicUsize>,
    /// Failed head CAS attempts — the contention gauge surfaced in ingress
    /// stats. A retry loops straight back to another CAS; nothing blocks.
    cas_retries: AtomicUsize,
}

// The ring moves `T` values across threads (producers write, the consumer
// reads), exactly like a channel: `T: Send` is the only requirement.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Drain still-enqueued values so their destructors run. `&mut self`
        // guarantees no concurrent producer or consumer remains.
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        while pos != head {
            let slot = &self.slots[pos & self.mask];
            if slot.seq.load(Ordering::Acquire) == pos.wrapping_add(1) {
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
            pos = pos.wrapping_add(1);
        }
    }
}

/// A new ring holding at least `capacity` items (rounded up to a power of
/// two, minimum 2, so index arithmetic is a mask). The [`Producer`] clones
/// freely across acceptor threads; the single [`Consumer`] belongs to one
/// lane thread.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(2).next_power_of_two();
    let slots = (0..capacity)
        .map(|i| Slot {
            seq: AtomicUsize::new(i),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let shared = Arc::new(Shared {
        slots,
        mask: capacity - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        cas_retries: AtomicUsize::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// The producer side: clonable, shared by every acceptor thread.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Producer<T> {
    fn clone(&self) -> Producer<T> {
        Producer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Producer<T> {
    /// Enqueues `value` from any producer thread. On a full ring the value
    /// comes straight back as `Err` — the caller sheds instead of waiting.
    ///
    /// Lock-free: the only loop is CAS arbitration between producers, and a
    /// failed CAS means another producer made progress.
    pub fn push(&self, value: T) -> Result<(), T> {
        let shared = &*self.shared;
        let mut pos = shared.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &shared.slots[pos & shared.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot free for this ticket: claim it.
                match shared.head.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Sole owner of the slot until the seq store below
                        // publishes it to the consumer.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => {
                        shared.cas_retries.fetch_add(1, Ordering::Relaxed);
                        pos = current;
                    }
                }
            } else if (seq.wrapping_sub(pos) as isize) < 0 {
                // The slot still holds an undrained value from one lap ago:
                // the ring is full.
                return Err(value);
            } else {
                // Another producer claimed this ticket; chase the head.
                pos = shared.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Number of items currently enqueued (racy by nature; a gauge).
    pub fn depth(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        head.wrapping_sub(tail)
    }

    /// The ring's capacity (post power-of-two rounding).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Failed producer CAS attempts so far (contention gauge).
    pub fn cas_retries(&self) -> usize {
        self.shared.cas_retries.load(Ordering::Relaxed)
    }
}

/// The consumer side: exactly one per ring, owned by one lane thread.
/// Not clonable; [`Consumer::pop`] takes `&mut self`, so concurrent popping
/// is ruled out at compile time.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Consumer<T> {
    /// Dequeues the next value, or `None` when the ring is empty (including
    /// when a producer has claimed a slot but not yet published it).
    pub fn pop(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let pos = shared.tail.0.load(Ordering::Relaxed);
        let slot = &shared.slots[pos & shared.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == pos.wrapping_add(1) {
            // Occupied and published: read it out.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            // Free the slot for the producer one full lap later.
            slot.seq
                .store(pos.wrapping_add(shared.mask + 1), Ordering::Release);
            shared.tail.0.store(pos.wrapping_add(1), Ordering::Release);
            Some(value)
        } else {
            None
        }
    }

    /// Number of items currently enqueued (racy by nature; a gauge).
    pub fn depth(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        head.wrapping_sub(tail)
    }

    /// The ring's capacity (post power-of-two rounding).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ring::Producer")
            .field("depth", &self.depth())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ring::Consumer")
            .field("depth", &self.depth())
            .field("capacity", &self.capacity())
            .finish()
    }
}
