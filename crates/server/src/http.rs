//! Hand-rolled HTTP/1.1 over `std::net`: request parsing, fixed responses
//! and chunked streaming.
//!
//! Deliberately minimal — the subset the v2 API needs and nothing else:
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies, `Transfer-Encoding: chunked` for token streams. No keep-alive,
//! no pipelining, no TLS; the repo has no dependencies to hand those to,
//! and the ingress design (one ring job per connection) is simplest when a
//! connection is a request.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers), bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body, bytes.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Uppercase method, e.g. `POST`.
    pub method: String,
    /// Request target path with the query string split off, e.g. `/v2/infer`.
    pub path: String,
    /// The query string (without the `?`), empty when the target has none.
    pub query: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, already length-delimited by `Content-Length`.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the query string contains the exact `key=value` pair.
    pub fn query_flag(&self, key: &str, value: &str) -> bool {
        self.query
            .split('&')
            .any(|pair| pair.split_once('=') == Some((key, value)))
    }
}

/// Reads one request from the stream. `Ok(None)` means the peer closed
/// before sending anything (a clean no-request connection).
///
/// # Errors
/// I/O errors, malformed request lines, or heads/bodies past the caps
/// (mapped onto `io::ErrorKind::InvalidData`).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<HttpRequest>> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(invalid("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(invalid("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| invalid("head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| invalid("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| invalid("missing method"))?
        .to_uppercase();
    let target = parts.next().ok_or_else(|| invalid("missing path"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let version = parts.next().ok_or_else(|| invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| invalid("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| invalid("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(invalid("body too large"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Some(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// The reason phrase for the status codes the v2 API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response with `Connection: close`.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response(stream, status, "application/json", body)
}

/// Writes a complete response of any content type with `Connection: close`
/// (the Prometheus text exposition at `GET /v2/metrics` is not JSON).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes the fixed shed response: `429` + `Retry-After`. Called on the
/// acceptor path, before any parsing — the bytes are assembled without
/// touching the request.
pub fn write_shed(stream: &mut TcpStream, retry_after_seconds: u64) -> io::Result<()> {
    let body = "{\"error\":\"overloaded\"}";
    let head = format!(
        "HTTP/1.1 429 Too Many Requests\r\nRetry-After: {retry_after_seconds}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    // Drain request bytes that already arrived, without blocking: closing a
    // socket with unread data in its receive queue sends RST instead of
    // FIN, which would throw away the very response just written.
    let _ = stream.set_nonblocking(true);
    let mut scratch = [0u8; 4096];
    while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
    let _ = stream.shutdown(std::net::Shutdown::Write);
    Ok(())
}

/// A `Transfer-Encoding: chunked` response in progress: one JSON document
/// per chunk (newline-terminated), ended by the zero-length chunk.
/// Writes are blocking — a slow or stalled client backpressures the
/// producer through the socket buffer.
#[derive(Debug)]
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Sends the response head and returns the writer.
    pub fn begin(stream: &'a mut TcpStream, status: u16) -> io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status),
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one line as one chunk (the newline is appended here).
    pub fn chunk_line(&mut self, line: &str) -> io::Result<()> {
        let payload_len = line.len() + 1;
        write!(self.stream, "{payload_len:x}\r\n{line}\n\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminating zero-length chunk.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        (client.join().unwrap(), server)
    }

    #[test]
    fn parses_a_request_with_body() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"POST /v2/infer HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
            )
            .unwrap();
        let req = read_request(&mut server).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v2/infer");
        assert_eq!(req.query, "");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn splits_the_query_string_off_the_path() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v2/generate?debug=timing&x=1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let req = read_request(&mut server).unwrap().unwrap();
        assert_eq!(req.path, "/v2/generate");
        assert_eq!(req.query, "debug=timing&x=1");
        assert!(req.query_flag("debug", "timing"));
        assert!(req.query_flag("x", "1"));
        assert!(!req.query_flag("debug", "on"));
    }

    #[test]
    fn clean_close_yields_none() {
        let (client, mut server) = pair();
        drop(client);
        assert!(read_request(&mut server).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_request_line() {
        let (mut client, mut server) = pair();
        client.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        assert!(read_request(&mut server).is_err());
    }

    #[test]
    fn chunked_stream_is_parseable() {
        let (mut client, mut server) = pair();
        let writer = thread::spawn(move || {
            let mut w = ChunkedWriter::begin(&mut server, 200).unwrap();
            w.chunk_line("{\"a\":1}").unwrap();
            w.chunk_line("{\"b\":2}").unwrap();
            w.finish().unwrap();
            // `server` drops here, closing the socket so the client sees EOF.
        });
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        writer.join().unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(text.contains("{\"a\":1}\n"), "{text}");
        assert!(text.contains("{\"b\":2}\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }
}
