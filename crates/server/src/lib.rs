//! # hidet-server — a network front-end with a lock-free ingress hot path
//!
//! Serves the hidet runtime over HTTP/1.1 on plain `std::net`
//! (DESIGN.md §8). Four routes:
//!
//! * `POST /v2/models` — register a model (small MLP heads, the paper's
//!   evaluation zoo, or an autoregressive transformer for decode);
//! * `POST /v2/infer` — one blocking inference, priority and per-request
//!   timeout honored;
//! * `POST /v2/generate` — a chunked `application/x-ndjson` stream, one
//!   token per chunk, bridged from a [`hidet_decode::DecodeSession`];
//! * `GET /v2/stats` — the engine's [`hidet_runtime::StatsSnapshot`]
//!   including the ingress section this crate feeds.
//!
//! Between the acceptor threads and the engines sits the part the crate is
//! named for: a bounded **lock-free MPSC ring buffer** per lane
//! ([`ring`]), so the accept → admission → enqueue path takes zero mutex
//! acquisitions. Overload is answered *at the socket*: when the engine's
//! estimated queue delay (sampled into an atomic off the hot path) exceeds
//! the configured bound for a listener's class, the acceptor writes a
//! fixed `429` + `Retry-After` without parsing the request — and a full
//! ring sheds the same way instead of blocking the acceptor.
//!
//! Two listeners ([`HidetServer::priority_addr`],
//! [`HidetServer::public_addr`]) give admission its class signal without
//! inspecting bytes: the public listener sheds first under load, the
//! priority listener keeps [`hidet_runtime::Priority::High`]'s headroom.
//!
//! ```no_run
//! use std::sync::Arc;
//! use hidet_decode::{DecodeConfig, DecodeEngine};
//! use hidet_runtime::{Engine, EngineConfig};
//! use hidet_server::{HidetServer, ServerConfig};
//!
//! let engine = Arc::new(Engine::new(EngineConfig::quick())?);
//! let decode = Arc::new(DecodeEngine::new(DecodeConfig::default()));
//! let server = HidetServer::start(ServerConfig::default(), engine, decode)?;
//! println!("serving on {}", server.public_addr());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod api;
pub mod http;
pub mod ring;
mod server;

pub use http::{ChunkedWriter, HttpRequest};
pub use server::{HidetServer, ServerConfig};
