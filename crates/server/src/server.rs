//! The server proper: two acceptor threads, a lock-free ingress ring per
//! lane, lane consumer threads, and the v2 route handlers.
//!
//! The hot path — accept, admission check, enqueue — takes **zero mutex
//! acquisitions**: admission reads a cached [`AtomicU64`] delay signal
//! (refreshed by a background sampler, because the engine's own estimate
//! takes shard locks), counters are atomics, and the enqueue is
//! [`crate::ring::Producer::push`]. Overload is answered at the socket:
//! the acceptor writes a fixed `429` + `Retry-After` without parsing a
//! byte of the request.
//!
//! Two listeners make admission class-aware without parsing: the
//! *priority* listener sheds at [`Priority::High`]'s delay slack, the
//! *public* listener at [`Priority::BestEffort`]'s — so under overload the
//! public side sheds first while priority clients keep their headroom.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hidet_decode::{DecodeEngine, DecodeError, GenerateRequest, SessionPoll};
use hidet_runtime::{
    AdmissionSignal, Engine, EngineError, IngressStatsSnapshot, LatencyReservoir, Priority, Request,
};
use hidet_trace::{Collector, SpanKind, TraceConfig};

use crate::api::{self, ModelDirectory};
use crate::http::{self, ChunkedWriter, HttpRequest};
use crate::ring::{ring, Consumer, Producer};

/// Ingress tuning knobs. The defaults suit tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Lane (consumer) threads; each owns one ring.
    pub lanes: usize,
    /// Per-lane ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Estimated-queue-delay bound for socket-level shedding. A listener
    /// sheds when the sampled delay exceeds `bound × class delay slack`.
    /// `None` disables socket shedding (ring-full shedding still applies).
    pub shed_delay_bound: Option<Duration>,
    /// `Retry-After` value on shed responses, seconds.
    pub retry_after_seconds: u64,
    /// How often the sampler refreshes the cached admission signal.
    pub signal_interval: Duration,
    /// Pin lane threads to distinct cores (Linux only; best-effort).
    pub pin_lanes: bool,
    /// Tracing level applied to the process-wide tracer at startup:
    /// `MetricsOnly` (the default) keeps `GET /v2/metrics` live at ~zero
    /// overhead; `Full` (or sampled) additionally retains spans for
    /// `GET /v2/trace`.
    pub trace: TraceConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            lanes: 2,
            ring_capacity: 64,
            shed_delay_bound: None,
            retry_after_seconds: 1,
            signal_interval: Duration::from_millis(1),
            pin_lanes: false,
            trace: TraceConfig::MetricsOnly,
        }
    }
}

/// One accepted connection, queued for a lane.
struct ConnJob {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Counters behind [`IngressStatsSnapshot`]. The TTFB reservoir is the one
/// mutex here, and only lane (consumer) threads touch it — never the
/// accept/enqueue path.
#[derive(Default)]
struct Counters {
    accepted: AtomicUsize,
    shed_at_socket: AtomicUsize,
    shed_ring_full: AtomicUsize,
    served: AtomicUsize,
    streams_cancelled: AtomicUsize,
    ttfb: Mutex<LatencyReservoir>,
}

/// Everything the route handlers need, shared across lanes.
struct Inner {
    engine: Arc<Engine>,
    decode: Arc<DecodeEngine>,
    directory: ModelDirectory,
    counters: Counters,
    closed: AtomicBool,
}

/// The running front-end. Bound to two ephemeral loopback ports; dropping
/// it (or calling [`HidetServer::shutdown`]) stops the threads.
pub struct HidetServer {
    priority_addr: SocketAddr,
    public_addr: SocketAddr,
    inner: Arc<Inner>,
    producers: Vec<Producer<ConnJob>>,
    threads: Vec<JoinHandle<()>>,
    /// Drains per-thread trace rings in the background; joined on drop.
    _collector: Collector,
}

impl std::fmt::Debug for HidetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HidetServer")
            .field("priority_addr", &self.priority_addr)
            .field("public_addr", &self.public_addr)
            .finish_non_exhaustive()
    }
}

impl HidetServer {
    /// Starts the front-end with the engine itself as the admission signal.
    pub fn start(
        config: ServerConfig,
        engine: Arc<Engine>,
        decode: Arc<DecodeEngine>,
    ) -> io::Result<HidetServer> {
        let signal: Arc<dyn AdmissionSignal> = Arc::clone(&engine) as Arc<dyn AdmissionSignal>;
        HidetServer::start_with_signal(config, engine, decode, signal)
    }

    /// Starts the front-end with an explicit admission signal — tests
    /// substitute a fake to drive shedding deterministically.
    ///
    /// Attaches ingress and decode stats sources to the engine, so
    /// [`Engine::stats`] (and `GET /v2/stats`) carry both sections.
    pub fn start_with_signal(
        config: ServerConfig,
        engine: Arc<Engine>,
        decode: Arc<DecodeEngine>,
        signal: Arc<dyn AdmissionSignal>,
    ) -> io::Result<HidetServer> {
        let lanes = config.lanes.max(1);
        hidet_trace::global().set_config(config.trace);
        let priority_listener = TcpListener::bind("127.0.0.1:0")?;
        let public_listener = TcpListener::bind("127.0.0.1:0")?;
        let priority_addr = priority_listener.local_addr()?;
        let public_addr = public_listener.local_addr()?;

        let inner = Arc::new(Inner {
            engine: Arc::clone(&engine),
            decode: Arc::clone(&decode),
            directory: ModelDirectory::default(),
            counters: Counters::default(),
            closed: AtomicBool::new(false),
        });

        let mut producers = Vec::with_capacity(lanes);
        let mut consumers = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let (tx, rx) = ring::<ConnJob>(config.ring_capacity);
            producers.push(tx);
            consumers.push(rx);
        }

        let mut threads = Vec::new();
        let mut lane_threads = Vec::new();
        for (lane, consumer) in consumers.into_iter().enumerate() {
            let inner = Arc::clone(&inner);
            let pin = config.pin_lanes;
            let handle = thread::Builder::new()
                .name(format!("hidet-lane-{lane}"))
                .spawn(move || {
                    if pin {
                        pin_to_core(lane);
                    }
                    lane_loop(consumer, &inner);
                })?;
            lane_threads.push(handle.thread().clone());
            threads.push(handle);
        }

        // The cached admission signal: estimated queue delay in
        // microseconds, refreshed off the hot path. Sampling through the
        // engine takes shard locks, which is exactly why acceptors read
        // this atomic instead of the engine.
        let delay_micros = Arc::new(AtomicU64::new(0));
        if config.shed_delay_bound.is_some() {
            let delay_micros = Arc::clone(&delay_micros);
            let inner = Arc::clone(&inner);
            let interval = config.signal_interval;
            threads.push(
                thread::Builder::new()
                    .name("hidet-admission-sampler".to_string())
                    .spawn(move || {
                        while !inner.closed.load(Ordering::Acquire) {
                            let seconds = signal.estimated_queue_delay_seconds();
                            delay_micros.store((seconds.max(0.0) * 1e6) as u64, Ordering::Relaxed);
                            thread::sleep(interval);
                        }
                    })?,
            );
        }

        for (listener, class) in [
            (priority_listener, Priority::High),
            (public_listener, Priority::BestEffort),
        ] {
            let inner = Arc::clone(&inner);
            let producers = producers.clone();
            let lane_threads = lane_threads.clone();
            let delay_micros = Arc::clone(&delay_micros);
            let config = config.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("hidet-accept-{}", class.label()))
                    .spawn(move || {
                        acceptor_loop(
                            &listener,
                            class,
                            &inner,
                            &producers,
                            &lane_threads,
                            &delay_micros,
                            &config,
                        );
                    })?,
            );
        }

        let server = HidetServer {
            priority_addr,
            public_addr,
            inner,
            producers,
            threads,
            _collector: Collector::spawn(hidet_trace::global(), Duration::from_millis(10)),
        };
        engine.attach_ingress_stats(server.stats_source());
        engine.attach_decode_stats(decode.stats_source());
        Ok(server)
    }

    /// Address of the priority listener (sheds at [`Priority::High`] slack).
    pub fn priority_addr(&self) -> SocketAddr {
        self.priority_addr
    }

    /// Address of the public listener (sheds at [`Priority::BestEffort`]
    /// slack).
    pub fn public_addr(&self) -> SocketAddr {
        self.public_addr
    }

    /// A closure producing the live ingress snapshot — the shape
    /// [`Engine::attach_ingress_stats`] wants (attached automatically by
    /// [`HidetServer::start`]).
    pub fn stats_source(&self) -> Arc<dyn Fn() -> IngressStatsSnapshot + Send + Sync> {
        let inner = Arc::clone(&self.inner);
        let producers = self.producers.clone();
        Arc::new(move || snapshot(&inner.counters, &producers))
    }

    /// The live ingress snapshot.
    pub fn ingress_stats(&self) -> IngressStatsSnapshot {
        snapshot(&self.inner.counters, &self.producers)
    }

    /// Stops accepting, finishes queued work and joins every thread.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        if self.inner.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the two acceptors: each is parked in accept(); a throwaway
        // connection gets each one back to its closed check.
        for addr in [self.priority_addr, self.public_addr] {
            let _ = TcpStream::connect(addr);
        }
        for handle in &self.threads {
            handle.thread().unpark();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HidetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-listener accept loop. No locks: admission reads the cached
/// atomic, the enqueue is a lock-free push, and a shed writes a canned
/// response without parsing the request.
fn acceptor_loop(
    listener: &TcpListener,
    class: Priority,
    inner: &Inner,
    producers: &[Producer<ConnJob>],
    lane_threads: &[thread::Thread],
    delay_micros: &AtomicU64,
    config: &ServerConfig,
) {
    let shed_above_micros = config
        .shed_delay_bound
        .map(|bound| bound.as_secs_f64() * class.delay_slack() * 1e6);
    let mut next_lane = 0usize;
    loop {
        let Ok((mut stream, _)) = listener.accept() else {
            if inner.closed.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        if inner.closed.load(Ordering::Acquire) {
            return;
        }
        if let Some(limit) = shed_above_micros {
            if delay_micros.load(Ordering::Relaxed) as f64 > limit {
                inner
                    .counters
                    .shed_at_socket
                    .fetch_add(1, Ordering::Relaxed);
                let _ = http::write_shed(&mut stream, config.retry_after_seconds);
                continue;
            }
        }
        let mut job = Some(ConnJob {
            stream,
            accepted_at: Instant::now(),
        });
        // Try every lane once, starting round-robin: a single busy lane must
        // not force a shed while others have room.
        for offset in 0..producers.len() {
            let lane = (next_lane + offset) % producers.len();
            match producers[lane].push(job.take().expect("job still in hand")) {
                Ok(()) => {
                    lane_threads[lane].unpark();
                    next_lane = lane.wrapping_add(1);
                    break;
                }
                Err(back) => job = Some(back),
            }
        }
        match job {
            None => {
                inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Some(mut job) => {
                inner
                    .counters
                    .shed_ring_full
                    .fetch_add(1, Ordering::Relaxed);
                let _ = http::write_shed(&mut job.stream, config.retry_after_seconds);
            }
        }
    }
}

/// The lane consumer loop: drain the ring, park when empty, exit when the
/// server closes (after a final drain, so accepted connections still get
/// answers).
fn lane_loop(mut consumer: Consumer<ConnJob>, inner: &Inner) {
    loop {
        if let Some(job) = consumer.pop() {
            handle_connection(job, inner);
            continue;
        }
        if inner.closed.load(Ordering::Acquire) {
            return;
        }
        thread::park_timeout(Duration::from_millis(1));
    }
}

/// Consecutive wall-clock checkpoints for one request, in integer
/// nanoseconds. Each [`RequestTiming::mark`] charges the time since the
/// previous checkpoint to a named segment (re-marking a name accumulates,
/// which is how the generate stream splits alternating decode waits and
/// chunk writes) — so the segments always telescope: their sum equals the
/// wire total from accept to the last checkpoint, exactly.
struct RequestTiming {
    cursor: Instant,
    segments: Vec<(&'static str, u128)>,
    trace_id: u64,
    debug: bool,
}

impl RequestTiming {
    fn new(accepted_at: Instant, trace_id: u64) -> RequestTiming {
        RequestTiming {
            cursor: accepted_at,
            segments: Vec::new(),
            trace_id,
            debug: false,
        }
    }

    /// Charges the interval since the previous checkpoint to `name`.
    fn mark(&mut self, name: &'static str) {
        let now = Instant::now();
        let ns = now.duration_since(self.cursor).as_nanos();
        self.cursor = now;
        match self.segments.iter_mut().find(|(n, _)| *n == name) {
            Some(seg) => seg.1 += ns,
            None => self.segments.push((name, ns)),
        }
    }

    /// The segments to render, or `None` without `?debug=timing`.
    fn rendered(&self) -> Option<&[(&'static str, u128)]> {
        self.debug.then_some(self.segments.as_slice())
    }
}

fn handle_connection(mut job: ConnJob, inner: &Inner) {
    let tracer = hidet_trace::global();
    let trace_id = tracer.new_trace_id();
    let mut timing = RequestTiming::new(job.accepted_at, trace_id);
    // The ring wait ended when this lane picked the job up — recorded
    // retroactively from the accept timestamp.
    tracer.span_closed(
        SpanKind::HttpQueue,
        trace_id,
        job.accepted_at,
        timing.cursor,
    );
    timing.mark("queue");

    let _ = job.stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = job.stream.set_write_timeout(Some(Duration::from_secs(5)));
    let request = {
        let _parse = tracer.span(SpanKind::HttpParse, trace_id);
        match http::read_request(&mut job.stream) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(err) => {
                record_ttfb(inner, job.accepted_at);
                let _ =
                    http::write_json(&mut job.stream, 400, &api::render_error(&err.to_string()));
                inner.counters.served.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    };
    timing.mark("parse");
    timing.debug = request.query_flag("debug", "timing");

    let _handle = tracer.span(SpanKind::HttpHandle, trace_id);
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v2/models") => respond(inner, &mut job, trace_id, register(inner, &request)),
        ("POST", "/v2/infer") => {
            let response = infer(inner, &request, &mut timing);
            respond(inner, &mut job, trace_id, response);
        }
        ("POST", "/v2/generate") => generate(inner, &mut job, &request, &mut timing),
        ("GET", "/v2/stats") => {
            let body = api::render_stats(&inner.engine.stats());
            respond(inner, &mut job, trace_id, (200, body));
        }
        ("GET", "/v2/metrics") => {
            let body = metrics_exposition(inner);
            record_ttfb(inner, job.accepted_at);
            let _respond = tracer.span(SpanKind::HttpRespond, trace_id);
            let _ = http::write_response(
                &mut job.stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
            inner.counters.served.fetch_add(1, Ordering::Relaxed);
        }
        ("GET", "/v2/trace") => {
            let body = hidet_trace::global().chrome_trace_json();
            respond(inner, &mut job, trace_id, (200, body));
        }
        (
            _,
            "/v2/models" | "/v2/infer" | "/v2/generate" | "/v2/stats" | "/v2/metrics" | "/v2/trace",
        ) => respond(
            inner,
            &mut job,
            trace_id,
            (405, api::render_error("method not allowed")),
        ),
        (_, path) => respond(
            inner,
            &mut job,
            trace_id,
            (404, api::render_error(&format!("no route for {path}"))),
        ),
    }
}

/// The `GET /v2/metrics` body: engine/decode/ingress families bridged from
/// the live stats snapshot, followed by the tracer's own span/event
/// families — one well-formed text exposition.
fn metrics_exposition(inner: &Inner) -> String {
    let mut text = api::render_prometheus(&inner.engine.stats());
    text.push_str(&hidet_trace::global().render_metrics());
    text
}

/// Writes a complete JSON response, recording TTFB just before the first
/// byte goes out.
fn respond(inner: &Inner, job: &mut ConnJob, trace_id: u64, (status, body): (u16, String)) {
    record_ttfb(inner, job.accepted_at);
    let _respond = hidet_trace::global().span(SpanKind::HttpRespond, trace_id);
    let _ = http::write_json(&mut job.stream, status, &body);
    inner.counters.served.fetch_add(1, Ordering::Relaxed);
}

fn record_ttfb(inner: &Inner, accepted_at: Instant) {
    let seconds = accepted_at.elapsed().as_secs_f64();
    inner
        .counters
        .ttfb
        .lock()
        .expect("ttfb reservoir poisoned")
        .push(seconds);
}

fn register(inner: &Inner, request: &HttpRequest) -> (u16, String) {
    let body = match api::parse_register(&request.body) {
        Ok(body) => body,
        Err(msg) => return (400, api::render_error(&msg)),
    };
    {
        let infer = inner.directory.infer.lock().expect("directory poisoned");
        let generate = inner.directory.generate.lock().expect("directory poisoned");
        if infer.contains_key(&body.name) || generate.contains_key(&body.name) {
            return (
                400,
                api::render_error(&format!("\"{}\" is already registered", body.name)),
            );
        }
    }
    match api::infer_spec(&body) {
        Ok(Some(spec)) => match inner.engine.register(spec) {
            Ok(handle) => {
                inner
                    .directory
                    .infer
                    .lock()
                    .expect("directory poisoned")
                    .insert(body.name.clone(), handle);
                (201, api::render_registered(&body.name, "infer"))
            }
            Err(err) => (engine_status(&err), api::render_error(&err.to_string())),
        },
        Ok(None) => {
            let spec = api::decode_spec(&body).expect("non-infer family is a decode family");
            match inner.decode.register(spec) {
                Ok(model) => {
                    inner
                        .directory
                        .generate
                        .lock()
                        .expect("directory poisoned")
                        .insert(body.name.clone(), model);
                    (201, api::render_registered(&body.name, "generate"))
                }
                Err(err) => (decode_status(&err), api::render_error(&err.to_string())),
            }
        }
        Err(msg) => (400, api::render_error(&msg)),
    }
}

fn infer(inner: &Inner, request: &HttpRequest, timing: &mut RequestTiming) -> (u16, String) {
    let body = match api::parse_infer(&request.body) {
        Ok(body) => body,
        Err(msg) => return (400, api::render_error(&msg)),
    };
    let handle = {
        let infer = inner.directory.infer.lock().expect("directory poisoned");
        match infer.get(&body.model) {
            Some(handle) => handle.clone(),
            None => {
                let generate = inner.directory.generate.lock().expect("directory poisoned");
                return if generate.contains_key(&body.model) {
                    (
                        400,
                        api::render_error(&format!(
                            "\"{}\" is a generate model; use /v2/generate",
                            body.model
                        )),
                    )
                } else {
                    (
                        404,
                        api::render_error(&format!("unknown model \"{}\"", body.model)),
                    )
                };
            }
        }
    };
    let mut engine_request = Request::new(body.inputs)
        .with_priority(body.priority)
        .with_trace(timing.trace_id);
    if let Some(ms) = body.timeout_ms {
        engine_request = engine_request.with_timeout(Duration::from_millis(ms));
    }
    let outcome = handle.infer(engine_request);
    timing.mark("handle");
    match outcome {
        Ok(result) => {
            let body = api::render_infer_result(&body.model, &result, timing.rendered());
            (200, body)
        }
        Err(err) => (engine_status(&err), api::render_error(&err.to_string())),
    }
}

/// The streaming bridge: one decode session, one chunk per token. The
/// response head goes out with the first token (that write is the wire
/// TTFB); each `Pending` poll probes the socket so a vanished client drops
/// the session — freeing its KV blocks — instead of generating into the
/// void.
fn generate(inner: &Inner, job: &mut ConnJob, request: &HttpRequest, timing: &mut RequestTiming) {
    let trace_id = timing.trace_id;
    let body = match api::parse_generate(&request.body) {
        Ok(body) => body,
        Err(msg) => return respond(inner, job, trace_id, (400, api::render_error(&msg))),
    };
    let model = {
        let generate = inner.directory.generate.lock().expect("directory poisoned");
        match generate.get(&body.model) {
            Some(model) => model.clone(),
            None => {
                let infer = inner.directory.infer.lock().expect("directory poisoned");
                let response = if infer.contains_key(&body.model) {
                    (
                        400,
                        api::render_error(&format!(
                            "\"{}\" is a one-shot model; use /v2/infer",
                            body.model
                        )),
                    )
                } else {
                    (
                        404,
                        api::render_error(&format!("unknown model \"{}\"", body.model)),
                    )
                };
                return respond(inner, job, trace_id, response);
            }
        }
    };

    let mut generate_request = GenerateRequest::new(body.prompt, body.max_tokens)
        .with_priority(body.priority)
        .with_trace(trace_id);
    if let Some(eos) = body.eos {
        generate_request = generate_request.with_eos(eos);
    }
    let mut session = model.generate(generate_request);
    timing.mark("placement");

    // Phase one: wait for the first event before committing to a status
    // line, so generate-time failures still map onto proper error codes.
    let first = loop {
        match session.next_timeout(Duration::from_millis(10)) {
            Ok(SessionPoll::Pending) => {
                if socket_dead(&job.stream) {
                    drop(session);
                    inner
                        .counters
                        .streams_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    inner.counters.served.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            Ok(event) => break Ok(event),
            Err(err) => break Err(err),
        }
    };
    let first = match first {
        Ok(event) => event,
        Err(err) => {
            let response = (decode_status(&err), api::render_error(&err.to_string()));
            return respond(inner, job, trace_id, response);
        }
    };
    timing.mark("prefill");

    record_ttfb(inner, job.accepted_at);
    let mut tokens = 0usize;
    let outcome: io::Result<()> = (|| {
        let mut writer = ChunkedWriter::begin(&mut job.stream, 200)?;
        timing.mark("serialize");
        let mut event = first;
        loop {
            match event {
                SessionPoll::Token(token) => {
                    tokens += 1;
                    let line = api::render_token_event(&token);
                    timing.mark("decode");
                    writer.chunk_line(&line)?;
                    timing.mark("serialize");
                }
                SessionPoll::Finished => {
                    timing.mark("decode");
                    let done = api::render_generate_done(tokens, timing.rendered());
                    writer.chunk_line(&done)?;
                    return writer.finish();
                }
                SessionPoll::Pending => {}
            }
            event = loop {
                match session.next_timeout(Duration::from_millis(10)) {
                    Ok(SessionPoll::Pending) => continue,
                    Ok(next) => break next,
                    Err(err) => {
                        // Mid-stream failure: the status line is already on
                        // the wire, so the error rides the stream as its
                        // final line.
                        writer.chunk_line(&api::render_error(&err.to_string()))?;
                        return writer.finish();
                    }
                }
            };
        }
    })();
    if outcome.is_err() {
        // The client went away mid-stream; dropping the session releases
        // its KV blocks.
        inner
            .counters
            .streams_cancelled
            .fetch_add(1, Ordering::Relaxed);
    }
    inner.counters.served.fetch_add(1, Ordering::Relaxed);
}

/// Peeks the socket with a short timeout: `Ok(0)` means the peer closed.
/// Extra readable bytes (a client that pipelines) are left alone; a timeout
/// means the peer is simply quiet, i.e. alive.
fn socket_dead(stream: &TcpStream) -> bool {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut probe = [0u8; 1];
    let dead = matches!(stream.peek(&mut probe), Ok(0));
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    dead
}

fn engine_status(err: &EngineError) -> u16 {
    match err {
        EngineError::QueueFull(_) => 429,
        EngineError::BadInput(_) => 400,
        EngineError::UnknownModel(_) => 404,
        EngineError::DeadlineExceeded => 504,
        EngineError::Closed => 503,
        _ => 500,
    }
}

fn decode_status(err: &DecodeError) -> u16 {
    match err {
        DecodeError::BadPrompt(_) | DecodeError::BadModel(_) => 400,
        DecodeError::UnknownModel(_) => 404,
        DecodeError::DeadlineExceeded => 504,
        DecodeError::KvExhausted => 429,
        DecodeError::Closed => 503,
        _ => 500,
    }
}

fn snapshot(counters: &Counters, producers: &[Producer<ConnJob>]) -> IngressStatsSnapshot {
    let ttfb = counters.ttfb.lock().expect("ttfb reservoir poisoned");
    IngressStatsSnapshot {
        accepted: counters.accepted.load(Ordering::Relaxed),
        shed_at_socket: counters.shed_at_socket.load(Ordering::Relaxed),
        shed_ring_full: counters.shed_ring_full.load(Ordering::Relaxed),
        served: counters.served.load(Ordering::Relaxed),
        streams_cancelled: counters.streams_cancelled.load(Ordering::Relaxed),
        ring_depth: producers.iter().map(Producer::depth).sum(),
        ring_capacity: producers.iter().map(Producer::capacity).sum(),
        enqueue_cas_retries: producers.iter().map(Producer::cas_retries).sum(),
        wire_ttfb_p50_seconds: ttfb.percentile(0.50),
        wire_ttfb_p95_seconds: ttfb.percentile(0.95),
    }
}

/// Best-effort core pinning via `sched_setaffinity(2)` — no libc crate in
/// the workspace, so the one syscall is declared directly.
#[cfg(target_os = "linux")]
fn pin_to_core(lane: usize) {
    let cores = thread::available_parallelism().map_or(1, usize::from);
    let core = lane % cores;
    const SET_BYTES: usize = 128; // room for 1024 CPUs, the kernel default
    let mut mask = [0u8; SET_BYTES];
    if core / 8 >= SET_BYTES {
        return;
    }
    mask[core / 8] |= 1 << (core % 8);
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u8) -> i32;
    }
    // Failure just leaves the thread unpinned.
    unsafe {
        sched_setaffinity(0, SET_BYTES, mask.as_ptr());
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_lane: usize) {}
