//! The v2 wire API: request bodies, response rendering and the model
//! registry behind `POST /v2/models`.
//!
//! Every body is parsed with `hidet_sched::json::Json` and every response
//! rendered with `hidet_sched::json::JsonWriter` — the workspace's single
//! JSON dialect; the server adds no third one.

use std::collections::HashMap;
use std::sync::Mutex;

use hidet_decode::{DecodeModel, DecodeModelSpec, TokenEvent};
use hidet_graph::{Graph, GraphBuilder, Tensor};
use hidet_runtime::{
    InferenceResult, IngressStatsSnapshot, ModelHandle, ModelSpec, Priority, StatsSnapshot,
};
use hidet_sched::json::{get, Json, JsonWriter};

/// Models registered over the wire, addressable by name. One-shot and
/// decode models share the namespace so `/v2/infer` vs `/v2/generate`
/// mismatches answer with a clear error.
#[derive(Default)]
pub(crate) struct ModelDirectory {
    pub(crate) infer: Mutex<HashMap<String, ModelHandle>>,
    pub(crate) generate: Mutex<HashMap<String, DecodeModel>>,
}

/// A parsed `POST /v2/models` body.
#[derive(Debug)]
pub(crate) struct RegisterBody {
    pub(crate) name: String,
    pub(crate) kind: RegisterKind,
}

/// What `/v2/models` can stand up.
#[derive(Debug)]
pub(crate) enum RegisterKind {
    /// A small batchable MLP head: `input -> hidden (relu) -> output`.
    Mlp {
        input: i64,
        hidden: i64,
        output: i64,
    },
    /// A paper-evaluation zoo model by its registered name
    /// (`hidet_graph::models::by_name`).
    Zoo,
    /// An autoregressive transformer served through `/v2/generate`.
    TransformerDecode {
        layers: usize,
        hidden: i64,
        heads: i64,
        vocab: i64,
        max_context: i64,
    },
}

fn int_field(obj: &[(String, Json)], name: &str) -> Result<i64, String> {
    get(obj, name)?.as_i64(name)
}

fn int_field_or(obj: &[(String, Json)], name: &str, default: i64) -> Result<i64, String> {
    match get(obj, name) {
        Ok(v) => v.as_i64(name),
        Err(_) => Ok(default),
    }
}

pub(crate) fn parse_register(body: &[u8]) -> Result<RegisterBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body not utf-8".to_string())?;
    let value = Json::parse(text)?;
    let obj = value.as_object("register body")?;
    let name = get(obj, "name")?.as_str("name")?.to_string();
    if name.is_empty() {
        return Err("name must be non-empty".to_string());
    }
    let family = get(obj, "family")?.as_str("family")?;
    let kind = match family {
        "mlp" => RegisterKind::Mlp {
            input: int_field(obj, "input_dim")?,
            hidden: int_field_or(obj, "hidden_dim", 32)?,
            output: int_field_or(obj, "output_dim", 4)?,
        },
        "zoo" => RegisterKind::Zoo,
        "transformer-decode" => RegisterKind::TransformerDecode {
            layers: int_field_or(obj, "layers", 1)? as usize,
            hidden: int_field_or(obj, "hidden", 16)?,
            heads: int_field_or(obj, "heads", 2)?,
            vocab: int_field_or(obj, "vocab", 16)?,
            max_context: int_field_or(obj, "max_context", 64)?,
        },
        other => {
            return Err(format!(
                "unknown family \"{other}\" (expected mlp, zoo or transformer-decode)"
            ))
        }
    };
    Ok(RegisterBody { name, kind })
}

/// The `ModelSpec` for a one-shot registration, or `None` when the family
/// names a decode model (handled by the decode engine instead).
pub(crate) fn infer_spec(body: &RegisterBody) -> Result<Option<ModelSpec>, String> {
    match body.kind {
        RegisterKind::Mlp {
            input,
            hidden,
            output,
        } => {
            if !(1..=4096).contains(&input)
                || !(1..=4096).contains(&hidden)
                || !(1..=4096).contains(&output)
            {
                return Err("mlp dims must be in 1..=4096".to_string());
            }
            let name = body.name.clone();
            Ok(Some(ModelSpec::new(body.name.clone(), move |batch| {
                mlp_graph(&name, batch, input, hidden, output)
            })))
        }
        RegisterKind::Zoo => {
            let zoo_name = body.name.clone();
            if hidet_graph::models::by_name(&zoo_name, 1).is_none() {
                return Err(format!("\"{zoo_name}\" is not a zoo model"));
            }
            let spec = ModelSpec::new(body.name.clone(), move |batch| {
                hidet_graph::models::by_name(&zoo_name, batch).expect("checked above")
            });
            // The zoo's transformers fold batch into the sequence axis; their
            // requests must never be coalesced.
            Ok(Some(if matches!(body.name.as_str(), "bert" | "gpt2") {
                spec.unbatched()
            } else {
                spec
            }))
        }
        RegisterKind::TransformerDecode { .. } => Ok(None),
    }
}

/// The `DecodeModelSpec` for a decode registration, when the family is one.
pub(crate) fn decode_spec(body: &RegisterBody) -> Option<DecodeModelSpec> {
    match body.kind {
        RegisterKind::TransformerDecode {
            layers,
            hidden,
            heads,
            vocab,
            max_context,
        } => Some(DecodeModelSpec::transformer(
            body.name.clone(),
            layers,
            hidden,
            heads,
            vocab,
            max_context,
        )),
        _ => None,
    }
}

fn mlp_graph(name: &str, batch: i64, input: i64, hidden: i64, output: i64) -> Graph {
    let mut g = GraphBuilder::new(name);
    let x = g.input("x", &[batch, input]);
    let w1 = g.constant(Tensor::randn(&[input, hidden], 1));
    let w2 = g.constant(Tensor::randn(&[hidden, output], 2));
    let h = g.matmul(x, w1);
    let h = g.relu(h);
    let y = g.matmul(h, w2);
    g.output(y).build()
}

/// A parsed `POST /v2/infer` body.
#[derive(Debug)]
pub(crate) struct InferBody {
    pub(crate) model: String,
    pub(crate) inputs: Vec<Vec<f32>>,
    pub(crate) priority: Priority,
    pub(crate) timeout_ms: Option<u64>,
}

pub(crate) fn parse_infer(body: &[u8]) -> Result<InferBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body not utf-8".to_string())?;
    let value = Json::parse(text)?;
    let obj = value.as_object("infer body")?;
    let model = get(obj, "model")?.as_str("model")?.to_string();
    let inputs = get(obj, "inputs")?
        .as_array("inputs")?
        .iter()
        .map(|row| {
            row.as_array("inputs[i]")?
                .iter()
                .map(|v| v.as_f64("inputs[i][j]").map(|x| x as f32))
                .collect::<Result<Vec<f32>, String>>()
        })
        .collect::<Result<Vec<Vec<f32>>, String>>()?;
    let priority = parse_priority(obj)?;
    let timeout_ms = match get(obj, "timeout_ms") {
        Ok(v) => Some(v.as_i64("timeout_ms")?.max(0) as u64),
        Err(_) => None,
    };
    Ok(InferBody {
        model,
        inputs,
        priority,
        timeout_ms,
    })
}

/// A parsed `POST /v2/generate` body.
#[derive(Debug)]
pub(crate) struct GenerateBody {
    pub(crate) model: String,
    pub(crate) prompt: Vec<u32>,
    pub(crate) max_tokens: usize,
    pub(crate) priority: Priority,
    pub(crate) eos: Option<u32>,
}

pub(crate) fn parse_generate(body: &[u8]) -> Result<GenerateBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body not utf-8".to_string())?;
    let value = Json::parse(text)?;
    let obj = value.as_object("generate body")?;
    let model = get(obj, "model")?.as_str("model")?.to_string();
    let prompt = get(obj, "prompt")?
        .as_array("prompt")?
        .iter()
        .map(|v| {
            let t = v.as_i64("prompt[i]")?;
            u32::try_from(t).map_err(|_| format!("prompt token {t} out of range"))
        })
        .collect::<Result<Vec<u32>, String>>()?;
    let max_tokens = get(obj, "max_tokens")?.as_i64("max_tokens")?;
    if !(1..=1_000_000).contains(&max_tokens) {
        return Err("max_tokens must be in 1..=1000000".to_string());
    }
    let priority = parse_priority(obj)?;
    let eos = match get(obj, "eos") {
        Ok(v) => {
            let t = v.as_i64("eos")?;
            Some(u32::try_from(t).map_err(|_| format!("eos token {t} out of range"))?)
        }
        Err(_) => None,
    };
    Ok(GenerateBody {
        model,
        prompt,
        max_tokens: max_tokens as usize,
        priority,
        eos,
    })
}

fn parse_priority(obj: &[(String, Json)]) -> Result<Priority, String> {
    match get(obj, "priority") {
        Ok(v) => match v.as_str("priority")? {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "best-effort" | "best_effort" => Ok(Priority::BestEffort),
            other => Err(format!(
                "unknown priority \"{other}\" (expected high, normal or best-effort)"
            )),
        },
        Err(_) => Ok(Priority::Normal),
    }
}

/// `{"error": msg}`.
pub(crate) fn render_error(msg: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("error").string(msg);
    w.end();
    w.finish()
}

/// The `POST /v2/models` success body.
pub(crate) fn render_registered(name: &str, kind: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("model").string(name);
    w.key("kind").string(kind);
    w.end();
    w.finish()
}

/// Writes the `?debug=timing` breakdown: one integer-nanosecond field per
/// segment plus `total_ns`. Segments are consecutive wall-clock checkpoint
/// differences, so they telescope: the sum of the segment fields equals
/// `total_ns` exactly (pinned by the server e2e tests).
pub(crate) fn render_timing(w: &mut JsonWriter, segments: &[(&'static str, u128)]) {
    w.key("timing").begin_object();
    let mut total = 0u128;
    for (name, ns) in segments {
        w.key(&format!("{name}_ns")).integer(*ns as i64);
        total += ns;
    }
    w.key("total_ns").integer(total as i64);
    w.end();
}

/// The `POST /v2/infer` success body.
pub(crate) fn render_infer_result(
    model: &str,
    result: &InferenceResult,
    timing: Option<&[(&'static str, u128)]>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("model").string(model);
    w.key("outputs").begin_array();
    for row in &result.outputs {
        w.begin_array();
        for v in row {
            w.number(f64::from(*v));
        }
        w.end();
    }
    w.end();
    w.key("batch_size").integer(result.batch_size as i64);
    w.key("latency_us")
        .number(result.simulated_latency_seconds * 1e6);
    w.key("queue_delay_us")
        .number(result.queue_delay_seconds * 1e6);
    w.key("priority").string(result.priority.label());
    w.key("compile_cache_hit").boolean(result.compile_cache_hit);
    if let Some(segments) = timing {
        render_timing(&mut w, segments);
    }
    w.end();
    w.finish()
}

/// One streamed token line of `POST /v2/generate`.
pub(crate) fn render_token_event(event: &TokenEvent) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("token").integer(i64::from(event.token));
    w.key("index").integer(event.index as i64);
    w.key("sim_time_us").number(event.sim_time_seconds * 1e6);
    w.end();
    w.finish()
}

/// The terminal line of a `POST /v2/generate` stream.
pub(crate) fn render_generate_done(
    tokens: usize,
    timing: Option<&[(&'static str, u128)]>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("done").boolean(true);
    w.key("tokens").integer(tokens as i64);
    if let Some(segments) = timing {
        render_timing(&mut w, segments);
    }
    w.end();
    w.finish()
}

/// The `GET /v2/stats` body: the engine snapshot (selected fields) plus the
/// full ingress section.
pub(crate) fn render_stats(snapshot: &StatsSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("requests").integer(snapshot.requests as i64);
    w.key("failures").integer(snapshot.failures as i64);
    w.key("shed_requests")
        .integer(snapshot.shed_requests as i64);
    w.key("batches").integer(snapshot.batches as i64);
    w.key("mean_batch_size").number(snapshot.mean_batch_size);
    w.key("p50_latency_us")
        .number(snapshot.p50_latency_seconds * 1e6);
    w.key("p95_latency_us")
        .number(snapshot.p95_latency_seconds * 1e6);
    w.key("cluster_throughput_rps")
        .number(snapshot.cluster_throughput_rps);
    w.key("priorities").begin_array();
    for class in &snapshot.priorities {
        w.begin_object();
        w.key("priority").string(class.priority.label());
        w.key("requests").integer(class.requests as i64);
        w.key("shed_requests").integer(class.shed_requests as i64);
        w.key("p95_latency_us")
            .number(class.p95_latency_seconds * 1e6);
        w.end();
    }
    w.end();
    if let Some(decode) = &snapshot.decode {
        w.key("decode").begin_object();
        w.key("sequences_completed")
            .integer(decode.sequences_completed as i64);
        w.key("tokens_generated")
            .integer(decode.tokens_generated as i64);
        w.key("kv_blocks_in_use")
            .integer(decode.kv_blocks_in_use as i64);
        w.key("kv_blocks_capacity")
            .integer(decode.kv_blocks_capacity as i64);
        w.key("tokens_per_second").number(decode.tokens_per_second);
        w.key("ttft_p95_us").number(decode.ttft_p95_seconds * 1e6);
        w.key("ttft_queue_p95_us")
            .number(decode.ttft_queue_p95_seconds * 1e6);
        w.key("ttft_prefill_p95_us")
            .number(decode.ttft_prefill_p95_seconds * 1e6);
        w.key("ttft_first_decode_p95_us")
            .number(decode.ttft_first_decode_p95_seconds * 1e6);
        w.key("prefill_tokens")
            .integer(decode.prefill_tokens as i64);
        w.key("prefill_tokens_per_second")
            .number(decode.prefill_tokens_per_second);
        w.key("prefill_interleave_occupancy")
            .number(decode.prefill_interleave_occupancy);
        w.key("sessions_migrated")
            .integer(decode.sessions_migrated as i64);
        w.key("cluster_tokens_per_second")
            .number(decode.cluster_tokens_per_second);
        w.key("shards").begin_array();
        for shard in &decode.shards {
            w.begin_object();
            w.key("device").string(&shard.device);
            w.key("sessions_placed")
                .integer(shard.sessions_placed as i64);
            w.key("migrations_in").integer(shard.migrations_in as i64);
            w.key("migrations_out").integer(shard.migrations_out as i64);
            w.key("tokens_generated")
                .integer(shard.tokens_generated as i64);
            w.key("kv_blocks_in_use")
                .integer(shard.kv_blocks_in_use as i64);
            w.key("kv_blocks_peak").integer(shard.kv_blocks_peak as i64);
            w.key("lane_share").integer(shard.lane_share as i64);
            w.key("queue_delay_ewma_us")
                .number(shard.queue_delay_ewma_seconds * 1e6);
            w.key("tokens_per_second").number(shard.tokens_per_second);
            w.end();
        }
        w.end();
        w.end();
    }
    if let Some(ingress) = &snapshot.ingress {
        w.key("ingress").begin_object();
        render_ingress_fields(&mut w, ingress);
        w.end();
    }
    w.end();
    w.finish()
}

pub(crate) fn render_ingress_fields(w: &mut JsonWriter, ingress: &IngressStatsSnapshot) {
    w.key("accepted").integer(ingress.accepted as i64);
    w.key("shed_at_socket")
        .integer(ingress.shed_at_socket as i64);
    w.key("shed_ring_full")
        .integer(ingress.shed_ring_full as i64);
    w.key("served").integer(ingress.served as i64);
    w.key("streams_cancelled")
        .integer(ingress.streams_cancelled as i64);
    w.key("ring_depth").integer(ingress.ring_depth as i64);
    w.key("ring_capacity").integer(ingress.ring_capacity as i64);
    w.key("enqueue_cas_retries")
        .integer(ingress.enqueue_cas_retries as i64);
    w.key("wire_ttfb_p50_us")
        .number(ingress.wire_ttfb_p50_seconds * 1e6);
    w.key("wire_ttfb_p95_us")
        .number(ingress.wire_ttfb_p95_seconds * 1e6);
}

/// Bridges the engine's [`StatsSnapshot`] (engine, decode and ingress
/// sections) into Prometheus text exposition. Values are staged through a
/// fresh [`hidet_trace::MetricsRegistry`] so the output shares the tracer's
/// renderer — and therefore its well-formedness guarantees
/// ([`hidet_trace::validate_exposition`] accepts it by construction).
pub(crate) fn render_prometheus(s: &StatsSnapshot) -> String {
    use hidet_trace::MetricType::{Counter, Gauge};
    let m = hidet_trace::MetricsRegistry::new();
    let c = |name: &str, help: &str, v: usize| {
        m.describe(name, Counter, help);
        m.counter_add(name, &[], v as u64);
    };
    let g = |name: &str, help: &str, v: f64| {
        m.describe(name, Gauge, help);
        m.gauge_set(name, &[], v);
    };

    c(
        "hidet_engine_requests_total",
        "Requests answered by the serving engine.",
        s.requests,
    );
    c(
        "hidet_engine_failures_total",
        "Requests answered with an error.",
        s.failures,
    );
    c(
        "hidet_engine_shed_total",
        "Requests shed by engine admission control.",
        s.shed_requests,
    );
    c(
        "hidet_engine_batches_total",
        "Batch jobs executed.",
        s.batches,
    );
    g(
        "hidet_engine_batch_size_mean",
        "Mean formed batch size.",
        s.mean_batch_size,
    );
    g(
        "hidet_engine_latency_p50_seconds",
        "Median end-to-end request latency.",
        s.p50_latency_seconds,
    );
    g(
        "hidet_engine_latency_p95_seconds",
        "95th percentile end-to-end request latency.",
        s.p95_latency_seconds,
    );
    g(
        "hidet_engine_throughput_rps",
        "Cluster-wide request throughput.",
        s.cluster_throughput_rps,
    );
    m.describe(
        "hidet_engine_class_requests_total",
        Counter,
        "Requests by priority class.",
    );
    m.describe(
        "hidet_engine_class_shed_total",
        Counter,
        "Shed requests by priority class.",
    );
    for class in &s.priorities {
        let labels = [("priority", class.priority.label())];
        m.counter_add(
            "hidet_engine_class_requests_total",
            &labels,
            class.requests as u64,
        );
        m.counter_add(
            "hidet_engine_class_shed_total",
            &labels,
            class.shed_requests as u64,
        );
    }

    if let Some(d) = &s.decode {
        c(
            "hidet_decode_sequences_completed_total",
            "Decode sessions run to completion.",
            d.sequences_completed,
        );
        c(
            "hidet_decode_tokens_total",
            "Tokens generated across all decode shards.",
            d.tokens_generated,
        );
        c(
            "hidet_decode_prefill_tokens_total",
            "Prompt tokens absorbed through chunked prefill.",
            d.prefill_tokens,
        );
        c(
            "hidet_decode_migrations_total",
            "Sessions live-migrated between decode shards.",
            d.sessions_migrated,
        );
        g(
            "hidet_decode_kv_blocks_in_use",
            "KV cache blocks currently allocated.",
            d.kv_blocks_in_use as f64,
        );
        g(
            "hidet_decode_kv_blocks_capacity",
            "KV cache block capacity.",
            d.kv_blocks_capacity as f64,
        );
        g(
            "hidet_decode_tokens_per_second",
            "Decode token throughput.",
            d.tokens_per_second,
        );
        g(
            "hidet_decode_ttft_p95_seconds",
            "95th percentile time to first token.",
            d.ttft_p95_seconds,
        );
        m.describe(
            "hidet_decode_shard_tokens_total",
            Counter,
            "Tokens generated per decode shard.",
        );
        m.describe(
            "hidet_decode_shard_kv_blocks_in_use",
            Gauge,
            "KV blocks allocated per decode shard.",
        );
        for (i, shard) in d.shards.iter().enumerate() {
            let idx = i.to_string();
            let labels = [("shard", idx.as_str())];
            m.counter_add(
                "hidet_decode_shard_tokens_total",
                &labels,
                shard.tokens_generated as u64,
            );
            m.gauge_set(
                "hidet_decode_shard_kv_blocks_in_use",
                &labels,
                shard.kv_blocks_in_use as f64,
            );
        }
    }

    if let Some(i) = &s.ingress {
        c(
            "hidet_ingress_accepted_total",
            "Connections accepted into a lane ring.",
            i.accepted,
        );
        c(
            "hidet_ingress_shed_at_socket_total",
            "Connections shed at the socket by the delay signal.",
            i.shed_at_socket,
        );
        c(
            "hidet_ingress_shed_ring_full_total",
            "Connections shed because every lane ring was full.",
            i.shed_ring_full,
        );
        c(
            "hidet_ingress_served_total",
            "Connections answered by a lane.",
            i.served,
        );
        c(
            "hidet_ingress_streams_cancelled_total",
            "Token streams dropped because the client went away.",
            i.streams_cancelled,
        );
        g(
            "hidet_ingress_ring_depth",
            "Connections queued across lane rings.",
            i.ring_depth as f64,
        );
        g(
            "hidet_ingress_ring_capacity",
            "Total lane ring capacity.",
            i.ring_capacity as f64,
        );
        g(
            "hidet_ingress_wire_ttfb_p50_seconds",
            "Median wire time to first byte.",
            i.wire_ttfb_p50_seconds,
        );
        g(
            "hidet_ingress_wire_ttfb_p95_seconds",
            "95th percentile wire time to first byte.",
            i.wire_ttfb_p95_seconds,
        );
    }

    m.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bodies_parse() {
        let body = parse_register(
            br#"{"name":"m","family":"mlp","input_dim":16,"hidden_dim":8,"output_dim":4}"#,
        )
        .unwrap();
        assert_eq!(body.name, "m");
        assert!(infer_spec(&body).unwrap().is_some());
        assert!(decode_spec(&body).is_none());

        let body = parse_register(
            br#"{"name":"chat","family":"transformer-decode","layers":1,"hidden":16,"heads":2,"vocab":16,"max_context":32}"#,
        )
        .unwrap();
        assert!(infer_spec(&body).unwrap().is_none());
        assert!(decode_spec(&body).is_some());

        assert!(parse_register(br#"{"name":"m","family":"nope"}"#).is_err());
        assert!(parse_register(br#"{"family":"mlp","input_dim":4}"#).is_err());
        assert!(parse_register(b"not json").is_err());
    }

    #[test]
    fn zoo_family_validates_names() {
        let ok = parse_register(br#"{"name":"resnet50","family":"zoo"}"#).unwrap();
        assert!(infer_spec(&ok).unwrap().is_some());
        let bad = parse_register(br#"{"name":"alexnet","family":"zoo"}"#).unwrap();
        assert!(infer_spec(&bad).is_err());
    }

    #[test]
    fn infer_bodies_parse() {
        let body = parse_infer(
            br#"{"model":"m","inputs":[[1.0,2.0]],"priority":"high","timeout_ms":250}"#,
        )
        .unwrap();
        assert_eq!(body.model, "m");
        assert_eq!(body.inputs, vec![vec![1.0f32, 2.0]]);
        assert_eq!(body.priority, Priority::High);
        assert_eq!(body.timeout_ms, Some(250));

        let defaults = parse_infer(br#"{"model":"m","inputs":[[0.5]]}"#).unwrap();
        assert_eq!(defaults.priority, Priority::Normal);
        assert_eq!(defaults.timeout_ms, None);

        assert!(parse_infer(br#"{"model":"m","inputs":[["x"]]}"#).is_err());
        assert!(parse_infer(br#"{"model":"m","inputs":[[1.0]],"priority":"zzz"}"#).is_err());
    }

    #[test]
    fn generate_bodies_parse() {
        let body = parse_generate(
            br#"{"model":"chat","prompt":[3,1,4],"max_tokens":5,"priority":"best-effort","eos":7}"#,
        )
        .unwrap();
        assert_eq!(body.prompt, vec![3, 1, 4]);
        assert_eq!(body.max_tokens, 5);
        assert_eq!(body.priority, Priority::BestEffort);
        assert_eq!(body.eos, Some(7));

        assert!(parse_generate(br#"{"model":"chat","prompt":[-1],"max_tokens":5}"#).is_err());
        assert!(parse_generate(br#"{"model":"chat","prompt":[1],"max_tokens":0}"#).is_err());
    }

    #[test]
    fn responses_render_as_valid_json() {
        let result = InferenceResult {
            outputs: vec![vec![1.5, -2.0]],
            batch_size: 3,
            simulated_latency_seconds: 0.001,
            queue_delay_seconds: 0.0005,
            priority: Priority::Normal,
            compile_cache_hit: true,
        };
        let text = render_infer_result("m", &result, None);
        let parsed = Json::parse(&text).unwrap();
        let obj = parsed.as_object("infer response").unwrap();
        assert_eq!(get(obj, "batch_size").unwrap().as_i64("b").unwrap(), 3);
        let outputs = get(obj, "outputs").unwrap().as_array("o").unwrap();
        assert_eq!(outputs.len(), 1);

        let event = TokenEvent {
            token: 9,
            index: 2,
            sim_time_seconds: 0.5,
        };
        let line = render_token_event(&event);
        let parsed = Json::parse(&line).unwrap();
        let obj = parsed.as_object("token line").unwrap();
        assert_eq!(get(obj, "token").unwrap().as_i64("t").unwrap(), 9);

        assert!(Json::parse(&render_error("boom")).is_ok());
        assert!(Json::parse(&render_generate_done(5, None)).is_ok());
    }

    #[test]
    fn timing_segments_telescope_in_the_rendered_json() {
        let segments: [(&'static str, u128); 3] =
            [("queue", 1200), ("handle", 800), ("serialize", 40)];
        let result = InferenceResult {
            outputs: vec![vec![1.0]],
            batch_size: 1,
            simulated_latency_seconds: 0.001,
            queue_delay_seconds: 0.0,
            priority: Priority::Normal,
            compile_cache_hit: false,
        };
        let text = render_infer_result("m", &result, Some(&segments));
        let parsed = Json::parse(&text).unwrap();
        let obj = parsed.as_object("infer response").unwrap();
        let timing = get(obj, "timing").unwrap().as_object("timing").unwrap();
        let field = |name: &str| get(timing, name).unwrap().as_i64(name).unwrap();
        assert_eq!(
            field("queue_ns") + field("handle_ns") + field("serialize_ns"),
            field("total_ns")
        );
        assert_eq!(field("total_ns"), 2040);
    }

    #[test]
    fn prometheus_bridge_renders_a_valid_exposition() {
        use hidet_runtime::{CacheCounters, ServerStats};
        let snapshot = ServerStats::default().snapshot(CacheCounters::default(), Vec::new());
        let text = render_prometheus(&snapshot);
        hidet_trace::validate_exposition(&text).unwrap();
        assert!(text.contains("hidet_engine_requests_total"), "{text}");
        assert!(
            text.contains("# TYPE hidet_engine_requests_total counter"),
            "{text}"
        );
    }
}
