//! End-to-end tests over real TCP sockets: register → infer → streamed
//! generate, socket-level shedding, and error mapping.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use hidet_decode::{DecodeConfig, DecodeEngine};
use hidet_runtime::{AdmissionSignal, Engine, EngineConfig};
use hidet_sched::json::{get, Json};
use hidet_server::{HidetServer, ServerConfig};
use hidet_trace::TraceConfig;

fn engines() -> (Arc<Engine>, Arc<DecodeEngine>) {
    let engine = Arc::new(Engine::new(EngineConfig::quick()).unwrap());
    let decode = Arc::new(DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 64,
        block_tokens: 4,
        ..DecodeConfig::default()
    }));
    (engine, decode)
}

/// One round-trip request; returns (status, headers, body text).
fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    // Read until EOF, tolerating a reset after data arrived (a shed
    // response followed by an abortive close can race the client's read).
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(_) if !bytes.is_empty() => break,
            Err(e) => panic!("read failed before any data: {e}"),
        }
    }
    let response = String::from_utf8_lossy(&bytes).into_owned();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    let status: u16 = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    (status, head.to_string(), body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn json_body(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad json {body:?}: {e}"))
}

/// Reassembles a chunked body into its payload lines.
fn dechunk(body: &str) -> Vec<String> {
    let mut lines = Vec::new();
    let mut rest = body;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        let payload = &tail[..size];
        lines.extend(payload.lines().map(str::to_string));
        rest = tail[size..].trim_start_matches("\r\n");
    }
    lines
}

#[test]
fn register_infer_and_generate_over_tcp() {
    let (engine, decode) = engines();
    let server = HidetServer::start(
        ServerConfig::default(),
        Arc::clone(&engine),
        Arc::clone(&decode),
    )
    .unwrap();
    let addr = server.public_addr();

    // Register a one-shot MLP and a decode transformer.
    let (status, _, body) = post(
        addr,
        "/v2/models",
        r#"{"name":"head","family":"mlp","input_dim":16,"hidden_dim":8,"output_dim":4}"#,
    );
    assert_eq!(status, 201, "{body}");
    let parsed = json_body(&body);
    let obj = parsed.as_object("register").unwrap();
    assert_eq!(get(obj, "kind").unwrap().as_str("kind").unwrap(), "infer");

    let (status, _, body) = post(
        addr,
        "/v2/models",
        r#"{"name":"chat","family":"transformer-decode","layers":1,"hidden":16,"heads":2,"vocab":16,"max_context":64}"#,
    );
    assert_eq!(status, 201, "{body}");

    // Infer: outputs come back with the right shape and priority.
    let inputs: Vec<String> = (0..16).map(|i| format!("{}.0", i % 3)).collect();
    let (status, _, body) = post(
        addr,
        "/v2/infer",
        &format!(
            r#"{{"model":"head","inputs":[[{}]],"priority":"high"}}"#,
            inputs.join(",")
        ),
    );
    assert_eq!(status, 200, "{body}");
    let parsed = json_body(&body);
    let obj = parsed.as_object("infer").unwrap();
    let outputs = get(obj, "outputs").unwrap().as_array("outputs").unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].as_array("row").unwrap().len(), 4);
    assert_eq!(get(obj, "priority").unwrap().as_str("p").unwrap(), "high");

    // Generate: a chunked ndjson stream, one token per line, then done.
    let (status, head, body) = post(
        addr,
        "/v2/generate",
        r#"{"model":"chat","prompt":[3,1,4],"max_tokens":5}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    let lines = dechunk(&body);
    assert_eq!(lines.len(), 6, "5 tokens + done line: {lines:?}");
    for (i, line) in lines[..5].iter().enumerate() {
        let parsed = json_body(line);
        let obj = parsed.as_object("token").unwrap();
        assert_eq!(get(obj, "index").unwrap().as_i64("i").unwrap(), i as i64);
    }
    let done = json_body(&lines[5]);
    let obj = done.as_object("done").unwrap();
    assert_eq!(get(obj, "tokens").unwrap().as_i64("t").unwrap(), 5);

    // Stats: ingress section reflects the traffic, and the engine snapshot
    // carries it too (the server attached its source).
    let (status, _, body) = roundtrip(addr, "GET /v2/stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    let parsed = json_body(&body);
    let obj = parsed.as_object("stats").unwrap();
    let ingress = get(obj, "ingress").unwrap().as_object("ingress").unwrap();
    assert!(get(ingress, "served").unwrap().as_i64("served").unwrap() >= 4);
    assert_eq!(
        get(ingress, "shed_at_socket")
            .unwrap()
            .as_i64("shed")
            .unwrap(),
        0
    );
    // The decode section carries the multi-device fields: a per-shard row
    // for the single default shard, and zero migrations on this workload.
    let dec = get(obj, "decode").unwrap().as_object("decode").unwrap();
    assert_eq!(
        get(dec, "sessions_migrated").unwrap().as_i64("m").unwrap(),
        0
    );
    let shards = get(dec, "shards").unwrap().as_array("shards").unwrap();
    assert_eq!(shards.len(), 1, "single-device engine: one shard row");
    let shard = shards[0].as_object("shard").unwrap();
    assert_eq!(
        get(shard, "tokens_generated").unwrap().as_i64("t").unwrap(),
        5
    );
    assert!(get(shard, "lane_share").unwrap().as_i64("l").unwrap() >= 1);
    assert_eq!(
        get(shard, "kv_blocks_in_use").unwrap().as_i64("k").unwrap(),
        0
    );
    let snapshot = engine.stats();
    assert!(snapshot.ingress.is_some());
    assert!(snapshot.ingress.unwrap().wire_ttfb_p95_seconds > 0.0);
}

#[test]
fn error_paths_map_to_statuses() {
    let (engine, decode) = engines();
    let server = HidetServer::start(ServerConfig::default(), engine, decode).unwrap();
    let addr = server.public_addr();

    // Unknown route and wrong method.
    let (status, _, _) = roundtrip(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 404);
    let (status, _, _) = roundtrip(addr, "GET /v2/infer HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);

    // Malformed JSON body.
    let (status, _, _) = post(addr, "/v2/infer", "not json");
    assert_eq!(status, 400);

    // Unknown model.
    let (status, _, body) = post(addr, "/v2/infer", r#"{"model":"ghost","inputs":[[1.0]]}"#);
    assert_eq!(status, 404, "{body}");
    let (status, _, body) = post(
        addr,
        "/v2/generate",
        r#"{"model":"ghost","prompt":[1],"max_tokens":2}"#,
    );
    assert_eq!(status, 404, "{body}");

    // Unknown family and duplicate registration.
    let (status, _, _) = post(addr, "/v2/models", r#"{"name":"x","family":"nope"}"#);
    assert_eq!(status, 400);
    let (status, _, _) = post(
        addr,
        "/v2/models",
        r#"{"name":"m","family":"mlp","input_dim":4}"#,
    );
    assert_eq!(status, 201);
    let (status, _, body) = post(
        addr,
        "/v2/models",
        r#"{"name":"m","family":"mlp","input_dim":4}"#,
    );
    assert_eq!(status, 400, "{body}");

    // Wrong engine for the model.
    let (status, _, body) = post(
        addr,
        "/v2/generate",
        r#"{"model":"m","prompt":[1],"max_tokens":2}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("/v2/infer"), "{body}");

    // A decode request that violates the context window: 400, not a stream.
    let (status, _, _) = post(
        addr,
        "/v2/models",
        r#"{"name":"chat","family":"transformer-decode","max_context":8}"#,
    );
    assert_eq!(status, 201);
    let (status, _, body) = post(
        addr,
        "/v2/generate",
        r#"{"model":"chat","prompt":[1,2],"max_tokens":50}"#,
    );
    assert_eq!(status, 400, "{body}");
}

/// Sums every `*_ns` segment of a `timing` object and pins it against
/// `total_ns` — the telescoping contract of `?debug=timing`.
fn assert_timing_telescopes(timing: &[(String, Json)], expect: &[&str]) {
    let total = get(timing, "total_ns").unwrap().as_i64("total_ns").unwrap();
    let mut sum = 0i64;
    for (key, value) in timing {
        if key == "total_ns" {
            continue;
        }
        assert!(key.ends_with("_ns"), "unexpected timing field {key}");
        sum += value.as_i64(key).unwrap();
    }
    assert_eq!(
        sum, total,
        "segments must telescope to the total: {timing:?}"
    );
    for name in expect {
        assert!(
            timing.iter().any(|(k, _)| k == &format!("{name}_ns")),
            "missing segment {name}: {timing:?}"
        );
    }
}

#[test]
fn metrics_trace_and_timing_endpoints() {
    let (engine, decode) = engines();
    let server = HidetServer::start(
        ServerConfig {
            trace: TraceConfig::Full,
            ..ServerConfig::default()
        },
        Arc::clone(&engine),
        Arc::clone(&decode),
    )
    .unwrap();
    let addr = server.public_addr();

    let (status, _, _) = post(
        addr,
        "/v2/models",
        r#"{"name":"head","family":"mlp","input_dim":8,"hidden_dim":8,"output_dim":2}"#,
    );
    assert_eq!(status, 201);
    let (status, _, _) = post(
        addr,
        "/v2/models",
        r#"{"name":"chat","family":"transformer-decode","layers":1,"hidden":16,"heads":2,"vocab":16,"max_context":64}"#,
    );
    assert_eq!(status, 201);

    // Infer with ?debug=timing: the breakdown telescopes to the total.
    let inputs = ["1.0"; 8].join(",");
    let (status, _, body) = post(
        addr,
        "/v2/infer?debug=timing",
        &format!(r#"{{"model":"head","inputs":[[{inputs}]]}}"#),
    );
    assert_eq!(status, 200, "{body}");
    let parsed = json_body(&body);
    let obj = parsed.as_object("infer").unwrap();
    let timing = get(obj, "timing").unwrap().as_object("timing").unwrap();
    assert_timing_telescopes(timing, &["queue", "parse", "handle"]);

    // Without the flag, no timing object rides the response.
    let (status, _, body) = post(
        addr,
        "/v2/infer",
        &format!(r#"{{"model":"head","inputs":[[{inputs}]]}}"#),
    );
    assert_eq!(status, 200, "{body}");
    let parsed = json_body(&body);
    let obj = parsed.as_object("infer").unwrap();
    assert!(get(obj, "timing").is_err(), "{body}");

    // Generate with ?debug=timing: the done line carries the full
    // queue/placement/prefill/decode/serialize decomposition.
    let (status, _, body) = post(
        addr,
        "/v2/generate?debug=timing",
        r#"{"model":"chat","prompt":[3,1,4],"max_tokens":4}"#,
    );
    assert_eq!(status, 200, "{body}");
    let lines = dechunk(&body);
    let done = json_body(lines.last().unwrap());
    let obj = done.as_object("done").unwrap();
    let timing = get(obj, "timing").unwrap().as_object("timing").unwrap();
    assert_timing_telescopes(
        timing,
        &[
            "queue",
            "parse",
            "placement",
            "prefill",
            "decode",
            "serialize",
        ],
    );

    // /v2/metrics: well-formed Prometheus text exposition covering the
    // ingress, engine, decode and trace families.
    let (status, head, body) = roundtrip(addr, "GET /v2/metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("text/plain"), "{head}");
    hidet_trace::validate_exposition(&body).unwrap_or_else(|e| panic!("{e}\n---\n{body}"));
    for family in [
        "hidet_ingress_accepted_total",
        "hidet_engine_requests_total",
        "hidet_decode_tokens_total",
        "hidet_decode_kv_blocks_in_use",
        "hidet_span_seconds",
        "hidet_trace_events_dropped_total",
    ] {
        assert!(body.contains(family), "missing {family} in:\n{body}");
    }

    // /v2/trace: Chrome trace_event JSON that Perfetto loads. The global
    // tracer is process-wide and other tests may flip its mode, so re-arm
    // and retry a few times before declaring the export empty.
    let mut events_seen = 0usize;
    for _ in 0..3 {
        hidet_trace::global().set_config(TraceConfig::Full);
        let (status, _, _) = post(
            addr,
            "/v2/generate",
            r#"{"model":"chat","prompt":[2],"max_tokens":2}"#,
        );
        assert_eq!(status, 200);
        let (status, _, body) = roundtrip(addr, "GET /v2/trace HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        let parsed = json_body(&body);
        let obj = parsed.as_object("trace").unwrap();
        assert_eq!(
            get(obj, "displayTimeUnit").unwrap().as_str("u").unwrap(),
            "ns"
        );
        let events = get(obj, "traceEvents").unwrap().as_array("events").unwrap();
        events_seen = events.len();
        if events_seen > 0 {
            // Every event carries the Chrome schema's required fields.
            for event in events {
                let e = event.as_object("event").unwrap();
                get(e, "name").unwrap().as_str("name").unwrap();
                get(e, "ph").unwrap().as_str("ph").unwrap();
                get(e, "ts").unwrap().as_f64("ts").unwrap();
                get(e, "pid").unwrap().as_i64("pid").unwrap();
                get(e, "tid").unwrap().as_i64("tid").unwrap();
            }
            break;
        }
    }
    assert!(events_seen > 0, "trace export stayed empty after retries");
}

/// A fake admission signal the test flips between idle and overloaded.
struct FixedDelay(std::sync::atomic::AtomicU64);

impl AdmissionSignal for FixedDelay {
    fn estimated_queue_delay_seconds(&self) -> f64 {
        f64::from_bits(self.0.load(std::sync::atomic::Ordering::Relaxed))
    }
}

#[test]
fn overload_sheds_at_the_socket_with_retry_after_but_spares_priority() {
    let (engine, decode) = engines();
    let signal = Arc::new(FixedDelay(std::sync::atomic::AtomicU64::new(
        0f64.to_bits(),
    )));
    let server = HidetServer::start_with_signal(
        ServerConfig {
            shed_delay_bound: Some(Duration::from_millis(10)),
            signal_interval: Duration::from_micros(200),
            ..ServerConfig::default()
        },
        Arc::clone(&engine),
        decode,
        Arc::clone(&signal) as Arc<dyn AdmissionSignal>,
    )
    .unwrap();

    // Idle: both listeners admit.
    let (status, _, _) = post(
        server.public_addr(),
        "/v2/models",
        r#"{"name":"m","family":"mlp","input_dim":4}"#,
    );
    assert_eq!(status, 201);

    // Overloaded past best-effort slack (1×bound) but inside high slack
    // (4×bound): the public listener sheds before parsing, the priority
    // listener still serves.
    signal
        .0
        .store(0.020f64.to_bits(), std::sync::atomic::Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(20)); // sampler refresh

    let (status, head, body) = post(
        server.public_addr(),
        "/v2/infer",
        r#"{"model":"m","inputs":[[1.0,1.0,1.0,1.0]]}"#,
    );
    assert_eq!(status, 429, "{body}");
    assert!(head.contains("Retry-After:"), "{head}");
    assert!(body.contains("overloaded"), "{body}");

    let (status, _, body) = post(
        server.priority_addr(),
        "/v2/infer",
        r#"{"model":"m","inputs":[[1.0,1.0,1.0,1.0]],"priority":"high"}"#,
    );
    assert_eq!(status, 200, "{body}");

    let stats = server.ingress_stats();
    assert!(stats.shed_at_socket >= 1, "{}", stats.summary());

    // Past even the high slack: the priority listener sheds too.
    signal
        .0
        .store(1.0f64.to_bits(), std::sync::atomic::Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(20));
    let (status, _, _) = post(
        server.priority_addr(),
        "/v2/infer",
        r#"{"model":"m","inputs":[[1.0,1.0,1.0,1.0]]}"#,
    );
    assert_eq!(status, 429);
}

#[test]
fn dropped_generate_connection_frees_kv_blocks() {
    let (engine, _) = engines();
    // Paused decode engine: the session queues, the client vanishes, and
    // only then does the engine run — the first token send fails, the
    // server drops the session, and its KV blocks come back.
    let decode = Arc::new(DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 64,
        block_tokens: 4,
        start_paused: true,
        ..DecodeConfig::default()
    }));
    let server = HidetServer::start(ServerConfig::default(), engine, Arc::clone(&decode)).unwrap();
    let addr = server.public_addr();

    let (status, _, _) = post(
        addr,
        "/v2/models",
        r#"{"name":"chat","family":"transformer-decode","max_context":64}"#,
    );
    assert_eq!(status, 201);

    // Open a generate request and slam the connection shut immediately.
    let body = r#"{"model":"chat","prompt":[3],"max_tokens":40}"#;
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /v2/generate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // Give the lane time to park the session on the paused engine, then
    // drop the socket before any token exists.
    std::thread::sleep(Duration::from_millis(100));
    drop(stream);
    std::thread::sleep(Duration::from_millis(50));
    decode.resume();

    // The server notices the dead socket (either at the pending probe or at
    // the first failed write) and drops the session; KV drains to zero well
    // before 40 tokens' worth of steps.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let stats = decode.stats();
        if stats.steps > 0 && stats.kv_blocks_in_use == 0 {
            assert!(
                stats.tokens_generated < 40,
                "generation should stop early, got {}",
                stats.tokens_generated
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "kv blocks never freed: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let ingress = server.ingress_stats();
    assert!(ingress.streams_cancelled >= 1, "{}", ingress.summary());
}
