//! The ingress ring's contract: bounded, lock-free, exactly-once FIFO per
//! producer. The source-level guarantee that the hot path has no mutex to
//! acquire is enforced by `hidet-lint` rule HA101 (`hidet-analysis`), which
//! replaced the ad-hoc source grep that used to live here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use hidet_server::ring::ring;
use proptest::prelude::*;

#[test]
fn capacity_rounds_up_to_a_power_of_two() {
    let (tx, _rx) = ring::<u8>(0);
    assert_eq!(tx.capacity(), 2);
    let (tx, _rx) = ring::<u8>(5);
    assert_eq!(tx.capacity(), 8);
    let (tx, _rx) = ring::<u8>(64);
    assert_eq!(tx.capacity(), 64);
}

#[test]
fn full_and_empty_boundaries() {
    let (tx, mut rx) = ring::<u32>(4);
    assert_eq!(rx.pop(), None, "fresh ring is empty");

    for i in 0..4 {
        assert!(tx.push(i).is_ok());
    }
    assert_eq!(tx.depth(), 4);
    // A full ring hands the value straight back.
    assert_eq!(tx.push(99), Err(99));
    assert_eq!(tx.depth(), 4, "failed push leaves the ring untouched");

    // One pop frees exactly one slot.
    assert_eq!(rx.pop(), Some(0));
    assert!(tx.push(4).is_ok());
    assert_eq!(tx.push(99), Err(99));

    for expected in [1, 2, 3, 4] {
        assert_eq!(rx.pop(), Some(expected));
    }
    assert_eq!(rx.pop(), None, "drained ring is empty again");
}

#[test]
fn wraparound_preserves_fifo_across_many_laps() {
    let (tx, mut rx) = ring::<usize>(4);
    // 10 laps of a capacity-4 ring: the cursors wrap the slot array many
    // times and every value still comes out in order.
    for i in 0..40 {
        assert!(tx.push(i).is_ok());
        if i % 2 == 1 {
            assert_eq!(rx.pop(), Some(i - 1));
            assert_eq!(rx.pop(), Some(i));
        }
    }
    assert_eq!(rx.pop(), None);
}

#[test]
fn dropping_the_ring_drops_queued_values() {
    let flag = Arc::new(AtomicBool::new(false));
    struct SetOnDrop(Arc<AtomicBool>);
    impl Drop for SetOnDrop {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }
    let (tx, rx) = ring::<SetOnDrop>(4);
    tx.push(SetOnDrop(Arc::clone(&flag))).ok();
    drop(tx);
    assert!(!flag.load(Ordering::SeqCst), "value still queued");
    drop(rx);
    assert!(
        flag.load(Ordering::SeqCst),
        "queued value dropped with ring"
    );
}

/// Many producer threads hammer a small ring while the consumer drains it:
/// every pushed value arrives exactly once, and each producer's values
/// arrive in its own push order.
#[test]
fn multi_producer_contention_is_exactly_once_fifo() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 5_000;

    let (tx, mut rx) = ring::<(usize, usize)>(8);
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|producer| {
            let tx = tx.clone();
            thread::spawn(move || {
                for seq in 0..PER_PRODUCER {
                    let mut value = (producer, seq);
                    // Spin on a full ring: this test wants every value
                    // through (the server sheds instead of spinning).
                    while let Err(back) = tx.push(value) {
                        value = back;
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();

    let mut received: Vec<(usize, usize)> = Vec::with_capacity(PRODUCERS * PER_PRODUCER);
    while received.len() < PRODUCERS * PER_PRODUCER {
        match rx.pop() {
            Some(value) => received.push(value),
            None => std::hint::spin_loop(),
        }
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(rx.pop(), None, "nothing left after the count is met");

    let mut next_expected = [0usize; PRODUCERS];
    for (producer, seq) in received {
        assert_eq!(
            seq, next_expected[producer],
            "producer {producer} values must arrive in push order"
        );
        next_expected[producer] += 1;
    }
    assert!(next_expected.iter().all(|&n| n == PER_PRODUCER));
}

proptest! {
    // Thread-spawning cases are expensive; 32 distinct shapes is plenty on
    // top of the deterministic contention test above.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of pushes (from several threads) and pops delivers
    /// each enqueued item exactly once, FIFO per producer.
    #[test]
    fn enqueued_items_dequeue_exactly_once_in_producer_order(
        capacity in 1usize..16,
        counts in proptest::collection::vec(1usize..200, 1..4),
    ) {
        let (tx, mut rx) = ring::<(usize, usize)>(capacity);
        let total: usize = counts.iter().sum();
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(producer, &count)| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for seq in 0..count {
                        let mut value = (producer, seq);
                        while let Err(back) = tx.push(value) {
                            value = back;
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        let mut per_producer: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut seen = 0usize;
        while seen < total {
            if let Some((producer, seq)) = rx.pop() {
                per_producer.entry(producer).or_default().push(seq);
                seen += 1;
            } else {
                thread::yield_now();
            }
        }
        for handle in handles {
            handle.join().unwrap();
        }
        prop_assert_eq!(rx.pop(), None);

        for (producer, &count) in counts.iter().enumerate() {
            let got = per_producer.remove(&producer).unwrap_or_default();
            let expected: Vec<usize> = (0..count).collect();
            prop_assert_eq!(got, expected, "producer {} order", producer);
        }
        prop_assert!(per_producer.is_empty(), "no phantom producers");
    }
}
