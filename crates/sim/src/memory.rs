//! Simulated device global memory: named flat `f32` buffers, optionally
//! backed by a single shared **arena**.
//!
//! All tensor element types evaluate in `f32` precision in the simulator
//! (`F16` buffers still *account* as 2 bytes/element in the cost model); index
//! and predicate types never live in buffers in the kernels this project
//! generates.
//!
//! Two kinds of buffer coexist:
//!
//! * **owned** buffers hold their own `Vec<f32>` — graph inputs and
//!   constants;
//! * **views** address a `(offset, len)` window of the memory's arena — the
//!   placement a memory planner (`hidet::MemoryPlan`) computed for
//!   intermediates. Views make buffer turnover allocation-free: rebinding a
//!   name or zeroing a region touches no allocator, so a serving worker that
//!   reuses one `DeviceMemory` across requests performs zero heap
//!   allocations for intermediates in steady state.
//!
//! [`DeviceMemory::alloc`] and [`DeviceMemory::alloc_zeroed`] write **in
//! place** when the named buffer already exists with the right length
//! (owned or view), allocating only on first use or on a length change.

use std::collections::HashMap;

/// Backing storage of one named buffer.
#[derive(Debug, Clone)]
enum Storage {
    /// The buffer owns its elements.
    Owned(Vec<f32>),
    /// The buffer is a window of the shared arena.
    View {
        /// Start element within the arena.
        offset: usize,
        /// Length in elements.
        len: usize,
    },
}

/// Named global-memory buffers, keyed by kernel parameter name.
#[derive(Debug, Clone, Default)]
pub struct DeviceMemory {
    buffers: HashMap<String, Storage>,
    /// Shared backing store for [`Storage::View`] buffers.
    arena: Vec<f32>,
}

impl DeviceMemory {
    /// An empty device memory.
    pub fn new() -> DeviceMemory {
        DeviceMemory::default()
    }

    /// Allocates (or overwrites) a buffer with the given contents. An
    /// existing buffer of the same length — owned or view — is written in
    /// place without allocating.
    pub fn alloc(&mut self, name: &str, data: &[f32]) {
        match self.buffers.get_mut(name) {
            Some(Storage::Owned(buf)) if buf.len() == data.len() => {
                buf.copy_from_slice(data);
            }
            Some(Storage::View { offset, len }) if *len == data.len() => {
                self.arena[*offset..*offset + *len].copy_from_slice(data);
            }
            _ => {
                self.buffers
                    .insert(name.to_string(), Storage::Owned(data.to_vec()));
            }
        }
    }

    /// Allocates (or re-zeroes) a buffer of `len` elements. An existing
    /// buffer of the same length is zero-filled in place without allocating.
    pub fn alloc_zeroed(&mut self, name: &str, len: usize) {
        match self.buffers.get_mut(name) {
            Some(Storage::Owned(buf)) if buf.len() == len => {
                buf.fill(0.0);
            }
            Some(Storage::View { offset, len: l }) if *l == len => {
                self.arena[*offset..*offset + *l].fill(0.0);
            }
            _ => {
                self.buffers
                    .insert(name.to_string(), Storage::Owned(vec![0.0; len]));
            }
        }
    }

    /// Grows the shared arena to at least `len` elements (new space is
    /// zero-filled). Never shrinks: existing views stay valid.
    pub fn reserve_arena(&mut self, len: usize) {
        if self.arena.len() < len {
            self.arena.resize(len, 0.0);
        }
    }

    /// Current arena size in elements.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Binds `name` to the arena window `[offset, offset + len)`, replacing
    /// any previous buffer under that name. The contents are whatever the
    /// arena holds there — callers zero the window when fresh storage is
    /// expected.
    ///
    /// # Panics
    /// Panics if the window exceeds the arena ([`DeviceMemory::reserve_arena`]
    /// first).
    pub fn bind_view(&mut self, name: &str, offset: usize, len: usize) {
        assert!(
            offset + len <= self.arena.len(),
            "view {name} [{offset}, {}) exceeds arena of {} elements",
            offset + len,
            self.arena.len()
        );
        self.buffers
            .insert(name.to_string(), Storage::View { offset, len });
    }

    /// Reads a buffer.
    ///
    /// # Panics
    /// Panics if the buffer does not exist; use [`DeviceMemory::get`] for a
    /// fallible lookup.
    pub fn read(&self, name: &str) -> &[f32] {
        self.get(name)
            .unwrap_or_else(|| panic!("no buffer named {name} in device memory"))
    }

    /// Fallible buffer lookup.
    pub fn get(&self, name: &str) -> Option<&[f32]> {
        match self.buffers.get(name)? {
            Storage::Owned(buf) => Some(buf.as_slice()),
            Storage::View { offset, len } => Some(&self.arena[*offset..*offset + *len]),
        }
    }

    /// Mutable fallible lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut [f32]> {
        match self.buffers.get_mut(name)? {
            Storage::Owned(buf) => Some(buf.as_mut_slice()),
            Storage::View { offset, len } => Some(&mut self.arena[*offset..*offset + *len]),
        }
    }

    /// True if a buffer with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.buffers.contains_key(name)
    }

    /// Removes a buffer, returning its contents. A view's window stays part
    /// of the arena (only the name binding is dropped).
    pub fn free(&mut self, name: &str) -> Option<Vec<f32>> {
        match self.buffers.remove(name)? {
            Storage::Owned(buf) => Some(buf),
            Storage::View { offset, len } => Some(self.arena[offset..offset + len].to_vec()),
        }
    }

    /// Device-to-device copy: `len` elements from `src_mem`'s buffer `src`
    /// (starting at `src_offset`) into this memory's buffer `dst` (starting
    /// at `dst_offset`). The DMA primitive of the simulated device — data
    /// moved between two resident buffers (e.g. a persistent KV-cache arena
    /// and a kernel input buffer) never round-trips through host vectors.
    ///
    /// # Panics
    /// Panics when either buffer is missing or a range is out of bounds.
    pub fn copy_from(
        &mut self,
        dst: &str,
        dst_offset: usize,
        src_mem: &DeviceMemory,
        src: &str,
        src_offset: usize,
        len: usize,
    ) {
        let from = src_mem.read(src);
        assert!(
            src_offset + len <= from.len(),
            "copy_from source {src} [{src_offset}, {}) exceeds {} elements",
            src_offset + len,
            from.len()
        );
        let to = self
            .get_mut(dst)
            .unwrap_or_else(|| panic!("no buffer named {dst} in device memory"));
        assert!(
            dst_offset + len <= to.len(),
            "copy_from destination {dst} [{dst_offset}, {}) exceeds {} elements",
            dst_offset + len,
            to.len()
        );
        to[dst_offset..dst_offset + len].copy_from_slice(&from[src_offset..src_offset + len]);
    }

    /// Names of all resident buffers (unordered).
    pub fn buffer_names(&self) -> impl Iterator<Item = &str> {
        self.buffers.keys().map(String::as_str)
    }

    /// Total resident bytes (4 bytes per element): owned buffers plus the
    /// arena (counted once — views alias it).
    pub fn total_bytes(&self) -> usize {
        let owned: usize = self
            .buffers
            .values()
            .map(|s| match s {
                Storage::Owned(buf) => buf.len() * 4,
                Storage::View { .. } => 0,
            })
            .sum();
        owned + self.arena.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_roundtrip() {
        let mut m = DeviceMemory::new();
        m.alloc("A", &[1.0, 2.0]);
        assert_eq!(m.read("A"), &[1.0, 2.0]);
        assert!(m.contains("A"));
        assert!(!m.contains("B"));
    }

    #[test]
    fn alloc_zeroed_and_free() {
        let mut m = DeviceMemory::new();
        m.alloc_zeroed("A", 4);
        assert_eq!(m.read("A"), &[0.0; 4]);
        assert_eq!(m.total_bytes(), 16);
        assert_eq!(m.free("A"), Some(vec![0.0; 4]));
        assert!(m.get("A").is_none());
    }

    #[test]
    #[should_panic(expected = "no buffer named")]
    fn read_missing_panics() {
        DeviceMemory::new().read("missing");
    }

    #[test]
    fn realloc_same_length_writes_in_place() {
        let mut m = DeviceMemory::new();
        m.alloc("A", &[1.0, 2.0]);
        m.alloc("A", &[3.0, 4.0]);
        assert_eq!(m.read("A"), &[3.0, 4.0]);
        m.alloc_zeroed("A", 2);
        assert_eq!(m.read("A"), &[0.0, 0.0]);
        // A length change still reallocates.
        m.alloc("A", &[9.0]);
        assert_eq!(m.read("A"), &[9.0]);
    }

    #[test]
    fn views_alias_the_arena() {
        let mut m = DeviceMemory::new();
        m.reserve_arena(8);
        assert_eq!(m.arena_len(), 8);
        m.bind_view("A", 0, 4);
        m.bind_view("B", 4, 4);
        m.alloc("A", &[1.0, 2.0, 3.0, 4.0]); // in-place write through the view
        m.alloc_zeroed("B", 4);
        assert_eq!(m.read("A"), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.read("B"), &[0.0; 4]);
        // Overlapping re-bind sees the bytes already there.
        m.bind_view("C", 2, 2);
        assert_eq!(m.read("C"), &[3.0, 4.0]);
        m.get_mut("C").unwrap()[0] = 9.0;
        assert_eq!(m.read("A"), &[1.0, 2.0, 9.0, 4.0]);
        // Arena counted once, views are free.
        assert_eq!(m.total_bytes(), 32);
    }

    #[test]
    fn arena_only_grows() {
        let mut m = DeviceMemory::new();
        m.reserve_arena(4);
        m.bind_view("A", 0, 4);
        m.alloc("A", &[1.0, 2.0, 3.0, 4.0]);
        m.reserve_arena(2); // no-op: never shrinks
        assert_eq!(m.arena_len(), 4);
        assert_eq!(m.read("A"), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn copy_from_moves_between_memories_and_storage_kinds() {
        let mut src = DeviceMemory::new();
        src.alloc("S", &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut dst = DeviceMemory::new();
        dst.reserve_arena(4);
        dst.bind_view("D", 0, 4); // view destination
        dst.alloc_zeroed("O", 3); // owned destination
        dst.copy_from("D", 1, &src, "S", 2, 2);
        assert_eq!(dst.read("D"), &[0.0, 3.0, 4.0, 0.0]);
        dst.copy_from("O", 0, &src, "S", 4, 1);
        assert_eq!(dst.read("O"), &[5.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds 5 elements")]
    fn copy_from_out_of_bounds_panics() {
        let mut src = DeviceMemory::new();
        src.alloc("S", &[0.0; 5]);
        let mut dst = DeviceMemory::new();
        dst.alloc_zeroed("D", 8);
        dst.copy_from("D", 0, &src, "S", 3, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds arena")]
    fn out_of_arena_view_panics() {
        let mut m = DeviceMemory::new();
        m.reserve_arena(2);
        m.bind_view("A", 0, 4);
    }
}
