//! Simulated device global memory: named flat `f32` buffers.
//!
//! All tensor element types evaluate in `f32` precision in the simulator
//! (`F16` buffers still *account* as 2 bytes/element in the cost model); index
//! and predicate types never live in buffers in the kernels this project
//! generates.

use std::collections::HashMap;

/// Named global-memory buffers, keyed by kernel parameter name.
#[derive(Debug, Clone, Default)]
pub struct DeviceMemory {
    buffers: HashMap<String, Vec<f32>>,
}

impl DeviceMemory {
    /// An empty device memory.
    pub fn new() -> DeviceMemory {
        DeviceMemory::default()
    }

    /// Allocates (or replaces) a buffer with the given contents.
    pub fn alloc(&mut self, name: &str, data: &[f32]) {
        self.buffers.insert(name.to_string(), data.to_vec());
    }

    /// Allocates a zero-filled buffer of `len` elements.
    pub fn alloc_zeroed(&mut self, name: &str, len: usize) {
        self.buffers.insert(name.to_string(), vec![0.0; len]);
    }

    /// Reads a buffer.
    ///
    /// # Panics
    /// Panics if the buffer does not exist; use [`DeviceMemory::get`] for a
    /// fallible lookup.
    pub fn read(&self, name: &str) -> &[f32] {
        self.get(name)
            .unwrap_or_else(|| panic!("no buffer named {name} in device memory"))
    }

    /// Fallible buffer lookup.
    pub fn get(&self, name: &str) -> Option<&[f32]> {
        self.buffers.get(name).map(Vec::as_slice)
    }

    /// Mutable fallible lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Vec<f32>> {
        self.buffers.get_mut(name)
    }

    /// True if a buffer with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.buffers.contains_key(name)
    }

    /// Removes a buffer, returning its contents.
    pub fn free(&mut self, name: &str) -> Option<Vec<f32>> {
        self.buffers.remove(name)
    }

    /// Names of all resident buffers (unordered).
    pub fn buffer_names(&self) -> impl Iterator<Item = &str> {
        self.buffers.keys().map(String::as_str)
    }

    /// Total resident bytes (4 bytes per element).
    pub fn total_bytes(&self) -> usize {
        self.buffers.values().map(|b| b.len() * 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_roundtrip() {
        let mut m = DeviceMemory::new();
        m.alloc("A", &[1.0, 2.0]);
        assert_eq!(m.read("A"), &[1.0, 2.0]);
        assert!(m.contains("A"));
        assert!(!m.contains("B"));
    }

    #[test]
    fn alloc_zeroed_and_free() {
        let mut m = DeviceMemory::new();
        m.alloc_zeroed("A", 4);
        assert_eq!(m.read("A"), &[0.0; 4]);
        assert_eq!(m.total_bytes(), 16);
        assert_eq!(m.free("A"), Some(vec![0.0; 4]));
        assert!(m.get("A").is_none());
    }

    #[test]
    #[should_panic(expected = "no buffer named")]
    fn read_missing_panics() {
        DeviceMemory::new().read("missing");
    }
}
