//! GPU simulator substrate for the Hidet reproduction.
//!
//! The paper evaluates on an NVIDIA RTX 3090 with the CUDA toolchain; neither
//! is available here, so this crate provides the closest synthetic equivalent
//! (see DESIGN.md §1):
//!
//! * a **functional interpreter** ([`interp`]) that executes `hidet-ir`
//!   kernels — thread blocks dispatched over the grid, threads run in lockstep
//!   across `__syncthreads()` barriers, shared memory and register files
//!   faithfully scoped — used to validate every generated kernel against the
//!   reference CPU executor;
//! * an **analytic latency model** ([`cost`]) calibrated to RTX 3090
//!   specifications ([`GpuSpec::rtx3090`]) that charges global-memory traffic
//!   against DRAM bandwidth, FLOPs against CUDA-core/Tensor-Core throughput,
//!   models occupancy limits (shared memory, registers, warp slots),
//!   wave-by-wave block dispatch (paper §2.1) and — crucially for the paper's
//!   story — **memory/compute overlap under software pipelining** (double
//!   buffering, §3.1), which loop-oriented baselines cannot express.
//!
//! ```
//! use hidet_ir::prelude::*;
//! use hidet_sim::{Gpu, GpuSpec};
//!
//! // A 32-element vector doubling kernel.
//! let mut kb = KernelBuilder::new("double", 1, 32);
//! let x = kb.param("X", DType::F32, &[32]);
//! kb.push(store(&x, vec![thread_idx()], load(&x, vec![thread_idx()]) * 2.0f32));
//! let kernel = kb.build();
//!
//! let gpu = Gpu::new(GpuSpec::rtx3090());
//! let mut mem = hidet_sim::DeviceMemory::new();
//! mem.alloc("X", &vec![1.0; 32]);
//! gpu.run(&kernel, &mut mem)?;
//! assert_eq!(mem.read("X")[0], 2.0);
//! let latency = gpu.estimate(&kernel)?;
//! assert!(latency.seconds > 0.0);
//! # Ok::<(), hidet_sim::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod interp;
pub mod memory;
pub mod spec;
pub mod value;

pub use cost::{estimated_queue_delay, CostBreakdown, LatencyEstimate, Occupancy, WorkCounts};
pub use interp::SimError;
pub use memory::DeviceMemory;
pub use spec::GpuSpec;
pub use value::Value;

use hidet_ir::Kernel;

/// A simulated GPU device: functional execution + latency estimation.
#[derive(Debug, Clone)]
pub struct Gpu {
    spec: GpuSpec,
}

impl Gpu {
    /// Creates a device with the given specification.
    pub fn new(spec: GpuSpec) -> Gpu {
        Gpu { spec }
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Functionally executes `kernel` against `memory` (named global buffers).
    ///
    /// # Errors
    /// Returns [`SimError`] on out-of-bounds accesses, missing buffers,
    /// non-uniform control flow around barriers, or resource-limit violations
    /// (shared memory per block exceeding the device limit).
    pub fn run(&self, kernel: &Kernel, memory: &mut DeviceMemory) -> Result<(), SimError> {
        interp::run_kernel(kernel, memory, &self.spec)
    }

    /// Estimates the execution latency of `kernel` on this device.
    ///
    /// # Errors
    /// Returns [`SimError::ResourceLimit`] if the kernel cannot be launched
    /// (e.g. shared memory demand above the per-SM limit) and
    /// [`SimError::NonConstExtent`] if the kernel still contains symbolic loop
    /// extents (unscheduled programs).
    pub fn estimate(&self, kernel: &Kernel) -> Result<LatencyEstimate, SimError> {
        cost::estimate(kernel, &self.spec)
    }
}

impl Default for Gpu {
    /// The paper's evaluation device: RTX 3090.
    fn default() -> Gpu {
        Gpu::new(GpuSpec::rtx3090())
    }
}
