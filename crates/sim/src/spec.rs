//! GPU device specifications.

/// Architectural parameters of a simulated GPU.
///
/// The defaults model an NVIDIA RTX 3090 (GA102), the device used throughout
/// the paper's evaluation (§6.1). All limits that constrain *occupancy* —
/// shared memory, register file, warp slots, resident blocks — are included
/// because the hardware-centric schedule space is built around them (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u64,
    /// Shared memory limit per thread block in bytes.
    pub shared_mem_per_block: u64,
    /// 32-bit registers per SM.
    pub registers_per_sm: u64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Peak FP32 throughput on CUDA cores, in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak FP16/TF32 throughput on Tensor Cores, in TFLOP/s.
    pub tensor_tflops: f64,
    /// Aggregate shared-memory bandwidth in GB/s (all SMs).
    pub smem_bandwidth_gbps: f64,
    /// Fixed kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Number of SMs that must be reading before DRAM bandwidth saturates.
    pub bandwidth_saturation_sms: u32,
}

impl GpuSpec {
    /// The paper's evaluation GPU: NVIDIA GeForce RTX 3090.
    ///
    /// Sources for the constants: GA102 whitepaper (82 SMs, 936 GB/s GDDR6X,
    /// 35.6 FP32 TFLOP/s, 71 FP16 Tensor TFLOP/s dense, 128 KB combined
    /// L1/shared per SM, 64K registers per SM, 1.70 GHz boost).
    pub fn rtx3090() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA GeForce RTX 3090 (simulated)".to_string(),
            num_sms: 82,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 100 * 1024,
            shared_mem_per_block: 99 * 1024,
            registers_per_sm: 65536,
            warp_size: 32,
            clock_ghz: 1.70,
            dram_bandwidth_gbps: 936.0,
            fp32_tflops: 35.6,
            tensor_tflops: 71.0,
            // 128 B/clk/SM with dual-issued 128-bit vector accesses
            // (LDS.128): 256 B/clk effective x 82 SMs x 1.7 GHz.
            smem_bandwidth_gbps: 35_600.0,
            launch_overhead_s: 4.0e-6,
            bandwidth_saturation_sms: 24,
        }
    }

    /// A small, laptop-class device — useful in tests for exercising
    /// occupancy limits with tiny kernels.
    pub fn tiny() -> GpuSpec {
        GpuSpec {
            name: "tiny test GPU".to_string(),
            num_sms: 4,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 4,
            shared_mem_per_sm: 32 * 1024,
            shared_mem_per_block: 16 * 1024,
            registers_per_sm: 16384,
            warp_size: 32,
            clock_ghz: 1.0,
            dram_bandwidth_gbps: 50.0,
            fp32_tflops: 1.0,
            tensor_tflops: 2.0,
            smem_bandwidth_gbps: 500.0,
            launch_overhead_s: 4.0e-6,
            bandwidth_saturation_sms: 2,
        }
    }

    /// Peak FP32 FLOP/s (not TFLOP/s).
    pub fn fp32_flops(&self) -> f64 {
        self.fp32_tflops * 1e12
    }

    /// Peak Tensor-Core FLOP/s.
    pub fn tensor_flops(&self) -> f64 {
        self.tensor_tflops * 1e12
    }

    /// DRAM bandwidth in bytes/s.
    pub fn dram_bytes_per_s(&self) -> f64 {
        self.dram_bandwidth_gbps * 1e9
    }

    /// Shared-memory bandwidth in bytes/s.
    pub fn smem_bytes_per_s(&self) -> f64 {
        self.smem_bandwidth_gbps * 1e9
    }

    /// A short, stable identity string for cache keys: tuned schedules and
    /// compiled graphs are only valid for the device they were produced on,
    /// so persistent caches (`hidet-sched` tuning records, the
    /// `hidet-runtime` compiled-graph cache) key on this fingerprint. Includes
    /// every parameter the cost model reads, so editing a spec invalidates
    /// records tuned under the old numbers.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|sm{}x{}t{}b|smem{}/{}|reg{}|w{}|{:.3}GHz|{:.1}GB/s|{:.2}/{:.2}TF|{:.1}GB/s|{:.2e}s|sat{}",
            self.name,
            self.num_sms,
            self.max_threads_per_sm,
            self.max_blocks_per_sm,
            self.shared_mem_per_sm,
            self.shared_mem_per_block,
            self.registers_per_sm,
            self.warp_size,
            self.clock_ghz,
            self.dram_bandwidth_gbps,
            self.fp32_tflops,
            self.tensor_tflops,
            self.smem_bandwidth_gbps,
            self.launch_overhead_s,
            self.bandwidth_saturation_sms,
        )
    }
}

impl Default for GpuSpec {
    fn default() -> GpuSpec {
        GpuSpec::rtx3090()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3090_constants() {
        let g = GpuSpec::rtx3090();
        assert_eq!(g.num_sms, 82);
        assert!(g.dram_bytes_per_s() > 9e11);
        assert!(g.tensor_flops() > g.fp32_flops());
    }

    #[test]
    fn default_is_rtx3090() {
        assert_eq!(GpuSpec::default(), GpuSpec::rtx3090());
    }

    #[test]
    fn fingerprints_distinguish_devices() {
        assert_eq!(
            GpuSpec::rtx3090().fingerprint(),
            GpuSpec::rtx3090().fingerprint()
        );
        assert_ne!(
            GpuSpec::rtx3090().fingerprint(),
            GpuSpec::tiny().fingerprint()
        );
        let mut derated = GpuSpec::rtx3090();
        derated.dram_bandwidth_gbps /= 2.0;
        assert_ne!(GpuSpec::rtx3090().fingerprint(), derated.fingerprint());
    }
}
