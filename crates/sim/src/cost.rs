//! Analytic latency model.
//!
//! The model reproduces the *relative* performance effects the paper's
//! evaluation turns on:
//!
//! 1. **Roofline terms.** Global-memory traffic is charged against DRAM
//!    bandwidth; floating-point work against CUDA-core or Tensor-Core
//!    throughput; shared-memory traffic against aggregate shared-memory
//!    bandwidth.
//! 2. **Occupancy.** Resident blocks per SM are limited by shared memory,
//!    registers, warp slots and the architectural block cap (paper §2.1). Low
//!    occupancy reduces achievable compute efficiency (latency hiding).
//! 3. **Wave quantization.** Blocks dispatch wave by wave; a 1-block tail wave
//!    costs as much as a full wave of that block's work.
//! 4. **Pipelining.** With `pipeline_stages >= 2` (double buffering, §3.1),
//!    per-iteration memory and compute time overlap: `max(mem, comp)` instead
//!    of `mem + comp`. This single mechanism is what lets Hidet schedules beat
//!    loop-oriented schedules at large batch sizes (§6.3.3) — the baselines
//!    cannot express it.
//!
//! Work counts are extracted from the kernel IR itself (loop extents, loads,
//! stores, arithmetic), so every scheduling decision — tile sizes, predicated
//! partial tiles, parallel-k splits — changes the estimate through the code it
//! actually generates, not through hand-wired constants.

use hidet_ir::{DType, Expr, Kernel, MemScope, Stmt};

use crate::interp::SimError;
use crate::spec::GpuSpec;

/// Per-thread work extracted from a kernel body.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkCounts {
    /// Bytes read from global memory (per thread).
    pub global_load_bytes: f64,
    /// Bytes written to global memory (per thread).
    pub global_store_bytes: f64,
    /// Shared-memory accesses in bytes (per thread).
    pub smem_bytes: f64,
    /// Floating-point operations (per thread).
    pub flops: f64,
    /// Integer/index operations (per thread).
    pub int_ops: f64,
    /// Transcendental operations (exp/tanh/erf...), weighted separately.
    pub special_ops: f64,
    /// Barrier count (per block, dynamic).
    pub syncs: f64,
}

impl WorkCounts {
    fn add_scaled(&mut self, other: &WorkCounts, k: f64) {
        self.global_load_bytes += other.global_load_bytes * k;
        self.global_store_bytes += other.global_store_bytes * k;
        self.smem_bytes += other.smem_bytes * k;
        self.flops += other.flops * k;
        self.int_ops += other.int_ops * k;
        self.special_ops += other.special_ops * k;
        self.syncs += other.syncs * k;
    }

    fn max_of(a: &WorkCounts, b: &WorkCounts) -> WorkCounts {
        WorkCounts {
            global_load_bytes: a.global_load_bytes.max(b.global_load_bytes),
            global_store_bytes: a.global_store_bytes.max(b.global_store_bytes),
            smem_bytes: a.smem_bytes.max(b.smem_bytes),
            flops: a.flops.max(b.flops),
            int_ops: a.int_ops.max(b.int_ops),
            special_ops: a.special_ops.max(b.special_ops),
            syncs: a.syncs.max(b.syncs),
        }
    }
}

/// Occupancy analysis: how many blocks fit on one SM, and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM after all limits.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// The binding limit ("blocks", "threads", "shared", "registers").
    pub limited_by: &'static str,
}

/// Computes occupancy for a kernel on a device.
///
/// # Errors
/// [`SimError::ResourceLimit`] if even a single block does not fit.
pub fn occupancy(kernel: &Kernel, spec: &GpuSpec) -> Result<Occupancy, SimError> {
    let block_dim = kernel.launch().block_dim as u64;
    let shared = kernel.shared_bytes();
    let regs = kernel.registers_per_thread() * block_dim;
    if shared > spec.shared_mem_per_block {
        return Err(SimError::ResourceLimit(format!(
            "{} B shared memory per block exceeds the {} B limit",
            shared, spec.shared_mem_per_block
        )));
    }
    if block_dim > spec.max_threads_per_sm as u64 {
        return Err(SimError::ResourceLimit(format!(
            "{block_dim} threads per block exceed {} per SM",
            spec.max_threads_per_sm
        )));
    }
    let mut limit = spec.max_blocks_per_sm;
    let mut reason = "blocks";
    let by_threads = (spec.max_threads_per_sm as u64 / block_dim) as u32;
    if by_threads < limit {
        limit = by_threads;
        reason = "threads";
    }
    if let Some(by_shared) = spec.shared_mem_per_sm.checked_div(shared) {
        if (by_shared as u32) < limit {
            limit = by_shared as u32;
            reason = "shared";
        }
    }
    if let Some(by_regs) = spec.registers_per_sm.checked_div(regs) {
        if (by_regs as u32) < limit {
            limit = by_regs as u32;
            reason = "registers";
        }
    }
    if limit == 0 {
        return Err(SimError::ResourceLimit(format!(
            "kernel {} cannot fit a single block per SM (regs={regs}, shared={shared})",
            kernel.name()
        )));
    }
    Ok(Occupancy {
        blocks_per_sm: limit,
        warps_per_sm: limit * (block_dim as u32).div_ceil(spec.warp_size),
        limited_by: reason,
    })
}

/// Detailed latency breakdown, returned alongside the scalar estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Seconds spent on global-memory traffic (if perfectly serialized).
    pub t_mem: f64,
    /// Seconds on floating-point compute.
    pub t_comp: f64,
    /// Seconds on shared-memory traffic.
    pub t_smem: f64,
    /// Seconds of barrier overhead.
    pub t_sync: f64,
    /// Number of dispatch waves.
    pub waves: u32,
    /// Occupancy used.
    pub occupancy: Occupancy,
    /// Fraction of peak compute reachable given occupancy (latency hiding).
    pub compute_efficiency: f64,
    /// Fraction of peak DRAM bandwidth reachable given active SMs.
    pub bandwidth_efficiency: f64,
}

/// A latency estimate in seconds plus its breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyEstimate {
    /// Estimated kernel latency in seconds.
    pub seconds: f64,
    /// Component breakdown.
    pub breakdown: CostBreakdown,
}

impl LatencyEstimate {
    /// Latency in microseconds.
    pub fn micros(&self) -> f64 {
        self.seconds * 1e6
    }

    /// Latency in milliseconds.
    pub fn millis(&self) -> f64 {
        self.seconds * 1e3
    }
}

/// Estimates kernel latency; see the module docs for the model.
///
/// # Errors
/// [`SimError::ResourceLimit`] if the kernel cannot launch;
/// [`SimError::NonConstExtent`] if a loop extent is not a constant.
pub fn estimate(kernel: &Kernel, spec: &GpuSpec) -> Result<LatencyEstimate, SimError> {
    let occ = occupancy(kernel, spec)?;
    let per_thread = count_work(kernel.body())?;
    let launch = kernel.launch();
    let block_dim = launch.block_dim as f64;
    let grid = launch.grid_dim as f64;

    // Aggregate work per block.
    let bytes_block = (per_thread.global_load_bytes + per_thread.global_store_bytes) * block_dim;
    let flops_block = per_thread.flops * block_dim;
    let special_block = per_thread.special_ops * block_dim;
    let smem_block = per_thread.smem_bytes * block_dim;

    // Waves of resident blocks (paper §2.1: dispatched wave by wave) —
    // reported for diagnostics; the timing below uses per-SM *rounds*, which
    // capture tile quantization exactly: the busiest SM executes
    // `ceil(grid / num_sms)` blocks over the kernel's lifetime, and the
    // kernel finishes when the busiest SM does.
    let concurrent = (occ.blocks_per_sm * spec.num_sms) as f64;
    let waves = (grid / concurrent).ceil().max(1.0);
    let rounds = (grid / spec.num_sms as f64).ceil().max(1.0);

    // Efficiency terms. Compute needs enough resident warps per SM to hide
    // latency; DRAM needs enough active SMs to saturate the controllers.
    let warps_needed = 12.0;
    let compute_eff = (occ.warps_per_sm as f64 / warps_needed).min(1.0) * 0.85;
    let active_sms = grid.min(spec.num_sms as f64);
    let bw_eff = (active_sms / spec.bandwidth_saturation_sms as f64).min(1.0);

    let meta = kernel.meta();
    let peak_flops = if meta.uses_tensor_cores {
        spec.tensor_flops()
    } else {
        spec.fp32_flops()
    };
    let per_sm_flops = peak_flops / spec.num_sms as f64;
    let per_sm_smem_bw = spec.smem_bytes_per_s() / spec.num_sms as f64;

    // Compute/shared-memory time: serialized rounds on the busiest SM.
    let t_comp = rounds * flops_block / (per_sm_flops * compute_eff)
        + rounds * special_block / (per_sm_flops * 0.25);
    let t_smem = rounds * smem_block / per_sm_smem_bw;
    // Global-memory time: total traffic through the shared DRAM interface.
    let t_mem = (bytes_block * grid) / (spec.dram_bytes_per_s() * bw_eff);
    // Barrier cost: ~20 cycles per barrier per block round.
    let t_sync = rounds * per_thread.syncs * 20.0 / (spec.clock_ghz * 1e9);

    // Overlap model: software pipelining overlaps the global-memory path with
    // compute. Without it, a block alternates load / sync / compute (paper
    // Fig. 3), serializing the two. Deeper pipelines approach perfect overlap.
    let overlap = match meta.pipeline_stages {
        0 | 1 => 0.15, // incidental overlap from inter-warp parallelism
        2 => 0.80,     // double buffering
        _ => 0.92,     // multi-stage asynchronous prefetch
    };
    let serial = t_comp + t_mem;
    let overlapped = t_comp.max(t_mem);
    let t_total = serial + (overlapped - serial) * overlap + t_smem + t_sync;

    let seconds = spec.launch_overhead_s + t_total;
    Ok(LatencyEstimate {
        seconds,
        breakdown: CostBreakdown {
            t_mem,
            t_comp,
            t_smem,
            t_sync,
            waves: waves as u32,
            occupancy: occ,
            compute_efficiency: compute_eff,
            bandwidth_efficiency: bw_eff,
        },
    })
}

/// Estimated delay, in seconds, before a newly placed batch could start
/// executing on a device whose queue already holds batches with the given
/// estimated latencies, served by `lanes` concurrent execution lanes
/// (worker threads feeding the device).
///
/// The pending batches are assigned to lanes greedily in FIFO order — each
/// batch starts on the lane that frees first — and the new batch starts when
/// the next lane frees after all of them have been placed. This is the
/// placement signal the `hidet-runtime` shard scheduler ranks devices by:
/// it prefers the shard whose next free lane is soonest, which balances
/// *estimated seconds of work* rather than batch counts, so a slow device in
/// a mixed pool naturally receives less traffic.
///
/// An empty queue (or one shorter than `lanes`) returns `0.0`: a lane is
/// already free.
pub fn estimated_queue_delay(pending_latencies: &[f64], lanes: usize) -> f64 {
    let lanes = lanes.max(1);
    if pending_latencies.len() < lanes {
        return 0.0;
    }
    let mut finish = vec![0.0f64; lanes];
    for &latency in pending_latencies {
        let next = finish
            .iter_mut()
            .min_by(|a, b| a.total_cmp(b))
            .expect("lanes >= 1");
        *next += latency.max(0.0);
    }
    finish.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Walks a kernel body, accumulating per-thread dynamic work counts.
///
/// Loop extents must be constants (they are, after scheduling); `If` branches
/// contribute the max of their arms (an upper bound that models the uniform
/// execution of predicated partial tiles).
pub fn count_work(stmt: &Stmt) -> Result<WorkCounts, SimError> {
    let mut counts = WorkCounts::default();
    walk_stmt(stmt, 1.0, &mut counts)?;
    Ok(counts)
}

fn walk_stmt(stmt: &Stmt, mult: f64, counts: &mut WorkCounts) -> Result<(), SimError> {
    match stmt {
        Stmt::Seq(items) => {
            for item in items {
                walk_stmt(item, mult, counts)?;
            }
            Ok(())
        }
        Stmt::For { extent, body, .. } => {
            let n = extent.as_int().ok_or_else(|| {
                SimError::NonConstExtent(format!("loop extent {extent} is not a constant"))
            })? as f64;
            walk_expr(extent, mult, counts);
            walk_stmt(body, mult * n, counts)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            walk_expr(cond, mult, counts);
            let mut then_counts = WorkCounts::default();
            walk_stmt(then_body, mult, &mut then_counts)?;
            let mut else_counts = WorkCounts::default();
            if let Some(e) = else_body {
                walk_stmt(e, mult, &mut else_counts)?;
            }
            counts.add_scaled(&WorkCounts::max_of(&then_counts, &else_counts), 1.0);
            Ok(())
        }
        Stmt::Let { value, .. } => {
            walk_expr(value, mult, counts);
            Ok(())
        }
        Stmt::Store {
            buffer,
            indices,
            value,
        } => {
            for idx in indices {
                walk_expr(idx, mult, counts);
            }
            walk_expr(value, mult, counts);
            account_access(buffer.scope(), buffer.dtype(), false, mult, counts);
            Ok(())
        }
        Stmt::SyncThreads => {
            counts.syncs += mult;
            Ok(())
        }
        Stmt::Nop | Stmt::Comment(_) => Ok(()),
    }
}

fn account_access(
    scope: MemScope,
    dtype: DType,
    is_load: bool,
    mult: f64,
    counts: &mut WorkCounts,
) {
    let bytes = dtype.size_bytes() as f64 * mult;
    match scope {
        MemScope::Global => {
            if is_load {
                counts.global_load_bytes += bytes;
            } else {
                counts.global_store_bytes += bytes;
            }
        }
        MemScope::Shared => counts.smem_bytes += bytes,
        MemScope::Register => {} // register file access is covered by the op costs
    }
}

fn walk_expr(expr: &Expr, mult: f64, counts: &mut WorkCounts) {
    match expr {
        Expr::Binary { op, lhs, rhs } => {
            walk_expr(lhs, mult, counts);
            walk_expr(rhs, mult, counts);
            if lhs.dtype().is_float() && !op.is_predicate() {
                counts.flops += mult;
            } else {
                counts.int_ops += mult;
            }
        }
        Expr::Unary { op, operand } => {
            walk_expr(operand, mult, counts);
            use hidet_ir::UnOp::*;
            match op {
                Exp | Sqrt | Rsqrt | Tanh | Erf | Log | Sigmoid => counts.special_ops += mult,
                _ if operand.dtype().is_float() => counts.flops += mult,
                _ => counts.int_ops += mult,
            }
        }
        Expr::Load { buffer, indices } => {
            for idx in indices {
                walk_expr(idx, mult, counts);
            }
            account_access(buffer.scope(), buffer.dtype(), true, mult, counts);
        }
        Expr::Cast { value, .. } => walk_expr(value, mult, counts),
        Expr::Select {
            cond,
            then_value,
            else_value,
        } => {
            walk_expr(cond, mult, counts);
            walk_expr(then_value, mult, counts);
            walk_expr(else_value, mult, counts);
            counts.flops += mult;
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidet_ir::prelude::*;

    /// A simple global-to-global streaming kernel with `elems` elements/thread.
    fn stream_kernel(grid: i64, block: i64, elems: i64, stages: u32) -> Kernel {
        let n = grid * block * elems;
        let mut kb = KernelBuilder::new("stream", grid, block);
        let x = kb.param("X", DType::F32, &[n]);
        let y = kb.param("Y", DType::F32, &[n]);
        let base = (block_idx() * block + thread_idx()) * elems;
        kb.push(for_range("i", elems, |i| {
            store(
                &y,
                vec![base.clone() + i.clone()],
                load(&x, vec![base.clone() + i]) * 2.0f32,
            )
        }));
        kb.meta(KernelMeta {
            pipeline_stages: stages,
            ..KernelMeta::default()
        });
        kb.build()
    }

    #[test]
    fn counts_scale_with_loop_extents() {
        let k = stream_kernel(1, 32, 8, 1);
        let counts = count_work(k.body()).unwrap();
        assert_eq!(counts.global_load_bytes, 8.0 * 4.0);
        assert_eq!(counts.global_store_bytes, 8.0 * 4.0);
        assert_eq!(counts.flops, 8.0);
    }

    #[test]
    fn occupancy_limits() {
        let spec = GpuSpec::rtx3090();
        // 48 KiB of shared memory → 2 blocks per SM by the shared limit.
        let mut kb = KernelBuilder::new("k", 82, 128);
        kb.param("X", DType::F32, &[1]);
        kb.shared("S", DType::F32, &[48 * 256]); // 48 KiB
        let occ = occupancy(&kb.build(), &spec).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limited_by, "shared");
    }

    #[test]
    fn occupancy_thread_limit() {
        let spec = GpuSpec::rtx3090();
        let mut kb = KernelBuilder::new("k", 1, 1024);
        kb.param("X", DType::F32, &[1]);
        let occ = occupancy(&kb.build(), &spec).unwrap();
        assert_eq!(occ.blocks_per_sm, 1); // 1536 / 1024
        assert_eq!(occ.limited_by, "threads");
    }

    #[test]
    fn oversized_shared_fails() {
        let spec = GpuSpec::rtx3090();
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.param("X", DType::F32, &[1]);
        kb.shared("S", DType::F32, &[128 * 1024]);
        assert!(matches!(
            occupancy(&kb.build(), &spec),
            Err(SimError::ResourceLimit(_))
        ));
    }

    #[test]
    fn memory_bound_kernel_tracks_bandwidth() {
        // 256 MiB of traffic, fully parallel: latency ≈ bytes / bandwidth.
        let spec = GpuSpec::rtx3090();
        let k = stream_kernel(8192, 256, 16, 1);
        let est = estimate(&k, &spec).unwrap();
        let bytes = 8192.0 * 256.0 * 16.0 * 8.0; // load + store
        let ideal = bytes / spec.dram_bytes_per_s();
        assert!(
            est.seconds > ideal * 0.9,
            "est {} vs ideal {}",
            est.seconds,
            ideal
        );
        assert!(
            est.seconds < ideal * 3.0,
            "est {} vs ideal {}",
            est.seconds,
            ideal
        );
    }

    #[test]
    fn double_buffering_reduces_latency_when_balanced() {
        // Same code, stages=1 vs stages=2: pipelined must be faster.
        let k1 = stream_kernel(2048, 256, 64, 1);
        let k2 = stream_kernel(2048, 256, 64, 2);
        let spec = GpuSpec::rtx3090();
        let e1 = estimate(&k1, &spec).unwrap();
        let e2 = estimate(&k2, &spec).unwrap();
        assert!(e2.seconds < e1.seconds, "{} !< {}", e2.seconds, e1.seconds);
    }

    #[test]
    fn wave_quantization_counts_waves() {
        let spec = GpuSpec::rtx3090();
        let k = stream_kernel(82 * 16 * 3, 64, 4, 1); // exactly 3 waves at max occupancy
        let est = estimate(&k, &spec).unwrap();
        assert!(est.breakdown.waves >= 3);
    }

    #[test]
    fn tensor_core_meta_raises_compute_throughput() {
        let spec = GpuSpec::rtx3090();
        let build = |tc: bool| {
            let mut kb = KernelBuilder::new("fma", 256, 256);
            let x = kb.param("X", DType::F32, &[256 * 256]);
            let i = block_idx() * 256 + thread_idx();
            kb.push(for_range("k", 4096, |_| {
                store(
                    &x,
                    vec![i.clone()],
                    load(&x, vec![i.clone()]) * 1.0001f32 + 1.0f32,
                )
            }));
            kb.meta(KernelMeta {
                uses_tensor_cores: tc,
                ..KernelMeta::default()
            });
            kb.build()
        };
        let slow = estimate(&build(false), &spec).unwrap();
        let fast = estimate(&build(true), &spec).unwrap();
        assert!(fast.seconds < slow.seconds);
    }

    #[test]
    fn non_const_extent_rejected() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        let x = kb.param("X", DType::F32, &[32]);
        kb.push(for_range("i", thread_idx(), |i| {
            store(&x, vec![i.clone()], fconst(0.0))
        }));
        let k = kb.build();
        assert!(matches!(
            estimate(&k, &GpuSpec::rtx3090()),
            Err(SimError::NonConstExtent(_))
        ));
    }

    #[test]
    fn queue_delay_empty_queue_is_zero() {
        assert_eq!(estimated_queue_delay(&[], 1), 0.0);
        assert_eq!(estimated_queue_delay(&[], 4), 0.0);
        // Fewer pending batches than lanes: a lane is free right now.
        assert_eq!(estimated_queue_delay(&[0.5], 2), 0.0);
    }

    #[test]
    fn queue_delay_single_lane_serializes() {
        // One lane: the new batch waits for everything ahead of it.
        let d = estimated_queue_delay(&[3.0, 1.0, 1.0], 1);
        assert!((d - 5.0).abs() < 1e-12, "{d}");
    }

    #[test]
    fn queue_delay_multi_lane_waits_for_first_free_lane() {
        // Two lanes, FIFO greedy: [4] -> lane0, [1] -> lane1, [1] -> lane1
        // (frees at 1.0). Lanes finish at 4.0 and 2.0; next start is 2.0.
        let d = estimated_queue_delay(&[4.0, 1.0, 1.0], 2);
        assert!((d - 2.0).abs() < 1e-12, "{d}");
    }

    #[test]
    fn queue_delay_zero_lanes_treated_as_one() {
        let d = estimated_queue_delay(&[2.0], 0);
        assert!((d - 2.0).abs() < 1e-12, "{d}");
    }

    #[test]
    fn queue_delay_ignores_negative_estimates() {
        let d = estimated_queue_delay(&[-1.0, 2.0], 1);
        assert!((d - 2.0).abs() < 1e-12, "{d}");
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let spec = GpuSpec::rtx3090();
        let k = stream_kernel(1, 32, 1, 1);
        let est = estimate(&k, &spec).unwrap();
        assert!(est.seconds >= spec.launch_overhead_s);
    }
}
