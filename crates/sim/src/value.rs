//! Runtime values of the interpreter.

use hidet_ir::{BinOp, DType, UnOp};

/// A dynamically typed scalar produced by expression evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Floating point (F32/F16 both evaluate in f32 precision).
    F32(f32),
    /// Integer (I32/I64 both evaluate in i64).
    I64(i64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// As float, converting integers; `None` for booleans.
    pub fn as_f32(self) -> Option<f32> {
        match self {
            Value::F32(v) => Some(v),
            Value::I64(v) => Some(v as f32),
            Value::Bool(_) => None,
        }
    }

    /// As integer; floats truncate toward zero (CUDA C cast semantics).
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(v),
            Value::F32(v) => Some(v as i64),
            Value::Bool(_) => None,
        }
    }

    /// As boolean.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Casts to the given IR type.
    pub fn cast(self, dtype: DType) -> Value {
        match dtype {
            DType::F32 | DType::F16 => Value::F32(self.as_f32().unwrap_or(0.0)),
            DType::I32 | DType::I64 => Value::I64(self.as_i64().unwrap_or(0)),
            DType::Bool => Value::Bool(match self {
                Value::Bool(b) => b,
                Value::I64(v) => v != 0,
                Value::F32(v) => v != 0.0,
            }),
        }
    }

    /// Applies a binary operator; both operands are promoted to float if
    /// either is float.
    ///
    /// Integer division by zero yields `None` (reported as a runtime error by
    /// the interpreter rather than a panic).
    pub fn binary(op: BinOp, a: Value, b: Value) -> Option<Value> {
        use BinOp::*;
        match (a, b) {
            (Value::Bool(x), Value::Bool(y)) => Some(match op {
                And => Value::Bool(x && y),
                Or => Value::Bool(x || y),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                _ => return None,
            }),
            (Value::I64(x), Value::I64(y)) => Some(match op {
                Add => Value::I64(x + y),
                Sub => Value::I64(x - y),
                Mul => Value::I64(x * y),
                Div => Value::I64(x.checked_div(y)?),
                Mod => Value::I64(x.checked_rem(y)?),
                Min => Value::I64(x.min(y)),
                Max => Value::I64(x.max(y)),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Eq => Value::Bool(x == y),
                Ne => Value::Bool(x != y),
                And | Or => return None,
            }),
            _ => {
                let x = a.as_f32()?;
                let y = b.as_f32()?;
                Some(match op {
                    Add => Value::F32(x + y),
                    Sub => Value::F32(x - y),
                    Mul => Value::F32(x * y),
                    Div => Value::F32(x / y),
                    Mod => Value::F32(x % y),
                    Min => Value::F32(x.min(y)),
                    Max => Value::F32(x.max(y)),
                    Lt => Value::Bool(x < y),
                    Le => Value::Bool(x <= y),
                    Eq => Value::Bool(x == y),
                    Ne => Value::Bool(x != y),
                    And | Or => return None,
                })
            }
        }
    }

    /// Applies a unary operator.
    pub fn unary(op: UnOp, v: Value) -> Option<Value> {
        use UnOp::*;
        match op {
            Not => Some(Value::Bool(!v.as_bool()?)),
            Neg => Some(match v {
                Value::I64(x) => Value::I64(-x),
                Value::F32(x) => Value::F32(-x),
                Value::Bool(_) => return None,
            }),
            Abs => Some(match v {
                Value::I64(x) => Value::I64(x.abs()),
                Value::F32(x) => Value::F32(x.abs()),
                Value::Bool(_) => return None,
            }),
            _ => {
                let x = v.as_f32()?;
                Some(Value::F32(match op {
                    Exp => x.exp(),
                    Sqrt => x.sqrt(),
                    Rsqrt => 1.0 / x.sqrt(),
                    Tanh => x.tanh(),
                    Erf => erf(x),
                    Log => x.ln(),
                    Sigmoid => 1.0 / (1.0 + (-x).exp()),
                    Neg | Not | Abs => unreachable!("handled above"),
                }))
            }
        }
    }
}

/// Abramowitz–Stegun rational approximation of the error function
/// (max abs error 1.5e-7, matching CUDA `erff` to fp32 tolerance).
pub fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061_405_4 * t - 1.453_152_1) * t) + 1.421_413_8) * t - 0.284_496_72) * t
            + 0.254_829_6)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic() {
        assert_eq!(
            Value::binary(BinOp::Add, Value::I64(2), Value::I64(3)),
            Some(Value::I64(5))
        );
        assert_eq!(
            Value::binary(BinOp::Div, Value::I64(7), Value::I64(2)),
            Some(Value::I64(3))
        );
        assert_eq!(
            Value::binary(BinOp::Div, Value::I64(7), Value::I64(0)),
            None
        );
        assert_eq!(
            Value::binary(BinOp::Mod, Value::I64(7), Value::I64(4)),
            Some(Value::I64(3))
        );
    }

    #[test]
    fn mixed_promotes_to_float() {
        assert_eq!(
            Value::binary(BinOp::Mul, Value::I64(2), Value::F32(1.5)),
            Some(Value::F32(3.0))
        );
    }

    #[test]
    fn comparisons_produce_bools() {
        assert_eq!(
            Value::binary(BinOp::Lt, Value::F32(1.0), Value::F32(2.0)),
            Some(Value::Bool(true))
        );
        assert_eq!(
            Value::binary(BinOp::Eq, Value::I64(3), Value::I64(3)),
            Some(Value::Bool(true))
        );
    }

    #[test]
    fn casts_follow_cuda_semantics() {
        assert_eq!(Value::F32(2.9).cast(DType::I64), Value::I64(2));
        assert_eq!(Value::I64(1).cast(DType::Bool), Value::Bool(true));
        assert_eq!(Value::I64(3).cast(DType::F32), Value::F32(3.0));
    }

    #[test]
    fn unary_math() {
        assert_eq!(Value::unary(UnOp::Neg, Value::I64(4)), Some(Value::I64(-4)));
        let s = Value::unary(UnOp::Sigmoid, Value::F32(0.0)).unwrap();
        assert_eq!(s, Value::F32(0.5));
        let e = Value::unary(UnOp::Exp, Value::F32(0.0)).unwrap();
        assert_eq!(e, Value::F32(1.0));
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }
}
