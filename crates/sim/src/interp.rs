//! Functional interpreter for `hidet-ir` kernels.
//!
//! Thread blocks execute sequentially over the grid (dispatch order does not
//! affect functional results for well-formed kernels, whose blocks write
//! disjoint output regions). Within a block, execution is *lockstep* across
//! `__syncthreads()` barriers: any statement whose subtree contains a barrier
//! is executed one step at a time for all threads (the paper's kernels have
//! uniform control flow around barriers, which the interpreter validates);
//! barrier-free subtrees run each thread to completion independently.

use std::collections::HashMap;
use std::fmt;

use hidet_ir::buffer::BufferRef;
use hidet_ir::{Expr, Kernel, MemScope, Stmt, Var};

use crate::memory::DeviceMemory;
use crate::spec::GpuSpec;
use crate::value::Value;

/// Errors produced by the simulator (interpreter and cost model).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A kernel parameter has no corresponding buffer in device memory.
    MissingBuffer(String),
    /// A device buffer has the wrong number of elements for its parameter.
    BufferSizeMismatch {
        /// Buffer name.
        name: String,
        /// Elements the kernel expects.
        expected: usize,
        /// Elements actually allocated.
        actual: usize,
    },
    /// An access index fell outside a buffer dimension.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// Dimension of the offending index.
        dim: usize,
        /// The index value.
        index: i64,
        /// The dimension extent.
        extent: i64,
    },
    /// Integer division or modulo by zero.
    DivByZero,
    /// An unbound variable was referenced.
    UnboundVar(String),
    /// A type error (e.g. boolean used as an index).
    TypeError(String),
    /// Threads disagreed on a loop extent or branch condition that encloses a
    /// barrier — undefined behaviour on real hardware, an error here.
    NonUniformControl(String),
    /// The kernel exceeds a device resource limit and cannot launch.
    ResourceLimit(String),
    /// A loop extent is not a compile-time constant where one is required.
    NonConstExtent(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingBuffer(name) => write!(f, "no device buffer named {name}"),
            SimError::BufferSizeMismatch { name, expected, actual } => write!(
                f,
                "buffer {name} has {actual} elements but the kernel expects {expected}"
            ),
            SimError::OutOfBounds { buffer, dim, index, extent } => write!(
                f,
                "index {index} out of bounds for dimension {dim} (extent {extent}) of buffer {buffer}"
            ),
            SimError::DivByZero => f.write_str("integer division by zero"),
            SimError::UnboundVar(name) => write!(f, "unbound variable {name}"),
            SimError::TypeError(msg) => write!(f, "type error: {msg}"),
            SimError::NonUniformControl(msg) => {
                write!(f, "non-uniform control flow around a barrier: {msg}")
            }
            SimError::ResourceLimit(msg) => write!(f, "resource limit exceeded: {msg}"),
            SimError::NonConstExtent(msg) => write!(f, "non-constant loop extent: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Executes `kernel` against `memory` on the given device.
///
/// See [`crate::Gpu::run`] for the error contract.
pub fn run_kernel(
    kernel: &Kernel,
    memory: &mut DeviceMemory,
    spec: &GpuSpec,
) -> Result<(), SimError> {
    // One span per interpreted kernel; the simulated device has no request
    // context, so the span is unattributed (trace id 0). The guard closes
    // the span on every return path, validation errors included.
    let _span = hidet_trace::global().span(hidet_trace::SpanKind::KernelSim, 0);
    // Launch validation.
    if kernel.shared_bytes() > spec.shared_mem_per_block {
        return Err(SimError::ResourceLimit(format!(
            "kernel {} needs {} B of shared memory; device allows {} B per block",
            kernel.name(),
            kernel.shared_bytes(),
            spec.shared_mem_per_block
        )));
    }
    if kernel.launch().block_dim > spec.max_threads_per_sm as i64 {
        return Err(SimError::ResourceLimit(format!(
            "block of {} threads exceeds {} threads per SM",
            kernel.launch().block_dim,
            spec.max_threads_per_sm
        )));
    }
    for param in kernel.params() {
        let expected = param.num_elements() as usize;
        let actual = memory
            .get(param.name())
            .ok_or_else(|| SimError::MissingBuffer(param.name().to_string()))?
            .len();
        if actual != expected {
            return Err(SimError::BufferSizeMismatch {
                name: param.name().to_string(),
                expected,
                actual,
            });
        }
    }
    let launch = kernel.launch();
    let body = kernel.body().clone();
    for block in 0..launch.grid_dim {
        let mut ctx = BlockCtx::new(kernel, block, memory);
        ctx.exec(&body)?;
    }
    Ok(())
}

/// Per-thread variable environment with truncate-based scoping.
#[derive(Debug, Default, Clone)]
struct Env {
    bindings: Vec<(String, Value)>,
}

impl Env {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    fn push(&mut self, name: &str, value: Value) {
        self.bindings.push((name.to_string(), value));
    }

    fn set(&mut self, slot: usize, value: Value) {
        self.bindings[slot].1 = value;
    }

    fn len(&self) -> usize {
        self.bindings.len()
    }

    fn truncate(&mut self, len: usize) {
        self.bindings.truncate(len);
    }
}

struct BlockCtx<'a> {
    kernel: &'a Kernel,
    block: i64,
    block_dim: usize,
    global: &'a mut DeviceMemory,
    shared: HashMap<String, Vec<f32>>,
    locals: Vec<HashMap<String, Vec<f32>>>,
    envs: Vec<Env>,
}

impl<'a> BlockCtx<'a> {
    fn new(kernel: &'a Kernel, block: i64, global: &'a mut DeviceMemory) -> BlockCtx<'a> {
        let block_dim = kernel.launch().block_dim as usize;
        let shared = kernel
            .shared_buffers()
            .iter()
            .map(|b| {
                (
                    b.name().to_string(),
                    vec![0.0f32; b.num_elements() as usize],
                )
            })
            .collect();
        let locals = (0..block_dim)
            .map(|_| {
                kernel
                    .local_buffers()
                    .iter()
                    .map(|b| {
                        (
                            b.name().to_string(),
                            vec![0.0f32; b.num_elements() as usize],
                        )
                    })
                    .collect()
            })
            .collect();
        BlockCtx {
            kernel,
            block,
            block_dim,
            global,
            shared,
            locals,
            envs: vec![Env::default(); block_dim],
        }
    }

    /// Executes a statement for all threads of the block.
    fn exec(&mut self, stmt: &Stmt) -> Result<(), SimError> {
        if !stmt.contains_sync() {
            for tid in 0..self.block_dim {
                self.exec_thread(stmt, tid)?;
            }
            return Ok(());
        }
        // Lockstep path: the subtree contains a barrier.
        match stmt {
            Stmt::Seq(items) => {
                let marks: Vec<usize> = self.envs.iter().map(Env::len).collect();
                for item in items {
                    self.exec(item)?;
                }
                for (env, mark) in self.envs.iter_mut().zip(marks) {
                    env.truncate(mark);
                }
                Ok(())
            }
            Stmt::For {
                var, extent, body, ..
            } => {
                let n = self.uniform_int(extent, "loop extent")?;
                let slots: Vec<usize> = self.envs.iter().map(Env::len).collect();
                for env in &mut self.envs {
                    env.push(var.name(), Value::I64(0));
                }
                for i in 0..n {
                    for (env, &slot) in self.envs.iter_mut().zip(&slots) {
                        env.set(slot, Value::I64(i));
                    }
                    self.exec(body)?;
                }
                for (env, slot) in self.envs.iter_mut().zip(slots) {
                    env.truncate(slot);
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let taken = self.uniform_bool(cond)?;
                if taken {
                    self.exec(then_body)
                } else if let Some(e) = else_body {
                    self.exec(e)
                } else {
                    Ok(())
                }
            }
            Stmt::SyncThreads => Ok(()), // lockstep already synchronizes
            // Leaves never contain a sync, so this is unreachable.
            _ => unreachable!("leaf statement flagged as containing a barrier"),
        }
    }

    /// Executes a barrier-free statement for one thread to completion.
    fn exec_thread(&mut self, stmt: &Stmt, tid: usize) -> Result<(), SimError> {
        match stmt {
            Stmt::Seq(items) => {
                let mark = self.envs[tid].len();
                for item in items {
                    self.exec_thread(item, tid)?;
                }
                self.envs[tid].truncate(mark);
                Ok(())
            }
            Stmt::For {
                var, extent, body, ..
            } => {
                let n = self
                    .eval(extent, tid)?
                    .as_i64()
                    .ok_or_else(|| SimError::TypeError("loop extent must be integer".into()))?;
                let slot = self.envs[tid].len();
                self.envs[tid].push(var.name(), Value::I64(0));
                for i in 0..n {
                    self.envs[tid].set(slot, Value::I64(i));
                    self.exec_thread(body, tid)?;
                }
                self.envs[tid].truncate(slot);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let taken = self
                    .eval(cond, tid)?
                    .as_bool()
                    .ok_or_else(|| SimError::TypeError("condition must be boolean".into()))?;
                if taken {
                    self.exec_thread(then_body, tid)
                } else if let Some(e) = else_body {
                    self.exec_thread(e, tid)
                } else {
                    Ok(())
                }
            }
            Stmt::Let { var, value } => {
                let v = self.eval(value, tid)?;
                self.envs[tid].push(var.name(), v);
                Ok(())
            }
            Stmt::Store {
                buffer,
                indices,
                value,
            } => {
                let flat = self.flat_index(buffer, indices, tid)?;
                let v = self
                    .eval(value, tid)?
                    .cast(buffer.dtype())
                    .as_f32()
                    .ok_or_else(|| SimError::TypeError("stored value must be numeric".into()))?;
                let storage = self.storage_mut(buffer, tid)?;
                storage[flat] = v;
                Ok(())
            }
            Stmt::SyncThreads => unreachable!("barrier in thread-local path"),
            Stmt::Nop | Stmt::Comment(_) => Ok(()),
        }
    }

    fn eval(&self, expr: &Expr, tid: usize) -> Result<Value, SimError> {
        match expr {
            Expr::Int(v) => Ok(Value::I64(*v)),
            Expr::Float(v) => Ok(Value::F32(*v)),
            Expr::Bool(v) => Ok(Value::Bool(*v)),
            Expr::ThreadIdx => Ok(Value::I64(tid as i64)),
            Expr::BlockIdx => Ok(Value::I64(self.block)),
            Expr::Var(v) => self.lookup(v, tid),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, tid)?;
                let b = self.eval(rhs, tid)?;
                Value::binary(*op, a, b).ok_or(SimError::DivByZero)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, tid)?;
                Value::unary(*op, v)
                    .ok_or_else(|| SimError::TypeError(format!("cannot apply {op:?}")))
            }
            Expr::Cast { dtype, value } => Ok(self.eval(value, tid)?.cast(*dtype)),
            Expr::Select {
                cond,
                then_value,
                else_value,
            } => {
                let c = self.eval(cond, tid)?.as_bool().ok_or_else(|| {
                    SimError::TypeError("select condition must be boolean".into())
                })?;
                if c {
                    self.eval(then_value, tid)
                } else {
                    self.eval(else_value, tid)
                }
            }
            Expr::Load { buffer, indices } => {
                let flat = self.flat_index(buffer, indices, tid)?;
                let storage = self.storage(buffer, tid)?;
                Ok(Value::F32(storage[flat]))
            }
        }
    }

    fn lookup(&self, var: &Var, tid: usize) -> Result<Value, SimError> {
        self.envs[tid]
            .lookup(var.name())
            .ok_or_else(|| SimError::UnboundVar(var.name().to_string()))
    }

    fn flat_index(
        &self,
        buffer: &BufferRef,
        indices: &[Expr],
        tid: usize,
    ) -> Result<usize, SimError> {
        let shape = buffer.shape();
        let mut flat: i64 = 0;
        for (dim, (idx_expr, &extent)) in indices.iter().zip(shape).enumerate() {
            let idx = self
                .eval(idx_expr, tid)?
                .as_i64()
                .ok_or_else(|| SimError::TypeError("index must be integer".into()))?;
            if idx < 0 || idx >= extent {
                return Err(SimError::OutOfBounds {
                    buffer: buffer.name().to_string(),
                    dim,
                    index: idx,
                    extent,
                });
            }
            flat = flat * extent + idx;
        }
        Ok(flat as usize)
    }

    fn storage(&self, buffer: &BufferRef, tid: usize) -> Result<&[f32], SimError> {
        match buffer.scope() {
            MemScope::Global => self
                .global
                .get(buffer.name())
                .ok_or_else(|| SimError::MissingBuffer(buffer.name().to_string())),
            MemScope::Shared => self
                .shared
                .get(buffer.name())
                .map(Vec::as_slice)
                .ok_or_else(|| SimError::MissingBuffer(buffer.name().to_string())),
            MemScope::Register => self.locals[tid]
                .get(buffer.name())
                .map(Vec::as_slice)
                .ok_or_else(|| SimError::MissingBuffer(buffer.name().to_string())),
        }
    }

    fn storage_mut(&mut self, buffer: &BufferRef, tid: usize) -> Result<&mut [f32], SimError> {
        match buffer.scope() {
            MemScope::Global => self
                .global
                .get_mut(buffer.name())
                .ok_or_else(|| SimError::MissingBuffer(buffer.name().to_string())),
            MemScope::Shared => self
                .shared
                .get_mut(buffer.name())
                .map(Vec::as_mut_slice)
                .ok_or_else(|| SimError::MissingBuffer(buffer.name().to_string())),
            MemScope::Register => self.locals[tid]
                .get_mut(buffer.name())
                .map(Vec::as_mut_slice)
                .ok_or_else(|| SimError::MissingBuffer(buffer.name().to_string())),
        }
    }

    /// Evaluates `expr` for every thread and requires agreement.
    fn uniform_int(&self, expr: &Expr, what: &str) -> Result<i64, SimError> {
        let first = self
            .eval(expr, 0)?
            .as_i64()
            .ok_or_else(|| SimError::TypeError(format!("{what} must be integer")))?;
        for tid in 1..self.block_dim {
            let v = self.eval(expr, tid)?.as_i64();
            if v != Some(first) {
                return Err(SimError::NonUniformControl(format!(
                    "{what} {expr} differs across threads in kernel {}",
                    self.kernel.name()
                )));
            }
        }
        Ok(first)
    }

    fn uniform_bool(&self, expr: &Expr) -> Result<bool, SimError> {
        let first = self
            .eval(expr, 0)?
            .as_bool()
            .ok_or_else(|| SimError::TypeError("condition must be boolean".into()))?;
        for tid in 1..self.block_dim {
            let v = self.eval(expr, tid)?.as_bool();
            if v != Some(first) {
                return Err(SimError::NonUniformControl(format!(
                    "branch condition {expr} differs across threads in kernel {}",
                    self.kernel.name()
                )));
            }
        }
        Ok(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidet_ir::prelude::*;

    fn run(kernel: &Kernel, mem: &mut DeviceMemory) -> Result<(), SimError> {
        run_kernel(kernel, mem, &GpuSpec::rtx3090())
    }

    #[test]
    fn elementwise_double() {
        let mut kb = KernelBuilder::new("double", 2, 4);
        let x = kb.param("X", DType::F32, &[8]);
        let i = block_idx() * 4 + thread_idx();
        kb.push(store(&x, vec![i.clone()], load(&x, vec![i]) * 2.0f32));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc("X", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        run(&kernel, &mut mem).unwrap();
        assert_eq!(mem.read("X"), &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn shared_memory_reversal_with_barrier() {
        // Each thread writes smem[t], barrier, reads smem[blockDim-1-t].
        let mut kb = KernelBuilder::new("reverse", 1, 8);
        let x = kb.param("X", DType::F32, &[8]);
        let y = kb.param("Y", DType::F32, &[8]);
        let s = kb.shared("S", DType::F32, &[8]);
        kb.push(store(&s, vec![thread_idx()], load(&x, vec![thread_idx()])));
        kb.push(sync_threads());
        kb.push(store(
            &y,
            vec![thread_idx()],
            load(&s, vec![c(7) - thread_idx()]),
        ));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc("X", &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        mem.alloc_zeroed("Y", 8);
        run(&kernel, &mut mem).unwrap();
        assert_eq!(mem.read("Y"), &[7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn register_buffers_are_private_per_thread() {
        let mut kb = KernelBuilder::new("private", 1, 4);
        let y = kb.param("Y", DType::F32, &[4]);
        let r = kb.local("R", DType::F32, &[1]);
        kb.push(store(&r, vec![c(0)], thread_idx().cast(DType::F32)));
        kb.push(store(&y, vec![thread_idx()], load(&r, vec![c(0)])));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc_zeroed("Y", 4);
        run(&kernel, &mut mem).unwrap();
        assert_eq!(mem.read("Y"), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn loop_accumulation() {
        let mut kb = KernelBuilder::new("sum", 1, 1);
        let y = kb.param("Y", DType::F32, &[1]);
        kb.push(store(&y, vec![c(0)], fconst(0.0)));
        kb.push(for_range("i", 5, |i| {
            store(&y, vec![c(0)], load(&y, vec![c(0)]) + i.cast(DType::F32))
        }));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc_zeroed("Y", 1);
        run(&kernel, &mut mem).unwrap();
        assert_eq!(mem.read("Y"), &[10.0]);
    }

    #[test]
    fn let_bindings_scope_within_seq() {
        let mut kb = KernelBuilder::new("lets", 1, 2);
        let y = kb.param("Y", DType::F32, &[2]);
        let v = var("v");
        kb.push(seq(vec![
            let_(&v, thread_idx() * 10),
            store(&y, vec![thread_idx()], v.expr().cast(DType::F32)),
        ]));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc_zeroed("Y", 2);
        run(&kernel, &mut mem).unwrap();
        assert_eq!(mem.read("Y"), &[0.0, 10.0]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut kb = KernelBuilder::new("oob", 1, 4);
        let x = kb.param("X", DType::F32, &[2]);
        kb.push(store(&x, vec![thread_idx()], fconst(1.0)));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc_zeroed("X", 2);
        let err = run(&kernel, &mut mem).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }), "{err}");
    }

    #[test]
    fn predicated_store_stays_in_bounds() {
        let mut kb = KernelBuilder::new("pred", 1, 4);
        let x = kb.param("X", DType::F32, &[2]);
        kb.push(if_then(
            thread_idx().lt(2),
            store(&x, vec![thread_idx()], fconst(1.0)),
        ));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc_zeroed("X", 2);
        run(&kernel, &mut mem).unwrap();
        assert_eq!(mem.read("X"), &[1.0, 1.0]);
    }

    #[test]
    fn missing_buffer_reported() {
        let mut kb = KernelBuilder::new("k", 1, 1);
        kb.param("X", DType::F32, &[1]);
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        let err = run(&kernel, &mut mem).unwrap_err();
        assert_eq!(err, SimError::MissingBuffer("X".to_string()));
    }

    #[test]
    fn size_mismatch_reported() {
        let mut kb = KernelBuilder::new("k", 1, 1);
        kb.param("X", DType::F32, &[4]);
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc_zeroed("X", 2);
        let err = run(&kernel, &mut mem).unwrap_err();
        assert!(matches!(err, SimError::BufferSizeMismatch { .. }));
    }

    #[test]
    fn non_uniform_extent_around_barrier_rejected() {
        // for i in 0..threadIdx { sync } — thread-dependent extent around a barrier.
        let mut kb = KernelBuilder::new("bad", 1, 4);
        kb.param("X", DType::F32, &[1]);
        kb.push(for_range("i", thread_idx(), |_| sync_threads()));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc_zeroed("X", 1);
        let err = run(&kernel, &mut mem).unwrap_err();
        assert!(matches!(err, SimError::NonUniformControl(_)), "{err}");
    }

    #[test]
    fn shared_memory_limit_enforced() {
        let mut kb = KernelBuilder::new("big", 1, 32);
        kb.param("X", DType::F32, &[1]);
        kb.shared("S", DType::F32, &[64 * 1024]); // 256 KiB > limit
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        mem.alloc_zeroed("X", 1);
        let err = run(&kernel, &mut mem).unwrap_err();
        assert!(matches!(err, SimError::ResourceLimit(_)), "{err}");
    }

    #[test]
    fn double_buffered_pipeline_is_functionally_correct() {
        // A miniature double-buffered sum over 4 tiles of 8 elements:
        // smem[2][8], preload tile 0, then overlap "load next" and "consume".
        let mut kb = KernelBuilder::new("dbuf", 1, 8);
        let x = kb.param("X", DType::F32, &[32]);
        let y = kb.param("Y", DType::F32, &[8]);
        let s = kb.shared("S", DType::F32, &[2, 8]);
        let r = kb.local("Acc", DType::F32, &[1]);
        let t = thread_idx();
        kb.push(store(&r, vec![c(0)], fconst(0.0)));
        kb.push(store(&s, vec![c(0), t.clone()], load(&x, vec![t.clone()])));
        kb.push(sync_threads());
        kb.push(for_range("k", 3, |k| {
            let p = k.clone() % 2;
            let q = (k.clone() + 1) % 2;
            seq(vec![
                // Preload next tile into the other buffer.
                store(
                    &s,
                    vec![q, t.clone()],
                    load(&x, vec![(k.clone() + 1) * 8 + t.clone()]),
                ),
                // Consume the current buffer.
                store(
                    &r,
                    vec![c(0)],
                    load(&r, vec![c(0)]) + load(&s, vec![p, t.clone()]),
                ),
                sync_threads(),
            ])
        }));
        kb.push(store(
            &r,
            vec![c(0)],
            load(&r, vec![c(0)]) + load(&s, vec![c(3) % 2, t.clone()]),
        ));
        kb.push(store(&y, vec![t.clone()], load(&r, vec![c(0)])));
        let kernel = kb.build();
        let mut mem = DeviceMemory::new();
        let xs: Vec<f32> = (0..32).map(|i| i as f32).collect();
        mem.alloc("X", &xs);
        mem.alloc_zeroed("Y", 8);
        run(&kernel, &mut mem).unwrap();
        // Thread t sums x[t], x[8+t], x[16+t], x[24+t] = 4t + 48.
        let expect: Vec<f32> = (0..8).map(|t| 4.0 * t as f32 + 48.0).collect();
        assert_eq!(mem.read("Y"), &expect[..]);
    }
}
