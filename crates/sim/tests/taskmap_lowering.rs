//! End-to-end validation that lowered task mappings, executed on the
//! simulator, cover exactly the task domain the algebra promises.
//!
//! Regression test for nested-composition loop-variable shadowing: deep
//! compositions like `spatial * repeat * spatial * repeat` must generate
//! distinct loop variables at every `repeat` level.

use hidet_ir::prelude::*;
use hidet_sim::{DeviceMemory, Gpu};
use hidet_taskmap::{repeat, spatial, MappingProperty, TaskMapping};
use proptest::prelude::*;

/// Lowers `tm` into a kernel where each worker increments its tasks' cells,
/// runs it, and checks every cell was written exactly once.
fn coverage_via_simulator(tm: &TaskMapping) {
    let shape = tm.task_shape().to_vec();
    assert_eq!(shape.len(), 2, "test helper handles 2-D mappings");
    let workers = tm.num_workers();
    let mut kb = KernelBuilder::new("cover", 1, workers);
    let out = kb.param("Out", DType::F32, &shape);
    let body = foreach_task(tm, thread_idx(), |coords| {
        store(&out, coords.to_vec(), load(&out, coords.to_vec()) + 1.0f32)
    });
    kb.push(hidet_ir::passes::simplify(&body));
    let kernel = kb.build();
    let gpu = Gpu::default();
    let mut mem = DeviceMemory::new();
    mem.alloc_zeroed("Out", (shape[0] * shape[1]) as usize);
    gpu.run(&kernel, &mut mem).unwrap();
    for (i, v) in mem.read("Out").iter().enumerate() {
        assert!(
            (*v - 1.0).abs() < 1e-6,
            "{tm}: cell {i} written {v} times (expected exactly once)"
        );
    }
}

#[test]
fn four_level_matmul_composition_covers_block_tile() {
    // The paper's §5.1.2 composition (shrunk): 8 warps-worth of threads.
    let tm = spatial(&[2, 2]) * repeat(&[2, 1]) * spatial(&[4, 8]) * repeat(&[4, 4]);
    assert_eq!(tm.task_shape(), &[64, 64]);
    assert!(tm.check().satisfies(MappingProperty::Partition));
    coverage_via_simulator(&tm);
}

#[test]
fn repeat_spatial_repeat_shadowing_regression() {
    // Two repeat atoms at different composition depths: their lowered loop
    // variables must not shadow each other.
    let tm = repeat(&[2, 1]) * spatial(&[4, 4]) * repeat(&[3, 2]);
    coverage_via_simulator(&tm);
}

#[test]
fn fig8_cooperative_load_composition() {
    let tm = repeat(&[4, 1]) * spatial(&[16, 8]);
    coverage_via_simulator(&tm);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random 2–4 atom compositions, lowered and executed, always partition
    /// the task domain.
    #[test]
    fn random_compositions_cover_domain(parts in prop::collection::vec(
        prop_oneof![
            (1i64..4, 1i64..4).prop_map(|(a, b)| (true, a, b)),
            (1i64..4, 1i64..4).prop_map(|(a, b)| (false, a, b)),
        ],
        2..4,
    )) {
        let mut tm: Option<TaskMapping> = None;
        for (is_repeat, a, b) in parts {
            let atom = if is_repeat { repeat(&[a, b]) } else { spatial(&[a, b]) };
            tm = Some(match tm {
                None => atom,
                Some(prev) => prev * atom,
            });
        }
        let tm = tm.expect("at least two parts");
        // Keep the simulated block size within CUDA limits.
        prop_assume!(tm.num_workers() <= 1024);
        coverage_via_simulator(&tm);
    }
}
