//! Property test: `hidet_ir::passes::simplify` preserves kernel semantics.
//!
//! Random integer expression trees over `threadIdx.x`/`blockIdx.x` and a loop
//! variable are evaluated by the interpreter before and after simplification;
//! the stored results must match exactly.

use hidet_ir::prelude::*;
use hidet_sim::{DeviceMemory, Gpu};
use proptest::prelude::*;

/// A strategy for random integer expressions of bounded depth. Divisors and
/// modulus operands are kept positive to avoid division by zero.
fn int_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..16).prop_map(Expr::Int),
        Just(Expr::ThreadIdx),
        Just(Expr::BlockIdx),
        Just(Var::index("lv").expr()),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), 0i64..4).prop_map(|(a, k)| a * k),
            (inner.clone(), 1i64..8).prop_map(|(a, k)| a / k),
            (inner.clone(), 1i64..8).prop_map(|(a, k)| a % k),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.lt(b).select(1i64, 2i64)),
        ]
    })
    .boxed()
}

/// Runs a kernel that stores `expr` (cast to f32) at every (block, thread,
/// loop) point, returning the output buffer.
fn run_with(expr: &Expr) -> Vec<f32> {
    const GRID: i64 = 2;
    const BLOCK: i64 = 4;
    const LOOP: i64 = 3;
    let mut kb = KernelBuilder::new("probe", GRID, BLOCK);
    let out = kb.param("Out", DType::F32, &[GRID, BLOCK, LOOP]);
    let lv = Var::index("lv");
    kb.push(for_(lv, LOOP, |i| {
        store(
            &out,
            vec![block_idx(), thread_idx(), i],
            expr.clone().cast(DType::F32),
        )
    }));
    let kernel = kb.build();
    let gpu = Gpu::default();
    let mut mem = DeviceMemory::new();
    mem.alloc_zeroed("Out", (GRID * BLOCK * LOOP) as usize);
    gpu.run(&kernel, &mut mem).expect("probe kernel runs");
    mem.read("Out").to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simplify_preserves_integer_semantics(e in int_expr(4)) {
        let simplified = hidet_ir::passes::simplify_expr(&e);
        let before = run_with(&e);
        let after = run_with(&simplified);
        prop_assert_eq!(before, after, "expr {} != simplified {}", e, simplified);
    }

    /// Simplification is idempotent: a second pass changes nothing.
    #[test]
    fn simplify_is_idempotent(e in int_expr(4)) {
        let once = hidet_ir::passes::simplify_expr(&e);
        let twice = hidet_ir::passes::simplify_expr(&once);
        prop_assert_eq!(once, twice);
    }
}
