//! Writing a tensor program directly in the task-mapping paradigm
//! (paper §4.1/Fig. 8): the cooperative-load example, plus a complete tiled
//! matmul built from `repeat`/`spatial` compositions — without the graph
//! frontend.
//!
//! ```text
//! cargo run --release --example custom_operator
//! ```

use hidet::prelude::*;
use hidet_ir::prelude::*;
use hidet_sim::DeviceMemory;

fn main() {
    // --- Paper Fig. 8: cooperative load of a 64x8 tile by 128 threads. ---
    // Define a task mapping: 4 tasks per thread, 16x8 threads spatially.
    let tm = repeat(&[4, 1]) * spatial(&[16, 8]);
    println!("task mapping: {tm}");
    println!(
        "  task shape {:?}, {} workers",
        tm.task_shape(),
        tm.num_workers()
    );
    println!(
        "  worker 0 executes: {:?}",
        tm.worker_tasks(0).collect::<Vec<_>>()
    );

    // Embed the scheduling in a tensor program (step (2) of the paradigm).
    let mut kb = KernelBuilder::new("cooperative_load_a", 1, 128);
    let a = kb.param("A", DType::F32, &[64, 8]);
    let out = kb.param("Out", DType::F32, &[64, 8]);
    let smem = kb.shared("SmemA", DType::F32, &[64, 8]);
    let load_stmt = foreach_task(&tm, thread_idx(), |coords| {
        store(&smem, coords.to_vec(), load(&a, coords.to_vec()))
    });
    let copy_back = foreach_task(&tm, thread_idx(), |coords| {
        store(&out, coords.to_vec(), load(&smem, coords.to_vec()) * 2.0f32)
    });
    kb.push(hidet_ir::passes::simplify(&load_stmt));
    kb.push(sync_threads());
    kb.push(hidet_ir::passes::simplify(&copy_back));
    let kernel = kb.build();

    println!(
        "\n--- generated CUDA ---\n{}",
        hidet_ir::cuda::to_cuda(&kernel)
    );

    // Execute on the simulated GPU.
    let gpu = Gpu::default();
    let mut mem = DeviceMemory::new();
    let input: Vec<f32> = (0..64 * 8).map(|i| i as f32).collect();
    mem.alloc("A", &input);
    mem.alloc_zeroed("Out", 64 * 8);
    gpu.run(&kernel, &mut mem).expect("kernel runs");
    assert_eq!(mem.read("Out")[10], 20.0);
    println!("functional check passed: Out = 2 * A");

    // --- The paper's §5.1.2 four-level composition for matmul. ---
    let c_map = spatial(&[4, 2]) * repeat(&[2, 2]) * spatial(&[4, 8]) * repeat(&[4, 4]);
    println!("\nmatmul block mapping: {c_map}");
    println!(
        "  {} tasks on {} threads ({} per thread)",
        c_map.num_tasks(),
        c_map.num_workers(),
        c_map.tasks_per_worker()
    );

    // Instantiate the full matmul template with a chosen schedule and time it.
    let problem = MatmulProblem::new(1024, 1024, 1024);
    let config = MatmulConfig::default();
    let kernels = hidet_sched::matmul_kernel(
        problem,
        config,
        hidet_sched::MatmulIo::direct("my_matmul", problem),
    );
    let est = gpu.estimate(&kernels[0]).expect("estimable");
    println!(
        "\n1024^3 matmul with schedule {}: {:.1} us ({:.1} waves, occupancy {} blocks/SM)",
        config.id(),
        est.micros(),
        est.breakdown.waves,
        est.breakdown.occupancy.blocks_per_sm
    );
}
