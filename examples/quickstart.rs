//! Quickstart: compile and run a tiny model with Hidet on the simulated GPU.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::collections::HashMap;

use hidet::prelude::*;

fn main() -> Result<(), CompileError> {
    // 1. Build a model: y = relu(x . w + b).
    let mut g = GraphBuilder::new("quickstart");
    let x = g.input("x", &[32, 64]);
    let w = g.constant(Tensor::randn(&[64, 48], 1));
    let b = g.constant(Tensor::randn(&[48], 2));
    let y = g.matmul(x, w);
    let y = g.add(y, b);
    let y = g.relu(y);
    let graph = g.output(y).build();
    println!("{graph}");

    // 2. Compile for the simulated RTX 3090, tuning the matmul over the
    //    hardware-centric schedule space (paper §4.3).
    let gpu = Gpu::default();
    let compiled = hidet::compile(&graph, &gpu, &CompilerOptions::tuned())?;
    println!(
        "compiled to {} kernel(s); tuning explored the schedule space in {:.0} simulated seconds",
        compiled.num_kernels(),
        compiled.tuning_seconds()
    );
    for ((batch, m, n, k), cfg) in compiled.tuned_configs() {
        println!("  matmul b{batch} {m}x{n}x{k} -> schedule {}", cfg.id());
    }

    // 3. Inspect the generated CUDA C.
    println!("\n--- generated CUDA ---\n{}", compiled.cuda_source());

    // 4. Run it (functional simulation) and check one value by hand.
    let mut inputs = HashMap::new();
    inputs.insert(x, vec![0.25; 32 * 64]);
    let outputs = compiled.run(&inputs, &gpu)?;
    println!("output[0..4] = {:?}", &outputs[&y][..4]);

    // 5. Performance estimate on the simulated device.
    println!("estimated latency: {:.1} us", compiled.estimate(&gpu) * 1e6);
    Ok(())
}
