//! Tuning walkthrough: explore the hardware-centric schedule space for one
//! matmul, inspect the winners, and compare against the loop-oriented
//! baseline space (the paper's §4.3 story in miniature).
//!
//! ```text
//! cargo run --release --example matmul_tuning [M N K]
//! ```

use hidet::prelude::*;
use hidet_baselines::autotvm;
use hidet_sched::{matmul_kernel, matmul_space, MatmulIo};

fn main() {
    let args: Vec<i64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (m, n, k) = match args[..] {
        [m, n, k] => (m, n, k),
        _ => (2048, 2048, 2048),
    };
    let gpu = Gpu::default();
    let problem = MatmulProblem::new(m, n, k);

    // The hardware-centric space (paper: <200 schedules, input-independent).
    let space = matmul_space(gpu.spec());
    println!("hardware-centric space: {} schedules", space.len());

    // Score every schedule (exhaustive enumeration = Hidet's tuner).
    let mut scored: Vec<(f64, String)> = space
        .iter()
        .filter_map(|cfg| {
            let kernels = matmul_kernel(problem, *cfg, MatmulIo::direct("probe", problem));
            gpu.estimate(&kernels[0])
                .ok()
                .map(|e| (e.micros(), cfg.id()))
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    println!("\ntop 5 schedules for {m}x{n}x{k}:");
    for (latency, id) in scored.iter().take(5) {
        println!("  {id:<28} {latency:>10.1} us");
    }
    println!(
        "worst: {:<28} {:>10.1} us",
        scored.last().unwrap().1,
        scored.last().unwrap().0
    );

    // Full tuner (adds split-K variants when profitable).
    let report = hidet_sched::tune_matmul(problem, &gpu);
    println!(
        "\ntuner: best {} at {:.1} us after {} trials ({:.0} simulated seconds)",
        report.best.id(),
        report.best_latency.micros(),
        report.trials,
        report.tuning_seconds
    );

    // The input-centric comparison point.
    let baseline_space = autotvm::matmul_space_size(m, n, k);
    println!(
        "\nAutoTVM input-centric space for the same problem: {baseline_space:.2e} schedules \
         ({:.0}x larger)",
        baseline_space as f64 / space.len() as f64
    );
    let baseline = autotvm::tune_matmul(m, n, k, 1000, 0, &gpu);
    match baseline.best_latency {
        Some(l) => println!(
            "AutoTVM best after {} trials: {:.1} us ({:.2}x slower than Hidet)",
            baseline.trials,
            l * 1e6,
            l * 1e6 / report.best_latency.micros()
        ),
        None => println!("AutoTVM: no valid schedule (prime extents — paper Fig. 19)"),
    }
}
