//! Compile ResNet-50 end to end and run one (tiny) inference on the
//! simulated GPU, comparing against the CPU reference executor.
//!
//! The full 224x224 network is functionally simulated kernel by kernel, which
//! is slow in an interpreter — so this example runs a scaled-down ResNet-style
//! network for the functional check, and then *estimates* full ResNet-50
//! latency with the cost model (what the paper's Fig. 16 measures).
//!
//! ```text
//! cargo run --release --example resnet_inference
//! ```

use std::collections::HashMap;

use hidet::prelude::*;
use hidet_graph::models;
use hidet_graph::reference;

/// A 3-block ResNet-style network on 32x32 inputs (CIFAR-scale).
fn mini_resnet() -> (hidet_graph::Graph, TensorId, TensorId) {
    let mut g = GraphBuilder::new("mini_resnet");
    let x = g.input("images", &[1, 3, 32, 32]);
    let mut y = g.conv_bn_relu(x, 16, 3, 1, 1);
    for (channels, stride) in [(16, 1), (32, 2), (64, 2)] {
        let shortcut_needed = g.shape(y)[1] != channels || stride != 1;
        let input = y;
        let a = g.conv_bn_relu(input, channels, 3, stride, 1);
        let w = g.weight(&[channels, channels, 3, 3]);
        let b = g.conv2d(a, w, 1, 1);
        let b = g.batch_norm(b);
        let shortcut = if shortcut_needed {
            let ws = g.weight(&[channels, g.shape(input)[1], 1, 1]);
            let s = g.conv2d(input, ws, stride, 0);
            g.batch_norm(s)
        } else {
            input
        };
        let sum = g.add(b, shortcut);
        y = g.relu(sum);
    }
    let pooled = g.global_avg_pool(y);
    let logits = g.linear(pooled, 10);
    let graph = g.output(logits).build();
    (graph, x, logits)
}

fn main() -> Result<(), CompileError> {
    let gpu = Gpu::default();

    // --- Functional check on the mini network. ---
    let (graph, x, logits) = mini_resnet();
    println!(
        "mini resnet: {} ops, {:.2} GFLOPs",
        graph.ops().len(),
        graph.total_flops() / 1e9
    );
    let compiled = hidet::compile(&graph, &gpu, &CompilerOptions::quick())?;
    println!(
        "compiled to {} kernels (operators fused {}x)",
        compiled.num_kernels(),
        graph.ops().len() as f64 / compiled.num_kernels() as f64
    );
    let image: Vec<f32> = Tensor::randn(&[1, 3, 32, 32], 7).data().unwrap().to_vec();
    let mut inputs = HashMap::new();
    inputs.insert(x, image.clone());
    let got = compiled.run(&inputs, &gpu)?;

    let mut ref_inputs = reference::ValueMap::new();
    ref_inputs.insert(x, image);
    let expect = reference::execute(&graph, &ref_inputs);
    let max_err = got[&logits]
        .iter()
        .zip(&expect[&logits])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max |simulated - reference| over logits: {max_err:.2e}");
    assert!(max_err < 1e-2, "functional mismatch");

    // --- Performance estimate for the real ResNet-50 (paper Fig. 16/20). ---
    println!("\nfull ResNet-50 latency estimates (tuned):");
    for batch in [1, 4, 8] {
        let graph = models::resnet50(batch);
        let compiled = hidet::compile(&graph, &gpu, &CompilerOptions::tuned())?;
        println!(
            "  batch {batch}: {:.3} ms ({} kernels, tuning {:.0} simulated s)",
            compiled.estimate(&gpu) * 1e3,
            compiled.num_kernels(),
            compiled.tuning_seconds()
        );
    }
    Ok(())
}
