//! Tour of the sharded serving runtime with the v2 API: a pool of simulated
//! devices, priority classes, deadlines/timeouts and admission control. Run
//! with:
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```

use std::time::Duration;

use hidet_repro::graph::{Graph, GraphBuilder, Tensor};
use hidet_repro::sim::GpuSpec;
use hidet_runtime::{Engine, EngineConfig, EngineError, ModelSpec, Request};

/// A ranking head: the same `fn(batch) -> Graph` family contract as the
/// model zoo, so dim 0 is an independent-sample axis and requests coalesce.
fn ranking_head(batch: i64) -> Graph {
    let mut g = GraphBuilder::new("ranking_head");
    let x = g.input("features", &[batch, 96]);
    let w1 = g.constant(Tensor::randn(&[96, 192], 1));
    let w2 = g.constant(Tensor::randn(&[192, 1], 2));
    let h = g.matmul(x, w1);
    let h = g.relu(h);
    let y = g.matmul(h, w2);
    g.output(y).build()
}

fn request(seed: u64) -> Request {
    Request::new(vec![Tensor::randn(&[1, 96], seed).data().unwrap().to_vec()])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mixed pool: two full RTX 3090 shards plus one cut-down device.
    // Least-estimated-queue-delay placement sends the derated shard less
    // traffic automatically.
    let mut derated = GpuSpec::rtx3090();
    derated.num_sms /= 4;
    derated.dram_bandwidth_gbps /= 4.0;
    derated.name = "RTX 3090 (derated 1/4)".to_string();

    let engine = Engine::new(EngineConfig {
        devices: vec![GpuSpec::rtx3090(), GpuSpec::rtx3090(), derated],
        workers: 1,
        max_batch: 4,
        batch_window: Duration::from_millis(5),
        max_inflight: 64,
        admission_delay_bound: Some(Duration::from_millis(2)),
        ..EngineConfig::quick()
    })?;
    let ranking = engine.register(ModelSpec::new("ranking", ranking_head))?;
    ranking.warmup(4)?; // compiles once per distinct device

    // A burst of best-effort traffic plus a few latency-critical requests.
    // The dispatcher always serves the high class first; the batcher groups
    // by (model, priority class).
    let background: Vec<_> = (0..24)
        .map(|i| ranking.submit(request(i).best_effort()))
        .collect();
    let urgent: Vec<_> = (0..4)
        .map(|i| ranking.submit(request(100 + i).high().with_timeout(Duration::from_secs(2))))
        .collect();

    for (i, ticket) in urgent.into_iter().enumerate() {
        let r = ticket.wait()?;
        println!(
            "urgent {i}: score {:+.3} ({} class, batch of {}, {:.1} us queue + {:.1} us device)",
            r.outputs[0][0],
            r.priority,
            r.batch_size,
            r.queue_delay_seconds * 1e6,
            r.simulated_latency_seconds * 1e6,
        );
    }
    let mut shed = 0;
    for ticket in background {
        match ticket.wait() {
            Ok(_) => {}
            Err(EngineError::QueueFull(_)) => shed += 1, // admission control at work
            Err(e) => return Err(e.into()),
        }
    }

    // A deadline that has already passed is rejected, never executed.
    let expired = ranking.infer(request(999).with_timeout(Duration::ZERO));
    assert!(matches!(expired, Err(EngineError::DeadlineExceeded)));

    let stats = engine.stats();
    println!("\n{}", stats.summary());
    for line in stats.shard_lines() {
        println!("{line}");
    }
    for class in &stats.priorities {
        println!(
            "{:>11}: {} served, {} shed, p95 {:.1} us",
            class.priority.label(),
            class.requests,
            class.shed_requests,
            class.p95_latency_seconds * 1e6,
        );
    }
    println!("(best-effort shed by admission control this run: {shed})");
    engine.shutdown()?;
    Ok(())
}
