//! Tour of the serving runtime: load a model family, serve a burst of
//! requests through the dynamic batcher, persist tuning records, restart
//! warm. Run with:
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::time::Duration;

use hidet_repro::graph::{Graph, GraphBuilder, Tensor};
use hidet_runtime::{Engine, EngineConfig};

/// A model family: `batch` scales the leading dimension of every input —
/// the same contract the built-in model zoo follows, so
/// `engine.load("resnet50", hidet_repro::graph::models::resnet50)` works too.
fn sentiment_head(batch: i64) -> Graph {
    let mut g = GraphBuilder::new("sentiment_head");
    let x = g.input("embedding", &[batch, 128]);
    let w1 = g.constant(Tensor::randn(&[128, 256], 1));
    let w2 = g.constant(Tensor::randn(&[256, 3], 2));
    let h = g.matmul(x, w1);
    let h = g.gelu(h);
    let y = g.matmul(h, w2);
    let y = g.softmax(y, 1);
    g.output(y).build()
}

fn request(seed: u64) -> Vec<Vec<f32>> {
    vec![Tensor::randn(&[1, 128], seed).data().unwrap().to_vec()]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = std::env::temp_dir().join("hidet-serving-example.json");
    let _ = std::fs::remove_file(&records);
    let config = EngineConfig {
        workers: 2,
        max_batch: 4,
        batch_window: Duration::from_millis(5),
        tuning_records_path: Some(records.clone()),
        ..EngineConfig::default() // tuned schedules, RTX 3090 (simulated)
    };

    // --- session 1: cold process ------------------------------------------
    let engine = Engine::new(config.clone())?;
    engine.load("sentiment", sentiment_head);

    // A burst of requests: the dispatcher coalesces them along the batch
    // dimension before they reach the simulated GPU.
    let results = engine.infer_many("sentiment", (0..8).map(request).collect());
    for (i, result) in results.into_iter().enumerate() {
        let r = result?;
        let probs = &r.outputs[0];
        println!(
            "request {i}: scores [{:.3} {:.3} {:.3}]  (batch of {}, {:.1} us simulated)",
            probs[0],
            probs[1],
            probs[2],
            r.batch_size,
            r.simulated_latency_seconds * 1e6,
        );
    }
    println!("\ncold-process stats: {}", engine.stats().summary());
    engine.shutdown()?; // persists tuning records

    // --- session 2: warm restart ------------------------------------------
    let engine = Engine::new(config)?;
    engine.load("sentiment", sentiment_head);
    engine.infer_many("sentiment", (0..8).map(request).collect());
    let stats = engine.stats();
    println!("warm-restart stats: {}", stats.summary());
    println!(
        "warm restart tuned {} trials (saved {} — {:.1} simulated seconds)",
        stats.tuning_trials_run, stats.tuning_trials_saved, stats.tuning_seconds_saved,
    );
    engine.shutdown()?;
    let _ = std::fs::remove_file(&records);
    Ok(())
}
