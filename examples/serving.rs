//! Tour of the serving runtime's v2 model-lifecycle API: register a
//! `ModelSpec`, serve a burst of `Request`s through the dynamic batcher,
//! persist compiled artifacts + tuning records, restart warm with **zero**
//! compiles, and unload. Run with:
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::time::Duration;

use hidet_repro::graph::{Graph, GraphBuilder, Tensor};
use hidet_runtime::{Engine, EngineConfig, ModelSpec, Request};

/// A model family: `batch` scales the leading dimension of every input —
/// the same contract the built-in model zoo follows, so
/// `ModelSpec::new("resnet50", hidet_repro::graph::models::resnet50)` works
/// too.
fn sentiment_head(batch: i64) -> Graph {
    let mut g = GraphBuilder::new("sentiment_head");
    let x = g.input("embedding", &[batch, 128]);
    let w1 = g.constant(Tensor::randn(&[128, 256], 1));
    let w2 = g.constant(Tensor::randn(&[256, 3], 2));
    let h = g.matmul(x, w1);
    let h = g.gelu(h);
    let y = g.matmul(h, w2);
    let y = g.softmax(y, 1);
    g.output(y).build()
}

fn request(seed: u64) -> Request {
    Request::new(vec![Tensor::randn(&[1, 128], seed)
        .data()
        .unwrap()
        .to_vec()])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = std::env::temp_dir().join("hidet-serving-example");
    let _ = std::fs::remove_dir_all(&store);
    let config = EngineConfig {
        workers: 2,
        max_batch: 4,
        batch_window: Duration::from_millis(5),
        artifact_store: Some(store.clone()), // compiled artifacts persist here
        tuning_records_path: Some(store.join("tuning.json")),
        ..EngineConfig::default() // tuned schedules, RTX 3090 (simulated)
    };

    // --- session 1: cold process ------------------------------------------
    let engine = Engine::new(config.clone())?;
    let sentiment = engine.register(ModelSpec::new("sentiment", sentiment_head))?;

    // A burst of requests: the dispatcher coalesces them along the batch
    // dimension before they reach the simulated GPU.
    let results = sentiment.infer_many((0..8).map(request).collect());
    for (i, result) in results.into_iter().enumerate() {
        let r = result?;
        let probs = &r.outputs[0];
        println!(
            "request {i}: scores [{:.3} {:.3} {:.3}]  (batch of {}, {:.1} us simulated)",
            probs[0],
            probs[1],
            probs[2],
            r.batch_size,
            r.simulated_latency_seconds * 1e6,
        );
    }
    println!("\ncold-process stats: {}", engine.stats().summary());
    engine.shutdown()?; // persists tuning records; artifacts already on disk

    // --- session 2: warm restart ------------------------------------------
    // Same store: every previously served (model, batch, device) key
    // rebuilds from its on-disk artifact — no compile, no tuning.
    let engine = Engine::new(config)?;
    let sentiment = engine.register(ModelSpec::new("sentiment", sentiment_head))?;
    for result in sentiment.infer_many((0..8).map(request).collect()) {
        result?;
    }
    let stats = engine.stats();
    println!("warm-restart stats: {}", stats.summary());
    println!(
        "warm restart: {} fresh compiles, {} artifact loads, {} tuning trials \
         (saved {} trials / {:.1} simulated seconds)",
        stats.compile_cache_misses,
        stats.compiled_artifact_loads,
        stats.tuning_trials_run,
        stats.tuning_trials_saved,
        stats.tuning_seconds_saved,
    );
    // Every batch size the cold session formed rebuilds from disk; a batch
    // size this session forms for the first time (dynamic batching is
    // timing-dependent) would compile fresh, which is why the hard
    // "zero compiles" acceptance lives in the pinned-batch
    // `serving_warm_restart` bench rather than here.
    assert!(
        stats.compiled_artifact_loads > 0,
        "warm restart loads artifacts"
    );

    // --- lifecycle end: unload --------------------------------------------
    // Unloading evicts the model's compiled graphs (visible in the eviction
    // counters); its disk artifacts remain for the next restart.
    sentiment.unload();
    println!(
        "after unload: {} compiled graphs in memory, {} evicted by unload",
        engine.compiled_graphs(),
        engine.stats().compiled_evicted_unload,
    );
    engine.shutdown()?;
    let _ = std::fs::remove_dir_all(&store);
    Ok(())
}
