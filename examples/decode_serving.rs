//! Autoregressive decoding with KV-cache sessions and continuous batching —
//! a tour of `hidet-decode` (README §"Autoregressive decoding").
//!
//! ```text
//! cargo run --release --example decode_serving
//! ```

use std::time::{Duration, Instant};

use hidet_repro::decode::{DecodeConfig, DecodeEngine, DecodeModelSpec, GenerateRequest};
use hidet_repro::runtime::{Engine, EngineConfig, Priority};

fn main() {
    // 1. An engine with 4 decode slots and a 48-block KV arena (8 tokens per
    //    block). The step graph is compiled once at the fixed
    //    (max_batch, max_context) shape; the *scheduler* owns batching.
    let engine = DecodeEngine::new(DecodeConfig {
        max_batch: 4,
        kv_blocks: 48,
        block_tokens: 8,
        ..DecodeConfig::default()
    });

    // 2. A small pre-LN transformer decode model: 2 layers, hidden 32,
    //    2 heads, vocabulary 32, context window 24. Per-layer KV caches are
    //    graph inputs/outputs; the engine keeps them in a persistent device
    //    arena between steps.
    let model = engine
        .register(DecodeModelSpec::transformer("mini", 2, 32, 2, 32, 24))
        .expect("model registers");

    // 3. Sessions join the running batch the step after they arrive and
    //    leave the moment they finish — no pad-to-max draining. Mix
    //    priorities and deadlines exactly like the serving engine's requests.
    let chat = model.generate(GenerateRequest::new(vec![3, 1, 4], 6).with_priority(Priority::High));
    let essay = model.generate(GenerateRequest::new(vec![2, 7], 18));
    let capped = model.generate(
        GenerateRequest::new(vec![9], 12)
            .with_eos(5)
            .with_deadline(Instant::now() + Duration::from_secs(30)),
    );

    // 4. Token streams: iterate for streaming consumption...
    print!("chat tokens:  ");
    for event in chat {
        let event = event.expect("chat token");
        print!("{} ", event.token);
    }
    println!();

    // ...or collect to block until completion with timing attached.
    let essay = essay.collect().expect("essay completes");
    println!(
        "essay tokens: {:?}\n  ttft {:.1} us (sim), finished at {:.1} us (sim)",
        essay.tokens,
        essay.ttft_from_submit_seconds * 1e6,
        essay.completion_sim_seconds * 1e6
    );
    let capped = capped.collect().expect("capped completes");
    println!("capped tokens: {:?} (eos 5 stops early)", capped.tokens);

    // 5. Token-level observability, attachable to the serving engine's
    //    snapshot: TTFT / inter-token latency percentiles, tokens/sec, KV
    //    occupancy, eviction + recompute counters.
    let serving = Engine::new(EngineConfig::quick()).expect("serving engine");
    serving.attach_decode_stats(engine.stats_source());
    let decode = serving
        .stats()
        .decode
        .expect("decode stats ride along in StatsSnapshot");
    println!("\ndecode stats: {}", decode.summary());
    assert_eq!(decode.kv_blocks_in_use, 0, "sessions freed every KV block");
    serving.shutdown().expect("clean shutdown");
    engine.shutdown();
}
