//! Serving over the network with `hidet-server` — a tour of the v2 HTTP
//! API (README §"Serving over the network").
//!
//! Starts the front-end on two loopback listeners, then speaks plain
//! HTTP/1.1 to it the way `curl` would: register a model, run an
//! inference, stream a generation chunk by chunk, and read the stats.
//!
//! ```text
//! cargo run --release --example http_serving
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use hidet_repro::decode::{DecodeConfig, DecodeEngine};
use hidet_repro::runtime::{Engine, EngineConfig};
use hidet_repro::server::{HidetServer, ServerConfig};

/// One request → full response text, like `curl -i`.
fn http(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn body_of(response: &str) -> &str {
    response.split_once("\r\n\r\n").map_or("", |(_, b)| b)
}

fn main() {
    // 1. The engines: one-shot serving + autoregressive decode. The server
    //    bridges both behind one API.
    let engine = Arc::new(Engine::new(EngineConfig::quick()).expect("engine starts"));
    let decode = Arc::new(DecodeEngine::new(DecodeConfig {
        max_batch: 2,
        kv_blocks: 64,
        block_tokens: 4,
        ..DecodeConfig::default()
    }));

    // 2. The front-end: two loopback listeners (priority + public), a
    //    lock-free ingress ring per lane, shedding disabled for the demo
    //    (`shed_delay_bound: None`).
    let server =
        HidetServer::start(ServerConfig::default(), engine, decode).expect("server starts");
    let addr = server.public_addr();
    println!(
        "serving on http://{addr}  (priority listener: {})",
        server.priority_addr()
    );
    println!("try it from a shell:");
    println!("  curl -s http://{addr}/v2/stats");
    println!();

    // 3. Register models over the wire.
    //    curl -X POST http://.../v2/models -d '{{"name":"head","family":"mlp",...}}'
    let response = post(
        addr,
        "/v2/models",
        r#"{"name":"head","family":"mlp","input_dim":16,"hidden_dim":32,"output_dim":4}"#,
    );
    println!("register mlp     -> {}", body_of(&response));
    let response = post(
        addr,
        "/v2/models",
        r#"{"name":"chat","family":"transformer-decode","layers":1,"hidden":16,"heads":2,"vocab":16,"max_context":32}"#,
    );
    println!("register decoder -> {}", body_of(&response));

    // 4. One-shot inference; priority and timeout ride in the body.
    let inputs: Vec<String> = (0..16).map(|i| format!("{}.25", i % 4)).collect();
    let response = post(
        addr,
        "/v2/infer",
        &format!(
            r#"{{"model":"head","inputs":[[{}]],"priority":"high"}}"#,
            inputs.join(",")
        ),
    );
    println!("infer            -> {}", body_of(&response));

    // 5. Streamed generation: `Transfer-Encoding: chunked`, one JSON line
    //    per token — the first chunk arrives while later tokens are still
    //    being decoded.
    let response = post(
        addr,
        "/v2/generate",
        r#"{"model":"chat","prompt":[3,1,4],"max_tokens":6}"#,
    );
    println!("generate stream  ->");
    for line in body_of(&response).lines() {
        let line = line.trim_matches('\r');
        if line.starts_with('{') {
            println!("  {line}");
        }
    }

    // 6. Stats: the engine snapshot plus the ingress section (accepted /
    //    shed / served counters, ring depth, wire-TTFB percentiles).
    let response = http(addr, "GET /v2/stats HTTP/1.1\r\nHost: demo\r\n\r\n");
    println!("stats            -> {}", body_of(&response));
}
