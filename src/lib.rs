//! Umbrella crate for the Hidet reproduction workspace: re-exports every
//! sub-crate so examples and integration tests have one import root.
//!
//! See the repository `README.md` and `DESIGN.md` for the full picture, and
//! the [`hidet`] crate for the compiler entry points.

#![warn(missing_docs)]

pub use hidet;
pub use hidet_analysis as analysis;
pub use hidet_baselines as baselines;
pub use hidet_decode as decode;
pub use hidet_graph as graph;
pub use hidet_ir as ir;
pub use hidet_runtime as runtime;
pub use hidet_sched as sched;
pub use hidet_server as server;
pub use hidet_sim as sim;
pub use hidet_taskmap as taskmap;
pub use hidet_trace as trace;
