//! Cross-crate integration tests: graph frontend → scheduler → fusion →
//! simulator, validated against the CPU reference executor.

use std::collections::HashMap;

use hidet::prelude::*;
use hidet_graph::reference::{self, ValueMap};
use hidet_graph::GraphBuilder;

/// Compiles and runs `graph` on the simulator, compares every output tensor
/// against the reference executor with relative tolerance `tol`.
fn check(graph: &hidet_graph::Graph, inputs: &HashMap<TensorId, Vec<f32>>, tol: f32) {
    let gpu = Gpu::default();
    let compiled = hidet::compile(graph, &gpu, &CompilerOptions::quick()).expect("compiles");
    let got = compiled.run(inputs, &gpu).expect("runs");
    let mut ref_inputs = ValueMap::new();
    for (t, v) in inputs {
        ref_inputs.insert(*t, v.clone());
    }
    let expect = reference::execute(graph, &ref_inputs);
    for &out in graph.outputs() {
        let a = &got[&out];
        let b = &expect[&out];
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + y.abs()),
                "{}: output t{} element {i}: {x} vs {y}",
                graph.name(),
                out.0
            );
        }
    }
}

fn randn(shape: &[i64], seed: u64) -> Vec<f32> {
    Tensor::randn(shape, seed).data().unwrap().to_vec()
}

#[test]
fn mlp_with_gelu() {
    let mut g = GraphBuilder::new("mlp");
    let x = g.input("x", &[16, 32]);
    let w1 = g.constant(Tensor::randn(&[32, 64], 1));
    let w2 = g.constant(Tensor::randn(&[64, 8], 2));
    let h = g.matmul(x, w1);
    let h = g.gelu(h);
    let y = g.matmul(h, w2);
    let graph = g.output(y).build();
    let mut inputs = HashMap::new();
    inputs.insert(x, randn(&[16, 32], 3));
    check(&graph, &inputs, 1e-2);
}

#[test]
fn conv_stack_via_implicit_gemm() {
    let mut g = GraphBuilder::new("convs");
    let x = g.input("x", &[1, 3, 20, 20]);
    let y = g.conv_bn_relu(x, 8, 3, 1, 1);
    let y = g.conv_bn_relu(y, 16, 3, 2, 1);
    let y = g.max_pool(y, 2, 2, 0);
    let graph = g.output(y).build();
    let mut inputs = HashMap::new();
    inputs.insert(x, randn(&[1, 3, 20, 20], 4));
    check(&graph, &inputs, 2e-2);
}

#[test]
fn residual_block_with_projection() {
    let mut g = GraphBuilder::new("residual");
    let x = g.input("x", &[1, 8, 12, 12]);
    let a = g.conv_bn_relu(x, 16, 3, 2, 1);
    let wp = g.constant(Tensor::randn(&[16, 8, 1, 1], 5));
    let proj = g.conv2d(x, wp, 2, 0);
    let proj = g.batch_norm(proj);
    let sum = g.add(a, proj);
    let y = g.relu(sum);
    let graph = g.output(y).build();
    let mut inputs = HashMap::new();
    inputs.insert(x, randn(&[1, 8, 12, 12], 6));
    check(&graph, &inputs, 2e-2);
}

#[test]
fn single_attention_head() {
    // A miniature attention block: the paper's reshape-matmul-transpose
    // pattern plus softmax, end to end.
    let seq = 16i64;
    let dk = 8i64;
    let mut g = GraphBuilder::new("attention");
    let q = g.input("q", &[seq, dk]);
    let kx = g.input("k", &[seq, dk]);
    let v = g.input("v", &[seq, dk]);
    let kt = g.transpose(kx, &[1, 0]);
    let scores = g.matmul(q, kt);
    let scale = g.constant(Tensor::full(&[1], 1.0 / (dk as f32).sqrt()));
    let scores = g.mul(scores, scale);
    let probs = g.softmax(scores, 1);
    let ctx = g.matmul(probs, v);
    let graph = g.output(ctx).build();
    let mut inputs = HashMap::new();
    inputs.insert(q, randn(&[seq, dk], 7));
    inputs.insert(kx, randn(&[seq, dk], 8));
    inputs.insert(v, randn(&[seq, dk], 9));
    check(&graph, &inputs, 1e-2);
}

#[test]
fn depthwise_separable_block() {
    let mut g = GraphBuilder::new("separable");
    let x = g.input("x", &[1, 8, 10, 10]);
    let wd = g.constant(Tensor::randn(&[8, 1, 3, 3], 10));
    let y = g.depthwise_conv2d(x, wd, 1, 1);
    let y = g.batch_norm(y);
    let y = g.relu6(y);
    let wp = g.constant(Tensor::randn(&[16, 8, 1, 1], 11));
    let y = g.conv2d(y, wp, 1, 0);
    let y = g.batch_norm(y);
    let graph = g.output(y).build();
    let mut inputs = HashMap::new();
    inputs.insert(x, randn(&[1, 8, 10, 10], 12));
    check(&graph, &inputs, 2e-2);
}

#[test]
fn layer_norm_and_linear() {
    let mut g = GraphBuilder::new("ln");
    let x = g.input("x", &[12, 40]);
    let y = g.layer_norm(x);
    let y = g.linear(y, 20);
    let graph = g.output(y).build();
    let mut inputs = HashMap::new();
    inputs.insert(x, randn(&[12, 40], 13));
    check(&graph, &inputs, 2e-2);
}

#[test]
fn transformer_layer_functional() {
    // One full (tiny) transformer block: 2 heads, hidden 16, seq 8.
    let (seq, hidden, heads) = (8i64, 16i64, 2i64);
    let head_dim = hidden / heads;
    let mut g = GraphBuilder::new("tiny_transformer");
    let x = g.input("x", &[seq, hidden]);
    let wq = g.constant(Tensor::randn(&[hidden, hidden], 1));
    let wk = g.constant(Tensor::randn(&[hidden, hidden], 2));
    let wv = g.constant(Tensor::randn(&[hidden, hidden], 3));
    let q = g.matmul(x, wq);
    let k = g.matmul(x, wk);
    let v = g.matmul(x, wv);
    let split = |g: &mut GraphBuilder, t| {
        let r = g.reshape(t, &[seq, heads, head_dim]);
        g.transpose(r, &[1, 0, 2])
    };
    let qh = split(&mut g, q);
    let kh = split(&mut g, k);
    let vh = split(&mut g, v);
    let kt = g.transpose(kh, &[0, 2, 1]);
    let scores = g.batch_matmul(qh, kt);
    let probs = g.softmax(scores, 2);
    let ctx = g.batch_matmul(probs, vh);
    let ctx = g.transpose(ctx, &[1, 0, 2]);
    let ctx = g.reshape(ctx, &[seq, hidden]);
    let out = g.add(ctx, x);
    let out = g.layer_norm(out);
    let graph = g.output(out).build();
    let mut inputs = HashMap::new();
    inputs.insert(x, randn(&[seq, hidden], 4));
    check(&graph, &inputs, 2e-2);
}

#[test]
fn inception_style_concat() {
    let mut g = GraphBuilder::new("concat");
    let x = g.input("x", &[1, 4, 8, 8]);
    let a = g.conv_bn_relu(x, 4, 1, 1, 0);
    let b = g.conv_bn_relu(x, 6, 3, 1, 1);
    let y = g.concat(&[a, b], 1);
    let y = g.relu(y);
    let graph = g.output(y).build();
    let mut inputs = HashMap::new();
    inputs.insert(x, randn(&[1, 4, 8, 8], 14));
    check(&graph, &inputs, 2e-2);
}

#[test]
fn tuned_compile_is_also_functionally_correct() {
    // Tuning changes schedules, never results.
    let mut g = GraphBuilder::new("tuned");
    let x = g.input("x", &[50, 37]);
    let w = g.constant(Tensor::randn(&[37, 29], 15));
    let y = g.matmul(x, w);
    let y = g.relu(y);
    let graph = g.output(y).build();
    let gpu = Gpu::default();
    let compiled = hidet::compile(&graph, &gpu, &CompilerOptions::tuned()).expect("compiles");
    let mut inputs = HashMap::new();
    inputs.insert(x, randn(&[50, 37], 16));
    let got = compiled.run(&inputs, &gpu).expect("runs");
    let mut ref_inputs = ValueMap::new();
    ref_inputs.insert(x, inputs[&x].clone());
    let expect = reference::execute(&graph, &ref_inputs);
    for (a, b) in got[&y].iter().zip(&expect[&y]) {
        assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()), "{a} vs {b}");
    }
}
