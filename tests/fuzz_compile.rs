//! Property-based end-to-end fuzzing: random small graphs are compiled with
//! the full Hidet pipeline, executed on the simulated GPU, and compared
//! element-wise against the CPU reference executor.
//!
//! This is the strongest correctness net in the repository: it composes the
//! graph builder, conv lowering, constant folding, fusion partitioning, both
//! schedule templates, rule-based scheduling, post-scheduling fusion, the
//! lowering of task mappings, the simplifier and the interpreter in one shot.

use std::collections::HashMap;

use hidet::prelude::*;
use hidet_graph::reference::{self, ValueMap};
use hidet_graph::GraphBuilder;
use proptest::prelude::*;

/// A step applied to the running activation in a random chain.
#[derive(Debug, Clone)]
enum Step {
    Relu,
    Gelu,
    Tanh,
    AddBias,
    MulScale,
    Linear { out: i64 },
    Softmax,
    LayerNorm,
    Reshape2x,
    TransposeLast,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Relu),
        Just(Step::Gelu),
        Just(Step::Tanh),
        Just(Step::AddBias),
        Just(Step::MulScale),
        (4i64..24).prop_map(|out| Step::Linear { out }),
        Just(Step::Softmax),
        Just(Step::LayerNorm),
        Just(Step::Reshape2x),
        Just(Step::TransposeLast),
    ]
}

/// Applies a step; returns the new activation (some steps are skipped when
/// the current shape does not admit them).
fn apply(g: &mut GraphBuilder, t: TensorId, step: &Step, seed: &mut u64) -> TensorId {
    *seed += 1;
    let shape = g.shape(t).to_vec();
    match step {
        Step::Relu => g.relu(t),
        Step::Gelu => g.gelu(t),
        Step::Tanh => g.tanh(t),
        Step::AddBias => {
            let last = *shape.last().expect("rank >= 1");
            let b = g.constant(Tensor::randn(&[last], *seed));
            g.add(t, b)
        }
        Step::MulScale => {
            let s = g.constant(Tensor::full(&[1], 0.5));
            g.mul(t, s)
        }
        Step::Linear { out } => {
            if shape.len() != 2 {
                return t;
            }
            let w = g.constant(Tensor::randn(&[shape[1], *out], *seed));
            g.matmul(t, w)
        }
        Step::Softmax => g.softmax(t, shape.len() - 1),
        Step::LayerNorm => {
            if *shape.last().expect("rank >= 1") < 2 {
                return t;
            }
            g.layer_norm(t)
        }
        Step::Reshape2x => {
            if shape.len() != 2 || shape[1] % 2 != 0 {
                return t;
            }
            g.reshape(t, &[shape[0] * 2, shape[1] / 2])
        }
        Step::TransposeLast => {
            if shape.len() != 2 {
                return t;
            }
            g.transpose(t, &[1, 0])
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_graphs_compile_and_match_reference(
        rows in 2i64..12,
        cols in prop::sample::select(vec![4i64, 6, 8, 12, 16]),
        steps in prop::collection::vec(step_strategy(), 1..6),
        seed in 0u64..1000,
    ) {
        let mut g = GraphBuilder::new("fuzz");
        let x = g.input("x", &[rows, cols]);
        let mut t = x;
        let mut wseed = seed;
        for step in &steps {
            t = apply(&mut g, t, step, &mut wseed);
        }
        // Ensure at least one op exists.
        if g.graph().ops().is_empty() {
            t = g.relu(t);
        }
        let graph = g.output(t).build();

        let gpu = Gpu::default();
        let compiled = hidet::compile(&graph, &gpu, &CompilerOptions::quick())
            .expect("random graph compiles");
        let data = Tensor::randn(&[rows, cols], seed ^ 0xF00D).data().unwrap().to_vec();
        let mut inputs = HashMap::new();
        inputs.insert(x, data.clone());
        let got = compiled.run(&inputs, &gpu).expect("random graph runs");

        let mut ref_inputs = ValueMap::new();
        ref_inputs.insert(x, data);
        let expect = reference::execute(&graph, &ref_inputs);
        let out = graph.outputs()[0];
        prop_assert_eq!(got[&out].len(), expect[&out].len());
        for (i, (a, b)) in got[&out].iter().zip(&expect[&out]).enumerate() {
            prop_assert!(
                (a - b).abs() < 2e-2 * (1.0 + b.abs()),
                "element {} differs: {} vs {} (steps {:?})",
                i, a, b, steps
            );
        }
    }

    /// Memory-planned execution (arena offsets from the liveness planner,
    /// reused `Workspace`) must be **bit-identical** to the unplanned
    /// executor on arbitrary graphs — not merely close: both paths run the
    /// same kernels in the same order, only the buffer placement differs.
    #[test]
    fn planned_execution_is_bit_identical_to_unplanned(
        rows in 2i64..12,
        cols in prop::sample::select(vec![4i64, 6, 8, 12, 16]),
        steps in prop::collection::vec(step_strategy(), 1..6),
        seed in 0u64..1000,
    ) {
        let mut g = GraphBuilder::new("fuzz_planned");
        let x = g.input("x", &[rows, cols]);
        let mut t = x;
        let mut wseed = seed;
        for step in &steps {
            t = apply(&mut g, t, step, &mut wseed);
        }
        if g.graph().ops().is_empty() {
            t = g.relu(t);
        }
        let graph = g.output(t).build();

        let gpu = Gpu::default();
        let compiled = hidet::compile(&graph, &gpu, &CompilerOptions::quick())
            .expect("random graph compiles");
        let plan = compiled.plan().memory_plan();
        prop_assert!(plan.find_alias().is_none(), "live buffers alias: {:?}", plan.find_alias());
        prop_assert!(plan.peak_bytes() <= plan.unplanned_bytes());

        let data = Tensor::randn(&[rows, cols], seed ^ 0xBEEF).data().unwrap().to_vec();
        let mut inputs = HashMap::new();
        inputs.insert(x, data);
        let unplanned = compiled.run(&inputs, &gpu).expect("unplanned run");
        let mut ws = hidet::Workspace::new();
        // Two planned runs through one workspace: cold bind, then the
        // steady-state (zero-allocation) path — both must match exactly.
        for round in 0..2 {
            let planned = compiled.run_with(&inputs, &gpu, &mut ws).expect("planned run");
            for &out in graph.outputs() {
                prop_assert_eq!(
                    &unplanned[&out], &planned[&out],
                    "output t{} differs on round {} (steps {:?})", out.0, round, &steps
                );
            }
        }
    }
}
