//! Integration tests pinning the paper's *qualitative claims* — the
//! reproduction's acceptance criteria. Each test names the paper section it
//! validates.

use hidet::prelude::*;
use hidet_baselines::frameworks::OnnxRuntimeLike;
use hidet_baselines::tvm::{AnsorLike, AutoTvmLike};
use hidet_baselines::GraphExecutor;
use hidet_graph::models;
use hidet_sched::{matmul_kernel, matmul_space, tune_matmul, MatmulIo};

/// §3.1 + §6.3.3: double buffering (inexpressible in loop-oriented
/// scheduling) makes the same schedule faster on compute/memory-balanced
/// GEMMs.
#[test]
fn double_buffering_wins_on_balanced_gemm() {
    let gpu = Gpu::default();
    let problem = MatmulProblem::new(4096, 4096, 4096);
    let base = tune_matmul(problem, &gpu).best;
    let lat = |stages: u32| {
        let cfg = MatmulConfig { stages, ..base };
        let kernels = matmul_kernel(problem, cfg, MatmulIo::direct("t", problem));
        gpu.estimate(&kernels[0]).unwrap().seconds
    };
    assert!(
        lat(2) < lat(1),
        "double buffering must help: {} vs {}",
        lat(2),
        lat(1)
    );
}

/// §3.3 + Fig. 19: input-centric spaces fail on primes, Hidet does not.
#[test]
fn prime_sizes_fail_baselines_not_hidet() {
    let gpu = Gpu::default();
    let atvm = hidet_baselines::autotvm::tune_matmul(2039, 2039, 2039, 50, 0, &gpu);
    let ansor = hidet_baselines::ansor::tune_matmul(2039, 2039, 2039, 50, 0, &gpu);
    assert_eq!(atvm.best_latency, None);
    assert_eq!(ansor.best_latency, None);
    let hidet = tune_matmul(MatmulProblem::new(2039, 2039, 2039), &gpu);
    assert!(hidet.best_latency.seconds.is_finite());
}

/// Fig. 19: Hidet's latency is *consistent* across consecutive sizes while
/// the baselines fluctuate.
#[test]
fn consecutive_sizes_consistency() {
    let gpu = Gpu::default();
    let sizes = [2048i64, 2046, 2044, 2042];
    let hidet: Vec<f64> = sizes
        .iter()
        .map(|&s| {
            tune_matmul(MatmulProblem::new(s, s, s), &gpu)
                .best_latency
                .seconds
        })
        .collect();
    let spread = hidet.iter().cloned().fold(0.0, f64::max)
        / hidet.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 1.15, "Hidet spread {spread} too large: {hidet:?}");

    let baseline: Vec<f64> = sizes
        .iter()
        .map(|&s| {
            hidet_baselines::autotvm::tune_matmul(s, s, s, 150, 0, &gpu)
                .best_latency
                .unwrap_or(f64::INFINITY)
        })
        .collect();
    let bspread = baseline.iter().cloned().fold(0.0, f64::max)
        / baseline.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        bspread > spread,
        "baselines should fluctuate more: {bspread} vs {spread} ({baseline:?})"
    );
}

/// §4.3 + §6.2: the Hidet schedule space is tiny and input-independent;
/// tuning cost is an order of magnitude below the baselines'.
#[test]
fn tuning_cost_ratio_holds_on_resnet() {
    let gpu = Gpu::default();
    let graph = models::resnet50(1);
    // Reduced budgets keep the test fast; the *ratio* is what matters and it
    // is driven by trials-per-workload.
    let atvm = AutoTvmLike {
        trials: 200,
        seed: 0,
    }
    .evaluate(&graph, &gpu);
    let hidet = HidetExecutor::tuned().evaluate(&graph, &gpu);
    assert!(hidet.tuning_seconds > 0.0);
    assert!(
        atvm.tuning_seconds > 2.0 * hidet.tuning_seconds,
        "AutoTVM {}s vs Hidet {}s",
        atvm.tuning_seconds,
        hidet.tuning_seconds
    );
}

/// §6.2 Fig. 16 (shape): Hidet beats the framework executors on ResNet-50.
#[test]
fn hidet_beats_frameworks_on_resnet() {
    let gpu = Gpu::default();
    let graph = models::resnet50(1);
    let hidet = HidetExecutor::tuned().evaluate(&graph, &gpu);
    let ort = OnnxRuntimeLike.evaluate(&graph, &gpu);
    assert!(
        hidet.latency_seconds < ort.latency_seconds,
        "Hidet {} vs ORT {}",
        hidet.latency_seconds,
        ort.latency_seconds
    );
}

/// §6.2 (MobileNet-V2 exception): Ansor's generated schedules beat Hidet on
/// the depthwise-convolution-heavy model — the one benchmark the paper loses.
#[test]
fn ansor_wins_mobilenet() {
    let gpu = Gpu::default();
    let graph = models::mobilenet_v2(1);
    let hidet = HidetExecutor::tuned().evaluate(&graph, &gpu);
    let ansor = AnsorLike {
        trials: 200,
        seed: 0,
    }
    .evaluate(&graph, &gpu);
    assert!(
        ansor.latency_seconds < hidet.latency_seconds,
        "paper reports 0.88x here: Ansor {} vs Hidet {}",
        ansor.latency_seconds,
        hidet.latency_seconds
    );
}

/// §6.3.5 Fig. 22 (shape): TensorRT wins transformers (fused attention),
/// Hidet wins CNNs.
#[test]
fn tensorrt_crossover() {
    let gpu = Gpu::default();
    let trt_bert = hidet_baselines::trt::TensorRtLike.evaluate(&models::bert_base(1, 128), &gpu);
    let hidet_bert = HidetExecutor::tuned().evaluate(&models::bert_base(1, 128), &gpu);
    assert!(
        trt_bert.latency_seconds < hidet_bert.latency_seconds,
        "TRT must win Bert"
    );

    let trt_res = hidet_baselines::trt::TensorRtLike.evaluate(&models::resnet50(1), &gpu);
    let hidet_res = HidetExecutor::tuned().evaluate(&models::resnet50(1), &gpu);
    assert!(
        hidet_res.latency_seconds < trt_res.latency_seconds,
        "Hidet must win ResNet-50"
    );
}

/// §4.3: the schedule space stays in the paper's regime — a few hundred
/// candidates (paper: "less than 200"; ours carries two extra warp layouts
/// for skinny transformer GEMMs), exhaustively enumerable, versus the
/// baselines' 10^5–10^8.
#[test]
fn schedule_space_size_matches_paper() {
    let space = matmul_space(&GpuSpec::rtx3090());
    assert!(
        (150..400).contains(&space.len()),
        "expected a few hundred schedules; got {}",
        space.len()
    );
}

/// Fig. 7: input-centric conv spaces are orders of magnitude larger than
/// Hidet's space.
#[test]
fn conv_space_ratio() {
    let workloads = models::resnet50_conv_workloads(1);
    let hidet = matmul_space(&GpuSpec::rtx3090()).len() as f64;
    let mean = {
        let logs: f64 = workloads
            .iter()
            .map(|w| (hidet_baselines::autotvm::conv_space_size(w) as f64).ln())
            .sum();
        (logs / workloads.len() as f64).exp()
    };
    assert!(mean / hidet > 1e3, "ratio {}", mean / hidet);
}
