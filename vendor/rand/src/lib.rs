//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::choose`].
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this shim instead (see `vendor/README.md`). Determinism per seed is the
//! only statistical property the callers rely on (tuner reproducibility
//! tests); the generator is a SplitMix64 stream, which is more than adequate
//! for schedule-space sampling.

use std::ops::Range;

/// Core random source: a 64-bit generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range.start, range.end, self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
