//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access (see `vendor/README.md`), so
//! this shim provides the pieces the repository's property tests rely on:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   attribute and `pattern in strategy` arguments;
//! * [`strategy::Strategy`] with `prop_map`, integer-range strategies,
//!   [`strategy::Just`], [`prop_oneof!`] unions;
//! * `prop::collection::vec` and `prop::sample::select`;
//! * `prop_assert!` / `prop_assert_eq!` (forwarded to `assert!`).
//!
//! Unlike the real proptest there is no shrinking: a failing case panics with
//! the generated values in the assertion message. Generation is fully
//! deterministic per test function, so failures reproduce exactly.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic random source for strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `seed`.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by the `prop_oneof!` macro).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategies: `recurse` receives the strategy for the
        /// previous depth and returns one producing larger values. The
        /// `desired_size`/`expected_branch_size` hints of real proptest are
        /// accepted and ignored; each level mixes the base case back in so
        /// generated values have varied depth up to `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            let leaf = strat.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + r) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// Tuples of strategies generate tuples of values.
    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element-count specifications for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with a random length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniform choice from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

/// `prop::` namespace as used via the prelude (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Union of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Rejects the current case when `cond` is false, moving on to the next one.
///
/// The shim skips the case via `continue` on the case loop, so — unlike real
/// proptest — it must be invoked from the top level of the test body, not
/// from inside a user loop. All current usages satisfy this.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::Config::default())
            $(#[$meta])* fn $($rest)*
        );
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            // Deterministic per-test seed: derived from the test name so
            // sibling tests explore different streams.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<i64>> {
        prop::collection::vec(1i64..5, 2usize)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..9, y in 0u64..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_and_map_compose(v in small_vec().prop_map(|v| v.len())) {
            prop_assert_eq!(v, 2);
        }

        #[test]
        fn oneof_and_select(
            k in prop_oneof![Just(1usize), Just(2usize), 3usize..5],
            s in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!((1..5).contains(&k));
            prop_assert!(s == "a" || s == "b");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(0i64..100, 1..=8);
        let a: Vec<Vec<i64>> = {
            let mut rng = TestRng::from_seed(9);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<i64>> = {
            let mut rng = TestRng::from_seed(9);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
