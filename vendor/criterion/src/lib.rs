//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use (see `vendor/README.md`): `criterion_group!`/`criterion_main!`,
//! [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], and [`Bencher::iter`].
//!
//! Statistics are intentionally simple — each benchmark is warmed up once and
//! then timed over enough iterations to fill a small measurement window; the
//! mean per-iteration time is printed. Good enough to compare compiler-side
//! costs between commits without a statistics stack.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Iteration cap, so very slow benchmarks stay bounded.
const MAX_ITERS: u64 = 1000;

/// Times one benchmark body.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `body` repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        std::hint::black_box(body()); // warm-up
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS {
            std::hint::black_box(body());
            iters += 1;
            if start.elapsed() >= MEASURE_WINDOW {
                break;
            }
        }
        self.iters = iters;
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!(
        "bench {name:<48} {value:>9.2} {unit}/iter  ({} iters)",
        b.iters
    );
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled with the parameter's `Display` form.
    pub fn from_parameter<D: Display>(parameter: D) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<D: Display>(function: &str, parameter: D) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes its own measurement.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(42), &42, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("inner", |b| b.iter(|| ()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
